"""Fig. 5 — CPU and memory overhead of the coordination machinery.

Paper result: ~2% CPU overhead for Baseline/Signature/Blaster/SYN-flood,
~10% for Scan/TFTP (policy-stage checks), large overhead for
HTTP/IRC/Login only when checks stay in the policy engine (approach 1),
and ≤6% memory overhead from the connection-record hash fields.
"""

import pytest

from repro.experiments import scaled
from repro.nids.microbench import format_microbench_table, run_microbenchmark

PAPER_SESSIONS = 100_000
PAPER_RUNS = 5


@pytest.mark.figure("fig5")
def test_fig5_coordination_overheads(once):
    rows = once(
        run_microbenchmark,
        num_sessions=scaled(PAPER_SESSIONS, minimum=4_000),
        runs=scaled(PAPER_RUNS, minimum=2),
    )
    print("\nFig. 5 — per-module coordination overheads")
    print(format_microbench_table(rows))

    by_name = {row.module: row for row in rows}
    # Paper bands (shape, not absolute numbers).
    for name in ("baseline", "signature", "blaster", "synflood"):
        assert by_name[name].cpu_event.mean < 0.06
    for name in ("scan", "tftp"):
        assert 0.05 < by_name[name].cpu_policy.mean < 0.15
    for name in ("http", "irc", "login"):
        assert by_name[name].cpu_policy.mean > by_name[name].cpu_event.mean
    for row in rows:
        assert row.mem_policy.mean <= 0.06
        assert row.mem_event.mean <= 0.06
