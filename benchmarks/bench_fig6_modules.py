"""Fig. 6 — max per-node memory/CPU as the NIDS module count grows.

Paper result: with the traffic volume fixed at 100,000 sessions and
the module set growing from 8 to 21 (duplicating HTTP/IRC/Login/TFTP),
the coordinated approach scales better than the edge-only deployment
on both metrics.
"""

import pytest

from repro.experiments import fig6_module_scaling, format_comparison_table


@pytest.mark.figure("fig6")
def test_fig6_module_scaling(once):
    rows = once(fig6_module_scaling)
    print("\nFig. 6 — max per-node load vs. number of NIDS modules")
    print(format_comparison_table(rows, "#modules"))

    for row in rows:
        assert row.coord_cpu < row.edge_cpu
        assert row.coord_mem_mb <= row.edge_mem_mb + 1e-6
    # Coordination's CPU advantage grows with added functionality.
    assert rows[-1].cpu_reduction > rows[0].cpu_reduction
    # Edge-only load grows with module count.
    assert rows[-1].edge_cpu > rows[0].edge_cpu
