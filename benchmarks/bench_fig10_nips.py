"""Fig. 10 — NIPS rounding algorithms vs. the LP upper bound.

Paper result: across Abilene, Geant, and ASes 1221/1239/3257, with
rule-capacity constraints 0.05–0.25, rounding + LP re-solve achieves
more than ~70% of OptLP, and rounding + greedy + LP re-solve achieves
more than 92%.

At reduced ``REPRO_SCALE`` the rule count and scenario count are
lowered for the large AS topologies (their relaxations dominate the
runtime); the fraction-of-OptLP metric is insensitive to both, so the
figure's shape is preserved.  Set ``REPRO_SCALE=1`` for paper volumes.
"""

import pytest

from repro.core.rounding import RoundingVariant
from repro.experiments import evaluate_point, format_fig10_table, repro_scale, scaled
from repro.experiments.nips_rounding import (
    PAPER_CAPACITY_FRACTIONS,
    PAPER_ITERATIONS,
    PAPER_NUM_RULES,
    PAPER_SCENARIOS,
    PAPER_TOPOLOGIES,
)

#: Rule counts per topology at reduced scale: the LP relaxation grows
#: with #rules x #paths, and the big ASes have 1,600-2,600 paths.
_SCALED_RULES = {
    "Abilene": 100,
    "Geant": 40,
    "AS1221": 20,
    "AS1239": 20,  # 0.05 x rules must leave at least one TCAM slot
    "AS3257": 20,
}
_SCALED_SCENARIOS = {
    "Abilene": 2,
    "Geant": 2,
    "AS1221": 1,
    "AS1239": 1,
    "AS3257": 1,
}


def _settings_for(label: str):
    if repro_scale() >= 1.0:
        return PAPER_NUM_RULES, scaled(PAPER_SCENARIOS), scaled(PAPER_ITERATIONS)
    return (
        _SCALED_RULES[label],
        _SCALED_SCENARIOS[label],
        max(2, scaled(PAPER_ITERATIONS)),
    )


@pytest.mark.figure("fig10")
@pytest.mark.parametrize("label", PAPER_TOPOLOGIES)
def test_fig10_rounding_performance(once, label):
    num_rules, scenarios, iterations = _settings_for(label)

    def run():
        results = []
        for fraction in PAPER_CAPACITY_FRACTIONS:
            results.extend(
                evaluate_point(
                    label,
                    fraction,
                    variants=(RoundingVariant.LP, RoundingVariant.GREEDY_LP),
                    num_scenarios=scenarios,
                    iterations=iterations,
                    num_rules=num_rules,
                )
            )
        return results

    results = once(run)
    print(f"\nFig. 10 — {label} ({num_rules} rules, {scenarios} scenario(s))")
    print(format_fig10_table(results))

    for stat in results:
        if stat.variant is RoundingVariant.GREEDY_LP:
            # Paper: >= 92% of OptLP.
            assert stat.mean >= 0.90, f"{label} greedy mean {stat.mean:.3f}"
        elif stat.capacity_fraction >= 0.10:
            # Paper: > ~70% of OptLP for rounding + LP re-solve.
            assert stat.mean >= 0.60, f"{label} lp mean {stat.mean:.3f}"
        else:
            # At the tightest TCAM budget the plain LP re-solve is
            # sensitive to the rounding draw; with the paper's 10
            # iterations it recovers to ~0.7, with the scaled 2-3
            # iterations we only require the qualitative gap to the
            # greedy variant (asserted below).
            assert stat.mean >= 0.30, f"{label} lp mean {stat.mean:.3f}"
    # Greedy dominates the plain LP re-solve at every capacity point.
    by_cap = {}
    for stat in results:
        by_cap.setdefault(stat.capacity_fraction, {})[stat.variant] = stat
    for cap, variants in by_cap.items():
        assert (
            variants[RoundingVariant.GREEDY_LP].mean
            >= variants[RoundingVariant.LP].mean - 1e-9
        )
