"""Sweep executor benchmark: 1 worker vs N workers on a cold grid.

Run directly to (re)generate ``BENCH_sweep.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_sweep.py

Measures wall time for the same 8-cell grid executed sequentially
(``jobs=1``) and across worker processes (``jobs=min(cpu_count, 4)``),
each into a fresh artifact cache, and verifies the two consolidated
reports are byte-identical.  Cells are shared-nothing, so speedup
scales with available cores; on a single-core container the parallel
run *loses* (spawn startup with no parallelism to pay for it), which
the JSON records honestly alongside the detected core count.  A third
warm run replays the grid against the sequential run's cache and must
execute zero cells.
"""

import json
import os
import tempfile
import time

from repro.sweep import SweepSpec, consolidate, render_report, run_sweep
from repro.obs import MetricsRegistry

#: The benchmark grid: 8 known-green cells on internet2 (2 fault
#: conditions x 2 dynamics presets x 2 seeds), heavy enough that
#: worker startup does not dominate.
BENCH_SPEC = SweepSpec(
    name="bench",
    topologies=("internet2",),
    plans=("none", "controller-outage"),
    dynamics=("steady", "diurnal"),
    redundancy=(1.0,),
    seeds=(0, 1),
    epochs=18,
    base_sessions=400,
)


def run_sweep_benchmark(jobs: int) -> dict:
    """Time cold sequential vs cold parallel vs warm cached runs."""
    with tempfile.TemporaryDirectory() as seq_dir, \
            tempfile.TemporaryDirectory() as par_dir:
        started = time.perf_counter()
        sequential = run_sweep(BENCH_SPEC, jobs=1, cache_dir=seq_dir)
        sequential_seconds = time.perf_counter() - started

        started = time.perf_counter()
        parallel = run_sweep(BENCH_SPEC, jobs=jobs, cache_dir=par_dir)
        parallel_seconds = time.perf_counter() - started

        registry = MetricsRegistry()
        started = time.perf_counter()
        warm = run_sweep(
            BENCH_SPEC, jobs=1, cache_dir=seq_dir, registry=registry
        )
        warm_seconds = time.perf_counter() - started
        cache_hits = registry.get("sweep_cache_hits_total").total()

    sequential_report = render_report(consolidate(sequential))
    parallel_report = render_report(consolidate(parallel))
    warm_report = render_report(consolidate(warm))
    return {
        "benchmark": "sweep-executor",
        "note": (
            "cells are shared-nothing, so speedup scales with physical"
            " cores; on fewer cores than workers the pool pays spawn"
            " startup with nothing to parallelize and speedup drops"
            " below 1 — recorded honestly, see cores_available"
        ),
        "cells": len(BENCH_SPEC),
        "epochs": BENCH_SPEC.epochs,
        "base_sessions": BENCH_SPEC.base_sessions,
        "cores_available": os.cpu_count(),
        "jobs": jobs,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(sequential_seconds / parallel_seconds, 2),
        "warm_rerun": {
            "seconds": round(warm_seconds, 4),
            "executed_cells": len(warm.executed),
            "cache_hits": cache_hits,
        },
        "all_cells_green": sequential.ok and parallel.ok,
        "reports_identical": (
            sequential_report == parallel_report
            and warm_report == sequential_report
        ),
    }


def test_sweep_executor_smoke():
    """CI smoke: parallel must agree byte-for-byte and cache must hit.

    The ≥2.5x speedup acceptance target applies on multi-core
    hardware (cells are shared-nothing, so it scales with cores); CI
    runners and single-core containers cannot honestly meet it, so
    the smoke asserts a conservative floor only when at least four
    cores are present — correctness (byte-identical reports, full
    cache reuse) is asserted unconditionally.
    """
    jobs = min(os.cpu_count() or 1, 4)
    result = run_sweep_benchmark(jobs)
    print(json.dumps(result, indent=2))
    assert result["reports_identical"], "parallel report diverges"
    assert result["all_cells_green"], result
    assert result["warm_rerun"]["executed_cells"] == 0, result
    assert result["warm_rerun"]["cache_hits"] == result["cells"], result
    if (os.cpu_count() or 1) >= 4 and jobs >= 4:
        assert result["speedup"] > 1.5, result


if __name__ == "__main__":
    # Always exercise the real 4-worker pool for the recorded numbers,
    # even where cpu_count() < 4 (the speedup field then shows the
    # single-core spawn overhead rather than a fake win).
    result = run_sweep_benchmark(4)
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_sweep.json")
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
