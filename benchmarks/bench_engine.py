"""Vectorized-engine throughput and streaming memory ceiling.

``bench_dispatch`` told an Amdahl story: batch dispatch alone is ~10x
but end-to-end emulation only ~2.7x, because per-session module
processing and cost accounting in the engine still ran in Python.
This bench measures the full vectorized engine
(``EmulationConfig(batch_engine=True)``) against the scalar reference
and the dispatch-only batch path, asserts all three produce
bit-identical reports, records a sessions/sec trajectory across trace
sizes, and — in script mode — demonstrates the streaming memory
ceiling with subprocess peak-RSS measurements:

    PYTHONPATH=src python benchmarks/bench_engine.py

writes ``BENCH_engine.json`` at the repo root.  Under pytest this runs
a reduced smoke workload (honours ``REPRO_SCALE``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
import time

from repro.core.nids_deployment import plan_deployment
from repro.experiments import scaled
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig, ExecutionPolicy
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator

#: Streaming chunk size used by the memory demonstration children.
DEFAULT_CHUNK = 100_000


def _build(num_sessions: int, seed: int):
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=seed))
    sessions = generator.generate(num_sessions)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    return generator, sessions, deployment


def _usage_digest(usage) -> str:
    """Deterministic fingerprint of a DeploymentUsage — equal digests
    mean bit-identical reports (floats serialize exactly via repr)."""
    payload = json.dumps(usage.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_engine_benchmark(num_sessions: int, seed: int = 51) -> dict:
    """Time the three engine paths on an Internet2 workload.

    scalar: per-session Python loops for dispatch and cost model.
    dispatch-batch: vectorized Fig. 3 sampling, scalar cost model
    (the pre-vectorization default — the Amdahl baseline).
    full-batch: vectorized sampling *and* cost model.
    All three must produce bit-identical reports — a speedup from
    different answers is a bug.  The streaming run re-generates the
    trace in chunks and must match the materialized report exactly.
    """
    generator, sessions, deployment = _build(num_sessions, seed)
    traces = generator.split_by_node(list(sessions), transit=True)
    dispatches = sum(len(trace) for trace in traces.values())

    traffic = Traffic.materialized(generator, sessions)

    def timed(config: EmulationConfig):
        dep = dataclasses.replace(deployment, _shared_hash_cache={})
        start = time.perf_counter()
        usage = run_emulation(traffic, dep, config=config)
        return time.perf_counter() - start, usage

    scalar_seconds, scalar_usage = timed(
        EmulationConfig(batch_engine=False, batch_dispatch=False)
    )
    dispatch_seconds, dispatch_usage = timed(
        EmulationConfig(batch_engine=False, batch_dispatch=True)
    )
    batch_seconds, batch_usage = timed(EmulationConfig(batch_engine=True))

    digests = {
        "scalar": _usage_digest(scalar_usage),
        "dispatch_batch": _usage_digest(dispatch_usage),
        "full_batch": _usage_digest(batch_usage),
    }
    identical = len(set(digests.values())) == 1

    # -- streaming: chunked generation through persistent instances --
    dep = dataclasses.replace(deployment, _shared_hash_cache={})
    chunk_size = max(1, min(DEFAULT_CHUNK, num_sessions // 4 or 1))
    start = time.perf_counter()
    stream_usage = run_emulation(
        Traffic.chunked(generator, generator.generate_chunks(num_sessions, chunk_size)),
        dep,
        config=EmulationConfig(policy=ExecutionPolicy.streamed()),
    )
    stream_seconds = time.perf_counter() - start
    stream_identical = _usage_digest(stream_usage) == digests["full_batch"]

    # -- sessions/sec trajectory across trace sizes -------------------
    trajectory = []
    for fraction in (0.1, 0.25, 0.5, 1.0):
        size = max(1_000, int(num_sessions * fraction))
        if size > num_sessions:
            break
        subset = sessions[:size]
        dep = dataclasses.replace(deployment, _shared_hash_cache={})
        start = time.perf_counter()
        run_emulation(
            Traffic.materialized(generator, subset), dep, config=EmulationConfig()
        )
        elapsed = time.perf_counter() - start
        node_sessions = sum(
            len(trace)
            for trace in generator.split_by_node(list(subset), transit=True).values()
        )
        trajectory.append(
            {
                "num_sessions": size,
                "seconds": round(elapsed, 4),
                "sessions_per_sec": round(size / elapsed, 1),
                "node_sessions_per_sec": round(node_sessions / elapsed, 1),
            }
        )

    return {
        "benchmark": "vectorized-engine",
        "topology": "internet2",
        "num_sessions": num_sessions,
        "node_session_dispatches": dispatches,
        "emulation_end_to_end": {
            "scalar_seconds": round(scalar_seconds, 4),
            "dispatch_batch_seconds": round(dispatch_seconds, 4),
            "full_batch_seconds": round(batch_seconds, 4),
            "speedup_vs_scalar": round(scalar_seconds / batch_seconds, 2),
            "speedup_vs_dispatch_batch": round(dispatch_seconds / batch_seconds, 2),
            "scalar_sessions_per_sec": round(num_sessions / scalar_seconds, 1),
            "full_batch_sessions_per_sec": round(num_sessions / batch_seconds, 1),
        },
        "streaming": {
            "chunk_size": chunk_size,
            "seconds": round(stream_seconds, 4),
            "report_identical_to_materialized": stream_identical,
        },
        "sessions_per_sec_trajectory": trajectory,
        "reports_identical": identical,
    }


# -- memory-ceiling demonstration (script mode) ---------------------------
def _child_main(argv) -> None:
    """Run one emulation in this process and report peak RSS.

    Invoked via ``--child {materialize,stream} N [CHUNK]`` by the
    parent benchmark so each measurement sees a fresh address space.
    """
    import resource

    mode, num_sessions = argv[0], int(argv[1])
    chunk = int(argv[2]) if len(argv) > 2 else DEFAULT_CHUNK
    # Both modes plan on the same bounded prefix so their manifests —
    # and therefore their reports — are directly comparable, and the
    # streaming child never materializes the full trace.
    generator, deployment = _build_for_stream(
        num_sessions, seed=51, plan_sessions=min(num_sessions, 100_000)
    )
    start = time.perf_counter()
    if mode == "materialize":
        usage = run_emulation(
            Traffic.materialized(generator, generator.generate(num_sessions)),
            deployment,
            config=EmulationConfig(),
        )
    else:
        usage = run_emulation(
            Traffic.chunked(
                generator, generator.generate_chunks(num_sessions, chunk)
            ),
            deployment,
            config=EmulationConfig(policy=ExecutionPolicy.streamed()),
        )
    elapsed = time.perf_counter() - start
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        json.dumps(
            {
                "mode": mode,
                "num_sessions": num_sessions,
                "chunk_size": chunk if mode == "stream" else None,
                "peak_rss_mb": round(rss_kb / 1024.0, 1),
                "seconds": round(elapsed, 2),
                "digest": _usage_digest(usage),
            }
        )
    )


def _build_for_stream(num_sessions: int, seed: int, plan_sessions: int):
    """Deployment planned on a bounded prefix so the streaming child
    never materializes the full trace (planning input scales the LP,
    not the emulation semantics)."""
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=seed))
    planning = generator.generate(plan_sessions)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, planning)
    return generator, deployment


def _run_child(mode: str, num_sessions: int, chunk: int = DEFAULT_CHUNK) -> dict:
    args = [sys.executable, os.path.abspath(__file__), "--child", mode, str(num_sessions)]
    if mode == "stream":
        args.append(str(chunk))
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = subprocess.run(args, capture_output=True, text=True, env=env, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def run_memory_ceiling(stream_sessions: int = 1_000_000, parity_sessions: int = 200_000) -> dict:
    """Peak-RSS comparison: materialize-all vs streaming.

    Demonstrates (a) report parity between the two paths at a size
    where both fit comfortably, and (b) that a ≥1M-session streaming
    run's footprint is bounded by the chunk size — its RSS stays at
    the materialized footprint of roughly one chunk, not of the full
    trace.
    """
    materialized = _run_child("materialize", parity_sessions)
    streamed_parity = _run_child("stream", parity_sessions, chunk=50_000)
    big_stream = _run_child("stream", stream_sessions, chunk=DEFAULT_CHUNK)
    small_chunk_stream = _run_child("stream", stream_sessions, chunk=25_000)
    return {
        "parity": {
            "num_sessions": parity_sessions,
            "materialized": materialized,
            "streamed": streamed_parity,
            "reports_identical": materialized["digest"] == streamed_parity["digest"],
        },
        "streaming_1m": {
            "chunk_100k": big_stream,
            "chunk_25k": small_chunk_stream,
            # The ceiling claim: 5x more sessions than the parity run
            # must not cost 5x the memory — the footprint follows the
            # chunk, not the trace.
            "rss_bounded_by_chunk": big_stream["peak_rss_mb"]
            < 2.0 * materialized["peak_rss_mb"],
        },
    }


def test_engine_smoke():
    """CI smoke: the vectorized engine must beat scalar and agree
    exactly, and the streaming path must reproduce the materialized
    report bit for bit.

    The ~10x acceptance target applies to the full-scale script run
    (see BENCH_engine.json); smoke asserts a conservative floor so CI
    timing noise cannot flake the job.
    """
    result = run_engine_benchmark(scaled(20_000, minimum=2_000))
    print(json.dumps(result, indent=2))
    assert result["reports_identical"], "batch reports diverge from scalar"
    assert result["streaming"]["report_identical_to_materialized"], result
    assert result["emulation_end_to_end"]["speedup_vs_scalar"] > 1.5, result


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child_main(sys.argv[2:])
        sys.exit(0)
    result = run_engine_benchmark(int(os.environ.get("BENCH_SESSIONS", "100000")))
    result["memory_ceiling"] = run_memory_ceiling(
        stream_sessions=int(os.environ.get("BENCH_STREAM_SESSIONS", "1000000"))
    )
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
