"""§2.4 and §3.4 — optimization wall-clock times.

Paper results (CPLEX, 2010 hardware): the NIDS LP solves in 0.42 s on
a 50-node topology; the full NIPS rounding pipeline takes ~220 s on
the same scale, dominated by the two LP solves.  Both are comfortably
inside the minutes-scale reconfiguration budget the system needs.

These are true timing benchmarks, so the solver runs are repeated for
statistics (unlike the one-shot figure regenerations).
"""

import pytest

from repro.experiments import repro_scale, time_nids_lp, time_rounding_pipeline


@pytest.mark.figure("timing-nids")
def test_nids_lp_solve_time_50_nodes(benchmark):
    result = benchmark.pedantic(
        time_nids_lp, kwargs={"num_nodes": 50}, rounds=3, iterations=1
    )
    print(
        f"\n§2.4 — NIDS LP on 50 nodes: {result.num_units} units,"
        f" {result.num_variables} d-variables,"
        f" solve {result.solve_seconds:.2f}s (paper: 0.42s)"
    )
    # Must stay inside the periodic-reconfiguration budget.
    assert result.solve_seconds < 60.0


@pytest.mark.figure("timing-nips")
def test_nips_rounding_pipeline_time(benchmark):
    # The 50-node pipeline with 100 rules is the paper's ~220 s
    # measurement; at reduced scale we shrink the ruleset.
    num_rules = 100 if repro_scale() >= 1.0 else 20
    result = benchmark.pedantic(
        time_rounding_pipeline,
        kwargs={"num_nodes": 50, "num_rules": num_rules, "iterations": 1},
        rounds=1,
        iterations=1,
    )
    print(
        f"\n§3.4 — NIPS pipeline on 50 nodes ({num_rules} rules):"
        f" relaxation {result.relaxation_seconds:.1f}s +"
        f" rounding {result.rounding_seconds:.1f}s ="
        f" {result.total_seconds:.1f}s (paper: ~220s at 100 rules)"
    )
    # Periodic recomputation every few minutes must remain viable.
    assert result.total_seconds < 600.0
    # The paper observes most time goes to the LP solves.
    assert result.relaxation_seconds > 0.0
