"""Fig. 7 — max per-node memory/CPU as total traffic volume grows.

Paper result: with 21 NIDS modules and 20k→100k sessions, coordination
reduces the maximum memory footprint by ~20% and the maximum CPU
footprint by ~50%, and the gap widens as the workload increases.
"""

import pytest

from repro.experiments import fig7_volume_scaling, format_comparison_table


@pytest.mark.figure("fig7")
def test_fig7_volume_scaling(once):
    rows = once(fig7_volume_scaling)
    print("\nFig. 7 — max per-node load vs. total traffic volume (21 modules)")
    print(format_comparison_table(rows, "#sessions"))

    for row in rows:
        assert row.coord_cpu < row.edge_cpu
        assert row.coord_mem_mb <= row.edge_mem_mb + 1e-6
    final = rows[-1]
    # The paper's headline reductions at the top volume.
    assert final.cpu_reduction > 0.35, "expected roughly 50% CPU reduction"
    assert final.mem_reduction > 0.05, "expected memory reduction"
    # Loads grow with volume in both deployments.
    assert rows[-1].edge_cpu > rows[0].edge_cpu
    assert rows[-1].coord_cpu > rows[0].coord_cpu
