"""Fig. 8 — memory and CPU load on each network node.

Paper result: in the edge-only deployment node 11 (New York, the
heaviest gravity-model endpoint) is the most loaded; the coordinated
deployment offloads New York's responsibilities to other nodes on the
same paths, and some transit nodes (the paper calls out nodes 6 and 8)
end up doing *more* NIDS processing than in the edge-only setting.
"""

import pytest

from repro.experiments import fig8_per_node_profile


@pytest.mark.figure("fig8")
def test_fig8_per_node_loads(once):
    profile = once(fig8_per_node_profile)
    print("\nFig. 8 — per-node load, edge-only vs. coordinated (21 modules)")
    header = (
        f"{'#':>2} {'node':<6} {'edge cpu':>12} {'coord cpu':>12}"
        f" {'edge MB':>9} {'coord MB':>9}"
    )
    print(header)
    print("-" * len(header))
    for index, (node, edge_cpu, coord_cpu, edge_mb, coord_mb) in enumerate(
        profile.rows(), start=1
    ):
        print(
            f"{index:>2} {node:<6} {edge_cpu:>12.0f} {coord_cpu:>12.0f}"
            f" {edge_mb:>9.1f} {coord_mb:>9.1f}"
        )

    assert profile.edge.hottest_cpu_node() == "NYCM"
    assert profile.coordinated.cpu("NYCM") < profile.edge.cpu("NYCM")
    gained = [
        node
        for node, edge_cpu, coord_cpu, _, _ in profile.rows()
        if coord_cpu > edge_cpu
    ]
    assert gained, "some transit nodes must absorb offloaded work"
    # Load dispersion shrinks: the coordinated max/min CPU ratio is
    # tighter than edge-only's.
    edge_cpus = [row[1] for row in profile.rows()]
    coord_cpus = [row[2] for row in profile.rows()]
    assert max(coord_cpus) / min(coord_cpus) < max(edge_cpus) / min(edge_cpus)
