"""Fig. 11 — normalized regret of the online adaptation over time.

Paper result: across 5 independent runs of 1000 epochs against i.i.d.
uniform match rates on Internet2, the FPL strategy's cumulative regret
stays within 15% of the best static solution in hindsight (sometimes
negative), trending toward zero.
"""

import pytest

from repro.experiments import fig11_online_regret, format_fig11_table
from repro.experiments.online_adaptation import PAPER_RUNS


@pytest.mark.figure("fig11")
def test_fig11_online_regret(once):
    evaluation = once(fig11_online_regret, num_runs=PAPER_RUNS)
    print("\nFig. 11 — normalized regret over time (5 runs)")
    print(format_fig11_table(evaluation))

    assert len(evaluation.runs) == PAPER_RUNS
    # Paper band: regret at most ~15% of the best static solution.
    assert evaluation.worst_final_regret <= 0.15
    # Regret trends down: the second half of each trajectory is no
    # worse than its first reported point.
    for run in evaluation.runs:
        regrets = [p.normalized_regret for p in run.points]
        assert regrets[-1] <= regrets[0] + 0.02
