"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation switches off one design decision and measures the cost,
substantiating why the paper's system is built the way it is:

* event-engine vs. policy-engine coordination checks (Fig. 4 choice);
* LP-optimized vs. naive uniform traffic split;
* the greedy rule-filling step of the rounding pipeline;
* FPL's perturbation vs. plain follow-the-leader under an adaptive
  adversary;
* redundancy level r (the §2.5 reliability extension's load cost);
* Dist = hops vs. Dist = 1 in the NIPS objective (footprint vs. pure
  drop volume).
"""

import random

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.core.nids_lp import (
    integral_assignment,
    solve_nids_lp,
    uniform_assignment,
)
from repro.core.online import FPLConfig, run_online_adaptation
from repro.core.rounding import RoundingVariant, best_of_roundings
from repro.core.units import build_units
from repro.core.nips_milp import solve_relaxation
from repro.experiments import scaled
from repro.experiments.nids_network_wide import NetworkWideSetup
from repro.experiments.nips_rounding import build_problem_for_topology
from repro.experiments.online_adaptation import build_online_problem
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import BroMode, EmulationConfig
from repro.nids.modules import module_set
from repro.nips.adversary import EvasiveAdversary
from repro.topology.routing import DistanceMetric


@pytest.fixture(scope="module")
def nids_world():
    setup = NetworkWideSetup.internet2(seed=42)
    sessions = setup.generator.generate(scaled(100_000, minimum=4_000))
    deployment = setup.deployment(sessions, 21)
    return setup, sessions, deployment


@pytest.mark.figure("ablation-check-placement")
def test_ablation_event_vs_policy_checks(once, nids_world):
    """Approach 2 (event-engine checks) vs. approach 1 network-wide."""
    setup, sessions, deployment = nids_world

    def run():
        traffic = Traffic.materialized(setup.generator, sessions)
        event = run_emulation(
            traffic, deployment, config=EmulationConfig(mode=BroMode.COORD_EVENT)
        )
        policy = run_emulation(
            traffic, deployment, config=EmulationConfig(mode=BroMode.COORD_POLICY)
        )
        return event, policy

    event, policy = once(run)
    total_event = sum(r.cpu for r in event.reports.values())
    total_policy = sum(r.cpu for r in policy.reports.values())
    print(
        f"\nablation: total coordinated CPU — event-engine checks"
        f" {total_event:,.0f} vs. policy-engine checks {total_policy:,.0f}"
        f" (+{total_policy / total_event - 1:.1%})"
    )
    assert total_policy > total_event


@pytest.mark.figure("ablation-lp-vs-uniform")
def test_ablation_lp_vs_uniform_split(once, nids_world):
    """What the LP's load-awareness buys over an even split."""
    setup, sessions, _ = nids_world
    units = build_units(module_set(21), sessions, setup.paths)

    def run():
        lp = solve_nids_lp(units, setup.topology)
        naive = uniform_assignment(units, setup.topology)
        return lp, naive

    lp, naive = once(run)
    print(
        f"\nablation: max-load objective — LP {lp.objective:,.0f}"
        f" vs. uniform split {naive.objective:,.0f}"
        f" (LP is {1 - lp.objective / naive.objective:.1%} lower)"
    )
    assert lp.objective < naive.objective


@pytest.mark.figure("ablation-fractional")
def test_ablation_fractional_vs_integral_split(once, nids_world):
    """Why d_ikj is fractional: whole-unit assignment cannot split a
    hot path's load across its nodes."""
    setup, sessions, _ = nids_world
    units = build_units(module_set(21), sessions, setup.paths)

    def run():
        fractional = solve_nids_lp(units, setup.topology)
        integral = integral_assignment(units, setup.topology)
        return fractional, integral

    fractional, integral = once(run)
    print(
        f"\nablation: max-load objective — fractional LP"
        f" {fractional.objective:,.0f} vs. whole-unit assignment"
        f" {integral.objective:,.0f}"
        f" (fractional is {1 - fractional.objective / integral.objective:.1%} lower)"
    )
    assert fractional.objective <= integral.objective + 1e-9


@pytest.mark.figure("ablation-greedy")
def test_ablation_greedy_fill(once):
    """The greedy step's contribution to the rounding pipeline."""
    problem = build_problem_for_topology(
        "Abilene", match_seed=3, capacity_fraction=0.10, num_rules=60
    )

    def run():
        relaxed = solve_relaxation(problem)
        results = {}
        for variant in RoundingVariant:
            results[variant] = best_of_roundings(
                problem, variant, iterations=3, seed=2, relaxed=relaxed
            ).fraction_of_lp
        return results

    fractions = once(run)
    print("\nablation: fraction of OptLP by rounding variant")
    for variant, fraction in fractions.items():
        print(f"  {variant.value:<18} {fraction:.3f}")
    assert fractions[RoundingVariant.BASIC] <= fractions[RoundingVariant.LP] + 1e-9
    assert fractions[RoundingVariant.LP] <= fractions[RoundingVariant.GREEDY_LP] + 1e-9


@pytest.mark.figure("ablation-fpl")
def test_ablation_fpl_vs_follow_the_leader(once):
    """FPL's perturbation against a reactive adversary.

    With the perturbation effectively removed (epsilon -> infinity,
    amplitude -> 0) the defender becomes deterministic follow-the-
    leader, and the evasive adversary exploits it relative to FPL.
    """
    epochs = scaled(300, minimum=60)
    problem = build_online_problem(num_rules=4)

    def run():
        fpl = run_online_adaptation(
            problem,
            EvasiveAdversary(problem, seed=9),
            FPLConfig(epochs=epochs, perturbation_scale=1e5, seed=4),
            report_every=epochs,
        )
        ftl = run_online_adaptation(
            problem,
            EvasiveAdversary(problem, seed=9),
            FPLConfig(epochs=epochs, epsilon=1e18, seed=4),  # no perturbation
            report_every=epochs,
        )
        return fpl, ftl

    fpl, ftl = once(run)
    print(
        f"\nablation: final regret vs. evasive adversary —"
        f" FPL {fpl.final_regret:+.3f} vs. follow-the-leader"
        f" {ftl.final_regret:+.3f}"
    )
    assert fpl.final_regret <= ftl.final_regret + 0.05


@pytest.mark.figure("ablation-fine-grained")
def test_ablation_fine_grained_coordination(once, nids_world):
    """The §2.5 future-work extension: first-packet subscriptions
    remove the baseline-tracking duplication at scan ingresses."""
    setup, sessions, deployment = nids_world

    def run():
        traffic = Traffic.materialized(setup.generator, sessions)
        coarse = run_emulation(traffic, deployment)
        fine = run_emulation(
            traffic, deployment, config=EmulationConfig(fine_grained=True)
        )
        return coarse, fine

    coarse, fine = once(run)
    print(
        f"\nablation: fine-grained coordination — max CPU"
        f" {coarse.max_cpu:,.0f} -> {fine.max_cpu:,.0f}"
        f" ({1 - fine.max_cpu / coarse.max_cpu:.1%} further reduction),"
        f" max mem {coarse.max_mem_mb:.1f} -> {fine.max_mem_mb:.1f} MB"
    )
    assert fine.max_cpu < coarse.max_cpu
    assert fine.max_mem_bytes < coarse.max_mem_bytes


@pytest.mark.figure("ablation-redundancy")
def test_ablation_redundancy_levels(once, nids_world):
    """Load cost of the §2.5 r-fold reliability extension."""
    setup, sessions, _ = nids_world
    units = build_units(module_set(21), sessions, setup.paths)

    def run():
        return {
            r: solve_nids_lp(units, setup.topology, coverage=float(r)).objective
            for r in (1, 2, 3)
        }

    objectives = once(run)
    print("\nablation: max-load objective vs. redundancy level")
    for r, objective in objectives.items():
        print(f"  r={r}  objective={objective:,.0f}")
    assert objectives[1] < objectives[2] < objectives[3]
    # Replication is near-linear in load (redundancy is not free).
    assert objectives[2] >= 1.5 * objectives[1]


@pytest.mark.figure("baseline-cluster")
def test_baseline_chokepoint_cluster(once, nids_world):
    """The §1 comparison: a chokepoint NIDS cluster pays a replication
    tax on host-scoped analyses that network-wide coordination avoids
    entirely (it analyzes where the traffic already is)."""
    from repro.nids.cluster import emulate_cluster

    setup, sessions, deployment = nids_world
    # A chokepoint cluster can only analyze traffic that physically
    # traverses its location.
    observable = [
        s for s in sessions if "NYCM" in setup.generator.path_of(s)
    ]

    def run():
        coordinated = run_emulation(
            Traffic.materialized(setup.generator, sessions), deployment
        )
        cluster = emulate_cluster(
            "NYCM", observable, deployment.modules, num_workers=4
        )
        return coordinated, cluster

    coordinated, cluster = once(run)
    coverage = len(observable) / len(sessions)
    print(
        f"\nbaseline: 4-worker cluster at New York — observes only"
        f" {coverage:.0%} of the network's sessions (coverage gap);"
        f" pays replication on {cluster.replication_fraction:.0%} of"
        f" analyzed packets.  Coordinated deployment: 100% coverage"
        f" with zero replication, max node {coordinated.max_cpu:,.0f}"
        f" vs. cluster max worker {cluster.max_worker_cpu:,.0f}."
    )
    assert coverage < 1.0, "a chokepoint must not see everything"
    assert cluster.replicated_packets > 0


@pytest.mark.figure("ablation-dist")
def test_ablation_distance_metric(once):
    """Dist = hops pushes drops upstream; Dist = 1 is indifferent."""
    hops_problem = build_problem_for_topology(
        "Abilene", match_seed=5, capacity_fraction=0.10, num_rules=40
    )
    import dataclasses

    unit_problem = dataclasses.replace(
        hops_problem,
        dist={
            pair: {node: 1.0 for node in dist}
            for pair, dist in hops_problem.dist.items()
        },
    )

    def run():
        hops = solve_relaxation(hops_problem)
        unit = solve_relaxation(unit_problem)
        return hops, unit

    hops, unit = once(run)

    def mean_drop_distance(problem, solution):
        weighted = total = 0.0
        for (i, pair, node), fraction in solution.d.items():
            mass = hops_problem.items[pair] * hops_problem.match.rate(i, pair) * fraction
            weighted += mass * hops_problem.dist[pair][node]
            total += mass
        return weighted / total if total else 0.0

    hops_distance = mean_drop_distance(hops_problem, hops)
    unit_distance = mean_drop_distance(unit_problem, unit)
    print(
        f"\nablation: mean downstream distance of drops —"
        f" Dist=hops {hops_distance:.2f} vs. Dist=1 {unit_distance:.2f}"
    )
    # Optimizing footprint places drops farther upstream on average.
    assert hops_distance >= unit_distance
