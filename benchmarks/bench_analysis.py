"""Static-analysis wall-time guard: lint + flow over the full repo.

The analyzers run fail-closed in CI on every push, so their cost is a
tax on every contribution.  This bench runs the domain linter and the
REP2xx flow pass back to back over ``src/repro`` through one shared
``ASTStore`` and asserts the whole thing stays under the 10-second
budget, with every file parsed exactly once (the flow pass reuses the
linter's trees).  Script mode writes ``BENCH_analysis.json``:

    PYTHONPATH=src python benchmarks/bench_analysis.py
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.astcache import ASTStore
from repro.analysis.flow import flow_paths
from repro.analysis.lint import find_project_root, iter_python_files, lint_paths

MAX_ANALYSIS_SECONDS = 10.0

REPO_ROOT = find_project_root(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_REPRO = os.path.join(REPO_ROOT or ".", "src", "repro")


def run_analysis_benchmark() -> dict:
    """Time lint + flow over src/repro with one shared AST store."""
    files = list(iter_python_files([SRC_REPRO]))
    store = ASTStore()

    start = time.perf_counter()
    lint_result = lint_paths(files, root=REPO_ROOT, store=store)
    lint_seconds = time.perf_counter() - start
    parses_after_lint = store.parse_count

    start = time.perf_counter()
    flow_result = flow_paths(files, root=REPO_ROOT, store=store)
    flow_seconds = time.perf_counter() - start

    return {
        "benchmark": "static-analysis",
        "files": len(files),
        "lint_seconds": round(lint_seconds, 4),
        "flow_seconds": round(flow_seconds, 4),
        "total_seconds": round(lint_seconds + flow_seconds, 4),
        "budget_seconds": MAX_ANALYSIS_SECONDS,
        "parse_count": store.parse_count,
        "reparses_in_flow": store.parse_count - parses_after_lint,
        "lint_violations": len(lint_result.violations),
        "flow_violations": len(flow_result.violations),
        "lint_ok": lint_result.ok,
        "flow_ok": flow_result.ok,
    }


def test_analysis_wall_time_smoke():
    """CI guard: full-repo lint + flow under budget, parse-once holds."""
    stats = run_analysis_benchmark()
    assert stats["total_seconds"] < MAX_ANALYSIS_SECONDS, stats
    # The shared store means the flow pass adds zero parses on top of
    # the linter's, and the linter parses each file exactly once.
    assert stats["parse_count"] == stats["files"], stats
    assert stats["reparses_in_flow"] == 0, stats
    # The shipped tree is self-clean under both passes.
    assert stats["lint_ok"] and stats["flow_ok"], stats


if __name__ == "__main__":
    results = run_analysis_benchmark()
    print(json.dumps(results, indent=2))
    out = os.path.join(REPO_ROOT or ".", "BENCH_analysis.json")
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {out}")
