"""Batch-dispatch throughput: vectorized vs. scalar Fig. 3 checks.

The coordinated emulation runs the Fig. 3 decision procedure for every
(module, session) pair at every node on the session's path.  This
bench measures end-to-end sessions/sec of coordinated emulation with
the scalar per-session path versus the NumPy batch fast path, asserts
the two produce identical reports, and (when run as a script) writes
``BENCH_dispatch.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_dispatch.py

Under pytest this runs a reduced smoke workload (honours
``REPRO_SCALE``); the script mode uses the paper-scale 100k-session
trace.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.core.nids_deployment import plan_deployment
from repro.experiments import scaled
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig
from repro.nids.modules import STANDARD_MODULES
from repro.obs import MetricsRegistry
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


def run_dispatch_benchmark(num_sessions: int, seed: int = 51) -> dict:
    """Time scalar vs. batch Fig. 3 dispatch on an Internet2 workload.

    Two measurements: the dispatch stage itself (every node deciding
    its full trace, the loop the vectorization replaces) and the full
    coordinated emulation end to end (where Amdahl's law caps the
    gain — connection tracking and the cost model are unchanged).
    The batch path must reproduce the scalar emulation reports exactly
    — a speedup from different answers is a bug.
    """
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=seed))
    sessions = generator.generate(num_sessions)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    # Every node processes its transit traffic, so the dispatch count
    # is sessions weighted by path length, not len(sessions).
    traces = generator.split_by_node(list(sessions), transit=True)
    dispatches = sum(len(trace) for trace in traces.values())

    def fresh():
        # A fresh private hash cache per run: no path may benefit
        # from hashes another already computed.
        return dataclasses.replace(deployment, _shared_hash_cache={})

    # -- dispatch stage only: the engine's per-session sampling loop --
    dep = fresh()
    start = time.perf_counter()
    for node, trace in traces.items():
        dispatcher = dep.dispatcher(node)
        for session in trace:
            for spec in dep.modules:
                dispatcher.should_analyze(spec, session)
    scalar_seconds = time.perf_counter() - start

    dep = fresh()
    start = time.perf_counter()
    for node, trace in traces.items():
        dep.dispatcher(node).sampled_modules_batch(trace)
    batch_seconds = time.perf_counter() - start

    # -- full emulation end to end, plus report equivalence ----------
    traffic = Traffic.materialized(generator, sessions)

    def timed_emulation(batch: bool, registry=None):
        dep = fresh()
        config = EmulationConfig(batch_dispatch=batch)
        start = time.perf_counter()
        usage = run_emulation(traffic, dep, config=config, registry=registry)
        return time.perf_counter() - start, usage

    emu_scalar_seconds, scalar_usage = timed_emulation(batch=False)
    emu_batch_seconds, batch_usage = timed_emulation(batch=True)

    # -- telemetry overhead: live registry vs. the no-op default -----
    # Best-of-two per variant so a single scheduler hiccup cannot
    # masquerade as instrumentation cost.
    noop_seconds = min(timed_emulation(batch=True)[0] for _ in range(2))
    live_seconds, live_usage = timed_emulation(batch=True, registry=MetricsRegistry())
    live_seconds = min(live_seconds, timed_emulation(batch=True, registry=MetricsRegistry())[0])
    registry_identical = all(
        batch_usage.reports[node].cpu == live_usage.reports[node].cpu
        and batch_usage.reports[node].mem_bytes == live_usage.reports[node].mem_bytes
        for node in batch_usage.reports
    )

    identical = all(
        scalar_usage.reports[node].cpu == batch_usage.reports[node].cpu
        and scalar_usage.reports[node].mem_bytes == batch_usage.reports[node].mem_bytes
        and scalar_usage.reports[node].module_cpu
        == batch_usage.reports[node].module_cpu
        and scalar_usage.reports[node].module_items
        == batch_usage.reports[node].module_items
        for node in scalar_usage.reports
    )
    return {
        "benchmark": "coordinated-dispatch",
        "topology": "internet2",
        "num_sessions": num_sessions,
        "node_session_dispatches": dispatches,
        "dispatch": {
            "scalar_seconds": round(scalar_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "scalar_sessions_per_sec": round(dispatches / scalar_seconds, 1),
            "batch_sessions_per_sec": round(dispatches / batch_seconds, 1),
            "speedup": round(scalar_seconds / batch_seconds, 2),
        },
        "emulation_end_to_end": {
            "scalar_seconds": round(emu_scalar_seconds, 4),
            "batch_seconds": round(emu_batch_seconds, 4),
            "speedup": round(emu_scalar_seconds / emu_batch_seconds, 2),
        },
        "telemetry_overhead": {
            "noop_registry_seconds": round(noop_seconds, 4),
            "live_registry_seconds": round(live_seconds, 4),
            "overhead_fraction": round(live_seconds / noop_seconds - 1.0, 4),
            "reports_identical": registry_identical,
        },
        "reports_identical": identical,
    }


def test_batch_dispatch_smoke():
    """CI smoke: the batch path must beat scalar and agree exactly.

    The ≥5x acceptance target applies to the full-scale script run
    (see BENCH_dispatch.json); at smoke scale we assert a conservative
    floor so CI timing noise cannot flake the job.
    """
    result = run_dispatch_benchmark(scaled(20_000, minimum=2_000))
    print(json.dumps(result, indent=2))
    assert result["reports_identical"], "batch reports diverge from scalar"
    assert result["dispatch"]["speedup"] > 1.5, result
    assert result["emulation_end_to_end"]["speedup"] > 1.0, result
    telemetry = result["telemetry_overhead"]
    assert telemetry["reports_identical"], "live registry changed the results"
    # A live registry may cost at most 10% throughput vs. the no-op
    # default (the tentpole budget is 5%; smoke allows timing noise).
    assert telemetry["overhead_fraction"] <= 0.10, telemetry


if __name__ == "__main__":
    result = run_dispatch_benchmark(
        int(os.environ.get("BENCH_SESSIONS", "100000"))
    )
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_dispatch.json")
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
