"""Controller-failover benchmark: leader crash at 10/50/200 agents.

Run directly to (re)generate ``BENCH_failover.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_failover.py

For each deployment size the ``leader-crash-mid-push`` plan runs
against a sized synthetic backbone (``pop10``/``pop50``/``pop200``)
with three controller replicas: the leader crashes mid-push at
t=0.4 and stays down until the plan heals.  The benchmark records how
long leadership and full coordination take to recover and what the
failover costs on the bus — epochs with no acting leader, the epoch
the first standby takes over, epochs from heal to a settled
configuration, and total/per-kind message counts against a fault-free
run of the identical scenario (same topology, sessions, and replica
count), so the delta is purely the crash plus takeover.

Large synthetic topologies drift their session mix over 18 epochs, so
every run re-resolves the deployment every 3 epochs; the fault-free
baseline pays the same re-plans and the overhead column stays honest.

Sizes honour ``BENCH_FAILOVER_SIZES`` (comma-separated agent counts).
"""

import json
import math
import os
import time

from repro.control.chaos import ChaosConfig, FaultPlan, build_plan, run_chaos
from repro.control.protocol import (
    KIND_NACK,
    KIND_PROMOTE,
    KIND_STATE_HANDOFF,
    KIND_TERM_ANNOUNCE,
)
from repro.topology import by_label

SIZES = (10, 50, 200)
SEED = 3
EPOCHS = 18
BASE_SESSIONS = 400
RESOLVE_EVERY = 3

#: The HA control-plane message kinds; everything else on the bus is
#: ordinary coordination traffic (pushes, heartbeats, acks, leases).
HA_KINDS = (KIND_TERM_ANNOUNCE, KIND_PROMOTE, KIND_STATE_HANDOFF, KIND_NACK)


def _sizes_from_env():
    raw = os.environ.get("BENCH_FAILOVER_SIZES", "")
    if not raw:
        return SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _config(size: int, plan: FaultPlan, replicas: int = 1) -> ChaosConfig:
    return ChaosConfig(
        plan=plan,
        topology=f"pop{size}",
        epochs=EPOCHS,
        base_sessions=BASE_SESSIONS,
        seed=SEED,
        resolve_every=RESOLVE_EVERY,
        replicas=replicas,
    )


def bench_one(size: int) -> dict:
    """Crash the leader at *size* agents and measure the recovery."""
    topology = by_label(f"pop{size}")
    baseline = run_chaos(
        _config(size, FaultPlan(name="fault-free", events=()), replicas=3)
    )
    plan = build_plan(
        "leader-crash-mid-push", SEED, EPOCHS, topology.node_names
    )
    started = time.perf_counter()
    crash = run_chaos(_config(size, plan))
    seconds = time.perf_counter() - started

    heal_epoch = int(math.ceil(plan.heal_time))
    takeover_epoch = next(
        (
            record.record.epoch
            for record in crash.records
            if record.leader == "controller-1"
        ),
        None,
    )
    summary = crash.ha_summary
    return {
        "agents": len(topology.node_names),
        "ok": crash.ok and baseline.ok,
        "violations": crash.check_acceptance() + baseline.check_acceptance(),
        "leaderless_epochs": sum(
            1 for record in crash.records if record.leader is None
        ),
        "takeover_epoch": takeover_epoch,
        "heal_epoch": heal_epoch,
        "reconverged_epoch": crash.reconverged_epoch,
        "epochs_to_reconverge": (
            crash.reconverged_epoch - heal_epoch
            if crash.reconverged_epoch is not None
            else None
        ),
        "elections": summary["elections"],
        "depositions": summary["depositions"],
        "bus_messages": crash.bus_stats.sent,
        "bus_bytes": crash.bus_stats.bytes_sent,
        # Usually negative: the 12-epoch outage removes more push and
        # lease traffic than election + handoff + announces add back.
        "messages_delta_vs_fault_free": crash.bus_stats.sent
        - baseline.bus_stats.sent,
        "ha_messages_by_kind": {
            kind: crash.bus_stats.sent_by_kind.get(kind, 0)
            for kind in HA_KINDS
        },
        "run_seconds": round(seconds, 3),
    }


def run_failover_benchmark(sizes=None) -> dict:
    rows = [bench_one(size) for size in (sizes or _sizes_from_env())]
    return {
        "benchmark": "controller-failover",
        "plan": "leader-crash-mid-push",
        "replicas": 3,
        "seed": SEED,
        "epochs": EPOCHS,
        "base_sessions": BASE_SESSIONS,
        "resolve_every": RESOLVE_EVERY,
        "rows": rows,
    }


def test_failover_smoke():
    """CI smoke: every size recovers with one election, no invariant
    violations, and reconverges within the configured budget."""
    result = run_failover_benchmark()
    print(json.dumps(result, indent=2))
    for row in result["rows"]:
        assert row["ok"], row["violations"]
        assert row["elections"] == 1, row
        assert row["depositions"] == 0, row
        assert row["takeover_epoch"] is not None, row
        assert row["takeover_epoch"] <= row["heal_epoch"], row
        assert row["epochs_to_reconverge"] is not None, row
        assert row["epochs_to_reconverge"] <= 4, row
        # Failover control traffic exists but must not dominate.
        ha_total = sum(row["ha_messages_by_kind"].values())
        assert ha_total > 0, row
        assert ha_total < row["bus_messages"] / 2, row


if __name__ == "__main__":
    result = run_failover_benchmark()
    out = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_failover.json"
    )
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
