"""Sharded-emulation scaling: process-pool fan-out vs. inline.

``run_emulation`` under ``ExecutionPolicy.sharded(...)`` fans per-node
(and per-chunk) trace shards out to a spawn process pool and merges the
returned partial reports exactly.  This bench times the inline engine
against sharded runs at one and two workers, asserts every path
produces bit-identical reports (a speedup from different answers is a
bug), and (as a script) writes ``BENCH_shard.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_shard.py

Honest numbers, honestly framed: the CI runner and the reference dev
box are effectively 1-2 shared cores, and a sharded run additionally
pays the constant costs the inline path never sees — spawn-importing
the package per worker (~1s each), pickling the session shards across
the process boundary, and unpickling the partials back.  At paper
scale (100k sessions, a few seconds of engine time) those constants
are a large fraction of the work, so expect ``jobs=1`` to run *slower*
than inline and ``jobs=2`` to roughly break even on a busy runner.
The point of the bench is (a) exactness under fan-out and (b) the
measured fixed overhead, from which the break-even trace size on a
real multi-core host is easy to estimate: sharding pays off once
per-shard engine time dominates the ~2-4s constant, i.e. multi-million
session traces or expensive module sets, with ideal scaling bounded by
the hottest node's trace (shards of one node merge on the parent).

Under pytest this runs a reduced smoke workload (honours
``REPRO_SCALE``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time

from repro.core.nids_deployment import plan_deployment
from repro.experiments import scaled
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig, ExecutionPolicy
from repro.nids.modules import STANDARD_MODULES
from repro.nids.shard import plan_shards
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


def _build(num_sessions: int, seed: int):
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=seed))
    sessions = generator.generate(num_sessions)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    return generator, sessions, deployment


def _usage_digest(usage) -> str:
    """Deterministic fingerprint of a DeploymentUsage — equal digests
    mean bit-identical reports (floats serialize exactly via repr)."""
    payload = json.dumps(usage.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_shard_benchmark(num_sessions: int, seed: int = 51) -> dict:
    """Time inline vs. sharded coordinated emulation on Internet2.

    Every variant runs over the same materialized trace with a fresh
    hash cache, so no path benefits from another's warm state.  The
    chunk size is set to split the hottest nodes into a handful of
    shards each — enough fan-out to exercise the merge, small enough
    that pickling does not dwarf the engine work.
    """
    generator, sessions, deployment = _build(num_sessions, seed)
    traces = generator.split_by_node(list(sessions), transit=True)
    chunk_size = max(1_000, num_sessions // 4)
    shards = plan_shards(traces, chunk_size, allow_chunking=True)

    def timed(policy: ExecutionPolicy):
        dep = dataclasses.replace(deployment, _shared_hash_cache={})
        config = EmulationConfig(policy=policy)
        start = time.perf_counter()
        usage = run_emulation(Traffic.materialized(generator, sessions), dep, config=config)
        return time.perf_counter() - start, usage

    inline_seconds, inline_usage = timed(ExecutionPolicy.inline())
    one_seconds, one_usage = timed(
        ExecutionPolicy.sharded(jobs=1, chunk_size=chunk_size)
    )
    two_seconds, two_usage = timed(
        ExecutionPolicy.sharded(jobs=2, chunk_size=chunk_size)
    )

    digests = {
        "inline": _usage_digest(inline_usage),
        "sharded_1_worker": _usage_digest(one_usage),
        "sharded_2_workers": _usage_digest(two_usage),
    }
    identical = len(set(digests.values())) == 1
    # The spawn+pickle constant: a 1-worker pool does all the engine
    # work inline does, plus the full fixed cost of sharding.
    fixed_overhead = one_seconds - inline_seconds
    return {
        "benchmark": "sharded-emulation",
        "topology": "internet2",
        "num_sessions": num_sessions,
        "chunk_size": chunk_size,
        "num_shards": len(shards),
        "hottest_node_sessions": max(len(trace) for trace in traces.values()),
        "seconds": {
            "inline": round(inline_seconds, 4),
            "sharded_1_worker": round(one_seconds, 4),
            "sharded_2_workers": round(two_seconds, 4),
        },
        "speedup_vs_inline": {
            "sharded_1_worker": round(inline_seconds / one_seconds, 2),
            "sharded_2_workers": round(inline_seconds / two_seconds, 2),
        },
        "spawn_and_pickle_overhead_seconds": round(fixed_overhead, 4),
        "scaling_note": (
            "Measured on a 1-2 shared-core runner: the 1-worker sharded run"
            " pays the full spawn/pickle constant on top of the inline"
            " engine time, so speedups < 1.0 are the expected honest"
            " result at this scale.  On an unloaded multi-core host,"
            " sharding approaches min(jobs, num_shards)x on the engine"
            " portion once per-shard compute dominates the constant;"
            " the ceiling is set by the hottest node's trace."
        ),
        "reports_identical": identical,
    }


def test_shard_smoke():
    """CI smoke: sharded fan-out must agree with inline bit for bit.

    No speedup floor is asserted — on a 1-2 core CI runner the spawn
    constant honestly makes sharding a wash or a loss at smoke scale
    (see the scaling note in BENCH_shard.json); exactness is the
    contract this job guards.
    """
    result = run_shard_benchmark(scaled(20_000, minimum=2_000))
    print(json.dumps(result, indent=2))
    assert result["reports_identical"], "sharded reports diverge from inline"
    assert result["num_shards"] >= 2, result
    assert result["seconds"]["sharded_2_workers"] > 0


if __name__ == "__main__":
    result = run_shard_benchmark(int(os.environ.get("BENCH_SESSIONS", "100000")))
    out = os.path.join(os.path.dirname(__file__), "..", "BENCH_shard.json")
    with open(out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
