"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures; each prints the
rows/series the paper reports.  Sizes honour ``REPRO_SCALE`` (default
0.1) — set ``REPRO_SCALE=1`` to run the paper's full volumes.  Run:

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a paper figure"
    )


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result.

    These experiments take seconds to minutes; statistical repetition
    belongs to the cheap solver micro-benches, not the figure
    regenerations.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
