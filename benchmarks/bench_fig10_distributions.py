"""Fig. 10's robustness claim across match-rate distributions.

"These results hold for other ``M_ik`` distributions as well (not
shown for brevity)" — §3.4.  This bench shows them: the rounding
pipeline's fraction-of-OptLP is evaluated under the paper's uniform
draw plus exponential (heavy-tailed) and hotspot (concentrated attack)
distributions, and under heterogeneous rule resource requirements.
"""

import random

import pytest

from repro.core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    build_nips_problem,
    solve_relaxation,
)
from repro.core.rounding import RoundingVariant, best_of_roundings
from repro.nips.rules import MatchRateMatrix, NIPSRule, unit_rules
from repro.topology.datasets import internet2

_NUM_RULES = 60
_CAM_FRACTION = 0.10


def _topology():
    return internet2().set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS,
        mem=DEFAULT_MEM_CAP_FLOWS,
        cam=_CAM_FRACTION * _NUM_RULES,
    )


def _pairs(topology):
    return [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]


def _evaluate(problem):
    relaxed = solve_relaxation(problem)
    best = best_of_roundings(
        problem, RoundingVariant.GREEDY_LP, iterations=3, seed=1, relaxed=relaxed
    )
    return best.fraction_of_lp


@pytest.mark.figure("fig10-distributions")
@pytest.mark.parametrize("distribution", ["uniform", "exponential", "hotspot"])
def test_fig10_other_match_distributions(once, distribution):
    topology = _topology()
    rules = unit_rules(_NUM_RULES)
    rng = random.Random(11)
    maker = getattr(MatchRateMatrix, distribution)
    match = maker(rules, _pairs(topology), rng)
    problem = build_nips_problem(topology, rules, match)
    fraction = once(_evaluate, problem)
    print(f"\nFig. 10 robustness — {distribution}: {fraction:.3f} of OptLP")
    assert fraction >= 0.90


@pytest.mark.figure("fig10-heterogeneous")
def test_fig10_heterogeneous_rule_requirements(once):
    """Beyond the paper's unit requirements: rules with varying TCAM,
    CPU, and memory footprints round just as well."""
    topology = _topology()
    rng = random.Random(13)
    rules = [
        NIPSRule(
            index=i,
            name=f"rule-{i:03d}",
            cpu_req=rng.choice([0.5, 1.0, 2.0]),
            mem_req=rng.choice([0.5, 1.0, 2.0]),
            cam_req=rng.choice([1.0, 2.0]),
        )
        for i in range(_NUM_RULES)
    ]
    match = MatchRateMatrix.uniform(rules, _pairs(topology), rng)
    problem = build_nips_problem(topology, rules, match)
    fraction = once(_evaluate, problem)
    print(f"\nFig. 10 robustness — heterogeneous requirements: {fraction:.3f} of OptLP")
    assert fraction >= 0.85
