"""Heterogeneous node capabilities (paper §2.2: "we consider a general
model where network elements have heterogeneous capabilities").

The evaluations use uniform capacities for comparability; this bench
exercises the general model: nodes with 4x capacity spread.  The LP
must (a) keep the *relative* loads balanced — every node's load as a
fraction of its capacity tops out at the same objective — and
(b) steer absolute work toward the bigger boxes.
"""

import random

import pytest

from repro.core.nids_lp import solve_nids_lp, uniform_assignment
from repro.core.units import build_units
from repro.experiments import scaled
from repro.nids.modules import module_set
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.mark.figure("heterogeneous-capacities")
def test_heterogeneous_capacity_balancing(once):
    topology = internet2()
    rng = random.Random(5)
    factors = {}
    for name in topology.node_names:
        factor = rng.choice([0.5, 1.0, 2.0])
        factors[name] = factor
        node = topology.node(name)
        node.cpu_capacity = factor
        node.mem_capacity = factor
    paths = PathSet(topology)
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=5))
    sessions = generator.generate(scaled(100_000, minimum=4_000))
    units = build_units(module_set(21), sessions, paths)

    def run():
        return solve_nids_lp(units, topology), uniform_assignment(units, topology)

    lp, naive = once(run)

    print("\nheterogeneous capacities — relative load per node (LP):")
    print(f"{'node':<6} {'capacity':>9} {'cpu load':>10} {'mem load':>10}")
    for name in topology.node_names:
        print(
            f"{name:<6} {factors[name]:>9.1f} {lp.cpu_load[name]:>10.4g}"
            f" {lp.mem_load[name]:>10.4g}"
        )
    print(
        f"objective: LP {lp.objective:,.0f} vs. capacity-blind uniform"
        f" split {naive.objective:,.0f}"
    )

    # (a) LP dominates the capacity-blind split under heterogeneity.
    assert lp.objective < naive.objective
    # (b) relative loads are equalized up to the binding dimension: no
    # node's relative load exceeds the objective.
    for name in topology.node_names:
        assert lp.cpu_load[name] <= lp.objective + 1e-6
        assert lp.mem_load[name] <= lp.objective + 1e-6
    # (c) big nodes absorb more absolute memory work than small ones on
    # average (absolute load = relative load x capacity).
    big_nodes = [n for n, f in factors.items() if f == 2.0]
    small_nodes = [n for n, f in factors.items() if f == 0.5]
    if big_nodes and small_nodes:
        big_absolute = sum(lp.mem_load[n] * factors[n] for n in big_nodes) / len(
            big_nodes
        )
        small_absolute = sum(
            lp.mem_load[n] * factors[n] for n in small_nodes
        ) / len(small_nodes)
        assert big_absolute > small_absolute
