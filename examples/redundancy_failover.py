#!/usr/bin/env python
"""Redundant coverage and failure survival (paper §2.5).

Plans the same workload at redundancy levels r = 1 and r = 2, prices
the replication in max load, then kills the busiest node and measures
how much analysis coverage each deployment retains — the reliability
the extension buys.

Run:  python examples/redundancy_failover.py
"""

from repro.core.manifest import sampled_node
from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator

PROBES = [i / 20 + 0.025 for i in range(20)]  # 20 hash-space samples


def surviving_coverage(deployment, failed_node: str) -> float:
    """Fraction of (unit, hash-point) samples still analyzed by at
    least one surviving node after *failed_node* crashes."""
    covered = total = 0
    for unit in deployment.units:
        for probe in PROBES:
            total += 1
            holders = sampled_node(unit, deployment.manifests, probe)
            if any(node != failed_node for node in holders):
                covered += 1
    return covered / total if total else 1.0


def main() -> None:
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=13))
    sessions = generator.generate(4_000)

    base = plan_deployment(topology, paths, STANDARD_MODULES, sessions)
    redundant = plan_deployment(
        topology, paths, STANDARD_MODULES, sessions, coverage=2.0
    )

    print("redundancy pricing (max-load objective):")
    print(f"  r=1  {base.objective:>12,.0f}")
    print(
        f"  r=2  {redundant.objective:>12,.0f}"
        f"  ({redundant.objective / base.objective:.2f}x — replication is"
        " near-linear in load)"
    )

    victim = max(
        topology.node_names, key=lambda n: base.assignment.cpu_load[n]
    )
    print(f"\nfailing the busiest node: {victim} ({topology.node(victim).city})")
    for label, deployment in (("r=1", base), ("r=2", redundant)):
        coverage = surviving_coverage(deployment, victim)
        print(f"  {label}: {coverage:.1%} of analysis coverage survives")

    print(
        "\nResidual r=2 gaps are the singleton units (scan at its only"
        " ingress,\nSYN-flood at its only egress) that no placement can"
        " replicate —\nthe planner reports them via assignment.coverage."
    )
    singles = [u for u in redundant.units if len(u.eligible) == 1]
    print(f"singleton units: {len(singles)} of {len(redundant.units)}")


if __name__ == "__main__":
    main()
