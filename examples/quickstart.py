#!/usr/bin/env python
"""Quickstart: plan a coordinated network-wide NIDS deployment.

Builds the 11-node Internet2 backbone, generates a gravity-model mixed
traffic trace, solves the max-load-minimizing assignment LP, and prints
the resulting per-node load profile plus a sample of one node's
hash-range sampling manifest.

Run:  python examples/quickstart.py
"""

from repro import internet2, plan_deployment, PathSet, TrafficGenerator
from repro.nids.modules import STANDARD_MODULES
from repro.traffic import GeneratorConfig


def main() -> None:
    # 1. The network: Internet2 with uniform node capabilities, as in
    #    the paper's evaluation setup.
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)

    # 2. The workload: a mixed traffic profile over a gravity-model
    #    traffic matrix derived from city populations.
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=7))
    sessions = generator.generate(5_000)
    print(f"generated {len(sessions)} sessions on {topology.name}")

    # 3. Plan: measure coordination-unit volumes, solve the LP, and
    #    translate the optimum into per-node sampling manifests.
    deployment = plan_deployment(topology, paths, STANDARD_MODULES, sessions)
    assignment = deployment.assignment
    print(
        f"\nLP solved in {assignment.solve_seconds:.3f}s;"
        f" objective (max load) = {assignment.objective:.4g}"
    )

    print("\nper-node load profile (fraction of capacity):")
    print(f"{'node':<6} {'cpu load':>10} {'mem load':>10}")
    for node in topology.node_names:
        print(
            f"{node:<6} {assignment.cpu_load[node]:>10.4g}"
            f" {assignment.mem_load[node]:>10.4g}"
        )

    # 4. Inspect one node's manifest: the hash ranges it is responsible
    #    for, per (class, coordination unit).
    node = "KSCY"
    manifest = deployment.manifests[node]
    print(f"\nsample of {node}'s sampling manifest ({manifest.num_entries} entries):")
    for (class_name, key), ranges in list(manifest.entries.items())[:8]:
        spans = ", ".join(f"[{r.lo:.3f},{r.hi:.3f})" for r in ranges)
        print(f"  {class_name:<10} unit={'/'.join(key):<12} ranges: {spans}")

    # 5. The per-packet side: ask the node's dispatcher (paper Fig. 3)
    #    what it should analyze for one arriving session.
    dispatcher = deployment.dispatcher(node)
    session = next(s for s in sessions if node in generator.path_of(s))
    print(f"\ndispatch decisions at {node} for session {session.session_id} ({session.app}):")
    for decision in dispatcher.decide_session(session):
        verdict = "ANALYZE" if decision.analyze else "skip"
        print(
            f"  {decision.module.name:<10} hash={decision.hash_value:.4f}"
            f" unit={'/'.join(decision.unit):<12} -> {verdict}"
        )


if __name__ == "__main__":
    main()
