#!/usr/bin/env python
"""Network-wide NIDS emulation: edge-only vs. coordinated (Figs. 6-8).

Emulates both deployment styles over the same trace and prints the
paper's headline comparison — maximum per-node CPU and memory — plus
the per-node Fig. 8 profile showing how coordination offloads the New
York hotspot onto transit nodes.

Both runs go through the unified :func:`repro.nids.run_emulation`
entry point: hand it module specs for the edge-only baseline, hand it
the planned ``NIDSDeployment`` for the coordinated run.  (The old
``emulate_edge`` / ``emulate_coordinated`` names still work but emit
``DeprecationWarning``.)

Run:  python examples/nids_network_wide.py  [#sessions]
"""

import sys

from repro.experiments import fig8_per_node_profile
from repro.experiments.nids_network_wide import NetworkWideSetup
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.modules import module_set


def main() -> None:
    num_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    setup = NetworkWideSetup.internet2(seed=42)
    sessions = setup.generator.generate(num_sessions)
    modules = module_set(21)
    print(f"{num_sessions} sessions, {len(modules)} NIDS modules on Internet2\n")

    deployment = setup.deployment(sessions, 21)
    traffic = Traffic.materialized(setup.generator, sessions)
    edge = run_emulation(traffic, modules)
    coordinated = run_emulation(traffic, deployment)

    print("maximum per-node footprints:")
    print(f"  edge-only    cpu={edge.max_cpu:>12.0f}  mem={edge.max_mem_mb:>7.1f} MB")
    print(
        f"  coordinated  cpu={coordinated.max_cpu:>12.0f}"
        f"  mem={coordinated.max_mem_mb:>7.1f} MB"
    )
    print(
        f"  reduction    cpu={1 - coordinated.max_cpu / edge.max_cpu:>11.1%}"
        f"  mem={1 - coordinated.max_mem_mb / edge.max_mem_mb:>7.1%}"
    )
    print("  (paper Fig. 7: ~50% CPU and ~20% memory at 100k sessions)\n")

    print("per-node profile (Fig. 8):")
    header = f"{'#':>2} {'node':<6} {'edge cpu':>12} {'coord cpu':>12} {'edge MB':>9} {'coord MB':>9}"
    print(header)
    print("-" * len(header))
    for index, node in enumerate(setup.topology.node_names, start=1):
        print(
            f"{index:>2} {node:<6} {edge.cpu(node):>12.0f}"
            f" {coordinated.cpu(node):>12.0f} {edge.mem_mb(node):>9.1f}"
            f" {coordinated.mem_mb(node):>9.1f}"
        )
    print(
        f"\nhottest edge node: #{setup.topology.node_names.index(edge.hottest_cpu_node()) + 1}"
        f" ({setup.topology.node(edge.hottest_cpu_node()).city})"
        " — the paper's node 11, New York"
    )


if __name__ == "__main__":
    main()
