#!/usr/bin/env python
"""Online NIPS adaptation with follow-the-perturbed-leader (Fig. 11).

Runs FPL against three match-rate processes — the paper's i.i.d.
uniform draws, a shifting-hotspot attack, and a reactive adversary that
always aims at the least-covered (rule, path) combination — and prints
the normalized cumulative regret over time for each.

Run:  python examples/online_adaptation.py  [#epochs]
"""

import sys

from repro.core.online import FPLConfig, run_online_adaptation
from repro.experiments.online_adaptation import build_online_problem
from repro.nips import EvasiveAdversary, ShiftingHotspotProcess, UniformProcess


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    problem = build_online_problem(num_rules=6)
    processes = {
        "iid-uniform (paper)": UniformProcess(problem, seed=5),
        "shifting hotspot": ShiftingHotspotProcess(problem, seed=5, period=epochs // 6),
        "evasive adversary": EvasiveAdversary(problem, seed=5),
    }

    print(f"FPL over {epochs} epochs on Internet2 (TCAM-free deployment)\n")
    for label, process in processes.items():
        config = FPLConfig(epochs=epochs, perturbation_scale=1e6, seed=3)
        result = run_online_adaptation(
            problem, process, config, report_every=max(1, epochs // 6)
        )
        trajectory = "  ".join(
            f"t={p.epoch}:{p.normalized_regret:+.3f}" for p in result.points
        )
        print(f"{label}:")
        print(f"  normalized regret  {trajectory}")
        print(f"  final regret       {result.final_regret:+.3f}\n")

    print(
        "The paper's Fig. 11 reports regret within 15% of the best\n"
        "static solution in hindsight (occasionally negative) for the\n"
        "i.i.d. setting; the adversarial processes show why adaptation\n"
        "matters — a static deployment cannot track a moving attack."
    )


if __name__ == "__main__":
    main()
