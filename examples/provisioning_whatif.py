#!/usr/bin/env python
"""What-if provisioning analyses (paper Section 5).

Answers two administrator questions:
1. NIDS — "which single node should I upgrade to lower the network's
   maximum load the most?"  Re-solves the assignment LP once per
   candidate upgrade and ranks the outcomes.
2. NIPS — "how much footprint reduction does each increment of TCAM
   capacity buy?"  Sweeps the LP relaxation over TCAM levels to locate
   the knee of the return curve.

Run:  python examples/provisioning_whatif.py
"""

import random

from repro.core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    build_nips_problem,
)
from repro.core.provisioning import nips_tcam_sweep, rank_nids_upgrades
from repro.core.units import build_units
from repro.nids.modules import STANDARD_MODULES
from repro.nips import MatchRateMatrix, unit_rules
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


def nids_upgrade_ranking() -> None:
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=19))
    sessions = generator.generate(4_000)
    units = build_units(STANDARD_MODULES, sessions, paths)

    outcomes = rank_nids_upgrades(units, topology, cpu_factor=2.0, mem_factor=2.0)
    print("NIDS: effect of doubling one node's CPU+memory on max load")
    print(f"{'rank':>4} {'node':<6} {'city':<14} {'new objective':>14} {'improvement':>12}")
    for rank, outcome in enumerate(outcomes, start=1):
        city = topology.node(outcome.node).city
        print(
            f"{rank:>4} {outcome.node:<6} {city:<14}"
            f" {outcome.upgraded_objective:>14.4g} {outcome.improvement:>11.1%}"
        )
    print(f"  baseline objective: {outcomes[0].baseline_objective:.4g}\n")


def nips_tcam_return_curve() -> None:
    num_rules = 40
    topology = internet2().set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS, mem=DEFAULT_MEM_CAP_FLOWS, cam=2.0
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(23))
    problem = build_nips_problem(topology, rules, match)

    levels = [2.0, 4.0, 8.0, 16.0, 32.0, 40.0]
    points = nips_tcam_sweep(problem, levels)
    print("NIPS: footprint-reduction upper bound vs. per-node TCAM slots")
    print(f"{'TCAM slots':>10} {'OptLP':>14} {'marginal gain':>14}")
    previous = None
    for point in points:
        gain = "" if previous is None else f"{point.objective - previous:>+14,.0f}"
        print(f"{point.cam_capacity:>10.0f} {point.objective:>14,.0f} {gain:>14}")
        previous = point.objective


def main() -> None:
    nids_upgrade_ranking()
    nips_tcam_return_curve()


if __name__ == "__main__":
    main()
