#!/usr/bin/env python
"""The coordination plane end to end (paper §2.2 operations center, §5).

The paper's deployment story needs more than a one-shot LP solve: "a
centralized operations center periodically configures the NIDS
responsibilities of the different nodes", traffic shifts between
reports, and NIDS processes crash.  This example drives the full
controller–agent runtime through that lifecycle:

1. **Steady state** — agents export NetFlow reports and heartbeats
   each epoch; the controller re-solves periodically and distributes
   *delta* manifest updates over a lossy-capable bus.
2. **Traffic shift** — the mix flips mixed → web-heavy; the controller
   detects the drift and re-plans.
3. **Failure** — one node's NIDS process dies mid-run.  Missed
   heartbeats trip the detector; the dead node's hash ranges move to
   on-path survivors via a targeted repair (a delta-sized push, not a
   network-wide reconfiguration).
4. **Recovery** — the process restarts cold, heartbeats again, and a
   full re-solve folds it back in.

The run finishes by asserting the scenario's acceptance criteria:
coverage stays >= 99% outside transition windows, the failed node's
ranges are reassigned within 2 epochs of detection, and delta pushes
undercut full-manifest distribution on unchanged-majority epochs.

Run:  python examples/control_plane.py [epochs]
"""

import sys

from repro.control import (
    COVERAGE_FLOOR,
    REDISTRIBUTION_DEADLINE_EPOCHS,
    run_scenario,
    standard_scenario,
)

FAIL_NODE = "NYCM"


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    config = standard_scenario(
        shift_epoch=5,
        fail_epoch=8,
        recover_epoch=12,
        fail_node=FAIL_NODE,
        epochs=epochs,
        base_sessions=900,
    )
    result = run_scenario(config)

    print(
        f"coordination plane on {config.topology}: {config.epochs} epochs"
        f" (shift@5, {FAIL_NODE} fails@8, recovers@12)"
    )
    print(
        f"{'epoch':>5} {'event':<10} {'pushes':>7} {'push B':>7}"
        f" {'full-eq B':>9} {'coverage':>8}  notes"
    )
    for r in result.records:
        notes = []
        if r.failed_nodes:
            notes.append("down:" + ",".join(r.failed_nodes))
        if r.in_transition:
            notes.append("transition")
        pushes = r.pushes_full + r.pushes_delta
        print(
            f"{r.epoch:>5} {r.resolved or '-':<10} {pushes:>7}"
            f" {r.push_bytes:>7} {r.full_equivalent_bytes:>9}"
            f" {r.coverage:>8.4f}  {' '.join(notes)}"
        )

    detected = result.detection_epoch[FAIL_NODE]
    redistributed = result.redistribution_epoch[FAIL_NODE]
    reintegrated = result.reintegration_epoch[FAIL_NODE]
    print(
        f"\n{FAIL_NODE}: crash detected at epoch {detected}"
        f" (heartbeat timeout), hash ranges redistributed to on-path"
        f" survivors at epoch {redistributed}"
        f" (orphaned singleton mass: {result.orphaned_mass[FAIL_NODE]:.2f}),"
        f" reintegrated at epoch {reintegrated}"
    )
    stats = result.controller_stats
    print(
        f"distribution: {stats.pushes_delta} delta + {stats.pushes_full} full"
        f" pushes, {stats.push_bytes:,} B on the wire"
        f" ({stats.push_bytes / stats.full_equivalent_bytes:.0%} of"
        f" full-manifest cost)"
    )

    # --- acceptance criteria --------------------------------------------
    violations = result.check_acceptance()
    assert not violations, violations
    steady = [r for r in result.records if not r.in_transition]
    assert steady and all(r.coverage >= COVERAGE_FLOOR for r in steady)
    assert redistributed - detected <= REDISTRIBUTION_DEADLINE_EPOCHS
    delta_epochs = [
        r
        for r in result.records
        if r.resolved in ("drift", "periodic", "failure")
        and r.unchanged_entry_fraction >= 0.5
        and r.push_bytes > 0
    ]
    assert delta_epochs and all(
        r.push_bytes < r.full_equivalent_bytes for r in delta_epochs
    )
    print(
        f"acceptance: coverage >= {COVERAGE_FLOOR:.0%} on all"
        f" {len(steady)} non-transition epochs; redistribution within"
        f" {redistributed - detected} epoch(s) of detection;"
        f" deltas beat full pushes on all {len(delta_epochs)}"
        f" unchanged-majority reconfigurations"
    )


if __name__ == "__main__":
    main()
