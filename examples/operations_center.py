#!/usr/bin/env python
"""The full operations-center loop (paper §2.2 vision, §5 dynamics).

The paper envisions "a centralized operations center [that]
periodically configures the NIDS responsibilities of the different
nodes", driven by NetFlow-style traffic reports.  This example runs one
full cycle of that loop:

1. **Measure** — routers export (sampled) flow records; the center
   assembles a per-pair traffic report.
2. **Estimate** — the report becomes coordination-unit volumes.
3. **Plan** — the LP balances loads; manifests are serialized to the
   JSON wire format nodes would fetch.
4. **Adapt** — the traffic mix shifts; the center re-measures,
   re-plans against conservative (headroom-padded) volumes, and builds
   the dual-manifest transition plan so no existing connection loses
   its analyzer mid-switch.

Run:  python examples/operations_center.py
"""

from repro.core import (
    dump_manifests,
    plan_transition,
    solve_nids_lp,
    verify_manifests,
)
from repro.core.manifest import generate_manifests
from repro.core.nids_deployment import NIDSDeployment, plan_deployment
from repro.core.reconfigure import conservative_units
from repro.core.dispatch import UnitResolver
from repro.measurement import EstimationModel, FlowExporter, estimate_units
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import (
    GeneratorConfig,
    TrafficGenerator,
    attack_heavy_profile,
    mixed_profile,
)


def plan_from_report(topology, paths, report, headroom=1.0):
    """Estimate -> (optionally pad) -> solve -> manifests."""
    units = estimate_units(STANDARD_MODULES, report, paths, EstimationModel())
    if headroom > 1.0:
        units = conservative_units(units, headroom)
    assignment = solve_nids_lp(units, topology)
    manifests = generate_manifests(units, assignment, topology.node_names)
    verify_manifests(units, manifests)
    return NIDSDeployment(
        topology=topology,
        paths=paths,
        modules=list(STANDARD_MODULES),
        units=units,
        assignment=assignment,
        manifests=manifests,
        resolver=UnitResolver(topology.node_names),
    )


def main() -> None:
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    exporter = FlowExporter(sampling_rate=0.25, seed=3)  # 1-in-4 NetFlow

    # --- interval 1: normal mixed traffic --------------------------------
    generator = TrafficGenerator(
        topology, paths, profile=mixed_profile(), config=GeneratorConfig(seed=61)
    )
    sessions = generator.generate(8_000)
    report = exporter.measure(sessions)
    print(
        f"interval 1: {len(sessions)} sessions ->"
        f" {report.total_flows:,.0f} estimated flows"
        f" (1-in-{1 / report.sampling_rate:.0f} sampled NetFlow)"
    )
    deployment = plan_from_report(topology, paths, report)
    print(
        f"  planned deployment: objective={deployment.objective:.4g},"
        f" {sum(m.num_entries for m in deployment.manifests.values())}"
        " manifest entries"
    )
    wire = dump_manifests(deployment.manifests)
    print(f"  serialized manifests: {len(wire):,} bytes of JSON\n")

    # --- interval 2: the mix shifts toward attack traffic -----------------
    shifted_generator = TrafficGenerator(
        topology,
        paths,
        profile=attack_heavy_profile(),
        config=GeneratorConfig(seed=62),
    )
    shifted = shifted_generator.generate(10_000)
    shifted_report = exporter.measure(shifted)
    new_deployment = plan_from_report(
        topology, paths, shifted_report, headroom=1.3
    )
    print(
        "interval 2: attack-heavy mix detected;"
        f" re-planned with 30% headroom, objective={new_deployment.objective:.4g}"
    )

    # --- transition: correctness during the switch ------------------------
    plan = plan_transition(deployment, new_deployment)
    transfers = plan.handoffs()
    duplicated = sum(mass for *_ignored, mass in transfers)
    print(f"  transition: {len(transfers)} hash-range handoffs,")
    print(f"  total duplicated coverage during the window: {duplicated:.2f} unit-fractions")
    for class_name, key, donor, receiver, mass in transfers[:5]:
        print(
            f"    {class_name:<10} unit={'/'.join(key):<12}"
            f" {donor} -> {receiver}  mass={mass:.3f}"
        )
    print(
        "\nEach node applies the new manifest to new connections"
        " immediately and retains old responsibilities until existing"
        " connections expire (paper §5)."
    )


if __name__ == "__main__":
    main()
