#!/usr/bin/env python
"""NIPS rule placement under TCAM constraints (Section 3, Fig. 10).

Builds the paper's NIPS instance on Internet2 — 100 unit-requirement
rules, uniform match rates, per-node capacities of 400k flows / 2M
packets per 5-minute interval, TCAM for 10% of the ruleset — solves
the LP relaxation, runs the three rounding algorithms, and simulates
enforcement of the best deployment.

Run:  python examples/nips_deployment.py
"""

import random

from repro import RoundingVariant, best_of_roundings, solve_relaxation
from repro.core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    build_nips_problem,
)
from repro.nips import MatchRateMatrix, enforce, unit_rules
from repro.topology import internet2


def main() -> None:
    num_rules = 100
    capacity_fraction = 0.10
    topology = internet2().set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS,
        mem=DEFAULT_MEM_CAP_FLOWS,
        cam=capacity_fraction * num_rules,
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(17))
    problem = build_nips_problem(topology, rules, match)
    print(
        f"{num_rules} rules on {topology.name}; each node's TCAM holds"
        f" {capacity_fraction:.0%} of the ruleset"
    )

    relaxed = solve_relaxation(problem)
    print(
        f"\nLP relaxation (OptLP upper bound): {relaxed.objective:,.0f}"
        f" flow-hops removable ({relaxed.solve_seconds:.1f}s)"
    )

    best = None
    for variant in (
        RoundingVariant.BASIC,
        RoundingVariant.LP,
        RoundingVariant.GREEDY_LP,
    ):
        result = best_of_roundings(
            problem, variant, iterations=5, seed=1, relaxed=relaxed
        )
        print(
            f"  {variant.value:<18} objective={result.solution.objective:>14,.0f}"
            f"  ({result.fraction_of_lp:.1%} of OptLP)"
        )
        best = result

    assert best is not None
    report = enforce(problem, best.solution)
    print("\nenforcement simulation of the best deployment:")
    print(f"  unwanted flows dropped : {report.flows_dropped:,.0f}")
    print(f"  network drop rate      : {report.drop_rate:.1%}")
    print(f"  footprint removed      : {report.footprint_removed:,.0f} flow-hops")
    print(f"  loads within LP model  : {report.load_within_model()}")

    node = topology.node_names[-1]
    enabled = best.solution.enabled_rules(node)
    print(f"\nrules enabled at {node}: {enabled}")


if __name__ == "__main__":
    main()
