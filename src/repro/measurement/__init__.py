"""Measurement substrate: NetFlow-style flow export, SNMP-style link
loads, and planning-input estimation from both."""

from .estimation import EstimationModel, estimate_units
from .flows import FlowExporter, FlowRecord, TrafficReport
from .snmp import (
    LinkLoadCollector,
    LinkLoads,
    estimate_traffic_matrix,
    matrix_error,
)

__all__ = [
    "EstimationModel",
    "FlowExporter",
    "FlowRecord",
    "LinkLoadCollector",
    "LinkLoads",
    "TrafficReport",
    "estimate_traffic_matrix",
    "estimate_units",
    "matrix_error",
]
