"""Planning inputs from measurement (paper Section 2.2, "Inputs").

"Note that these inputs are already available or can be inferred from
existing measurements.  Network operations centers typically know the
traffic matrix, routing policy, and node hardware configurations.
Similarly, the resource footprints of the NIDS modules can be obtained
from offline profiles."

:func:`estimate_units` builds the LP's coordination-unit volumes from a
:class:`~repro.measurement.flows.TrafficReport` instead of ground-truth
sessions — the production path, where the operations center only sees
(possibly sampled) NetFlow.  Quantities a flow report cannot carry
(distinct-host ratios, the half-open share) come from an
:class:`EstimationModel` whose defaults reflect the mixed profile; in
operation they would come from the same offline profiling the paper
cites for module footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.units import CoordinationUnit, UnitKey, eligible_nodes
from ..hashing.keys import Aggregation
from ..nids.modules.base import ModuleSpec, Scope
from ..topology.routing import PathSet
from ..traffic.packet import TCP
from .flows import Pair, TrafficReport


@dataclass
class EstimationModel:
    """Profile-derived ratios a flow report cannot express."""

    #: Distinct sources per flow observed at an ingress (drives the
    #: per-source memory estimate for scan detection).
    distinct_source_ratio: float = 0.15
    #: Distinct destinations per flow at an egress.
    distinct_dest_ratio: float = 0.15
    #: Share of TCP flows that never complete a handshake.
    half_open_fraction: float = 0.07
    #: TCP share of total flows (for protocol-wide TCP filters).
    tcp_fraction: float = 0.85


def _matched_volumes(
    spec: ModuleSpec, report: TrafficReport, pair: Pair, model: EstimationModel
) -> Tuple[float, float]:
    """Estimated (flows, packets) on *pair* that ``spec`` analyzes.

    Port-filtered modules read the exact per-port flow and packet
    sums the flow records carry; protocol-wide filters scale the
    pair totals by the profiled TCP share.
    """
    total_flows = report.pair_flows.get(pair, 0.0)
    total_packets = report.pair_packets.get(pair, 0.0)
    if total_flows <= 0:
        return 0.0, 0.0
    traffic_filter = spec.traffic_filter
    if traffic_filter.server_ports:
        flows = sum(
            report.pair_port_flows.get((pair, port), 0.0)
            for port in traffic_filter.server_ports
        )
        packets = sum(
            report.pair_port_packets.get((pair, port), 0.0)
            for port in traffic_filter.server_ports
        )
        return flows, packets
    if traffic_filter.proto == TCP:
        return total_flows * model.tcp_fraction, total_packets * model.tcp_fraction
    return total_flows, total_packets


def _cpu_per_flow(
    spec: ModuleSpec, avg_packets: float, model: EstimationModel
) -> float:
    """Expected analysis cost per matched flow (offline-profile form)."""
    events = spec.events_per_packet * avg_packets + spec.events_per_session
    if spec.half_open_events_only:
        events = (
            spec.events_per_packet * avg_packets
            + spec.events_per_session * model.half_open_fraction
        )
    return spec.event_cpu_per_packet * avg_packets + spec.policy_cpu_per_event * events


def _unit_key(spec: ModuleSpec, pair: Pair) -> UnitKey:
    if spec.scope is Scope.PATH:
        return tuple(sorted(pair))
    if spec.scope is Scope.INGRESS:
        return (pair[0],)
    return (pair[1],)


def _items_for(spec: ModuleSpec, flows: float, model: EstimationModel) -> float:
    if spec.aggregation is Aggregation.SOURCE:
        return flows * model.distinct_source_ratio
    if spec.aggregation is Aggregation.DESTINATION:
        return flows * model.distinct_dest_ratio
    return flows


def estimate_units(
    modules: Sequence[ModuleSpec],
    report: TrafficReport,
    paths: PathSet,
    model: EstimationModel = EstimationModel(),
) -> List[CoordinationUnit]:
    """Estimate coordination-unit volumes from a flow report.

    Returns units in the same form :func:`repro.core.units.build_units`
    derives from ground truth, so the LP, manifest generation, and
    dispatch pipeline are oblivious to whether they were planned from
    measurements or from a trace.
    """
    accumulators: Dict[Tuple[str, UnitKey], Dict[str, float]] = {}
    for spec in modules:
        for pair, total_flows in report.pair_flows.items():
            if total_flows <= 0:
                continue
            flows, packets = _matched_volumes(spec, report, pair, model)
            if flows <= 0:
                continue
            avg_packets = packets / flows
            key = _unit_key(spec, pair)
            acc = accumulators.setdefault(
                (spec.name, key), {"flows": 0.0, "pkts": 0.0, "cpu": 0.0}
            )
            acc["flows"] += flows
            acc["pkts"] += packets
            acc["cpu"] += flows * _cpu_per_flow(spec, avg_packets, model)

    by_name = {spec.name: spec for spec in modules}
    units: List[CoordinationUnit] = []
    for (class_name, key), acc in accumulators.items():
        spec = by_name[class_name]
        items = _items_for(spec, acc["flows"], model)
        units.append(
            CoordinationUnit(
                class_name=class_name,
                key=key,
                eligible=eligible_nodes(spec, key, paths),
                pkts=acc["pkts"],
                items=items,
                cpu_work=acc["cpu"],
                mem_bytes=items * spec.mem_req,
            )
        )
    units.sort(key=lambda u: (u.class_name, u.key))
    return units
