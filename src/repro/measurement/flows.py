"""Flow records and exporters (NetFlow-style measurement substrate).

The paper's optimization inputs come from operational measurement:
"ISPs typically collect traffic reports (e.g., NetFlow, SNMP) every few
minutes, and since NIDS configurations would typically be driven from
such reports, we envision needing to reconfigure NIDS with roughly the
same frequency."

This module provides that feed: a :class:`FlowRecord` (the NetFlow v5
fields the planner needs), a :class:`FlowExporter` that turns observed
sessions into (optionally *sampled*) flow records — real routers export
1-in-N sampled NetFlow — and report assembly into the per-pair volume
summaries the planner consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..traffic.session import Session

Pair = Tuple[str, str]


@dataclass(frozen=True)
class FlowRecord:
    """One exported flow record (NetFlow-v5-like field subset)."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int
    packets: int
    octets: int
    first: float
    last: float
    ingress: str
    egress: str

    @property
    def pair(self) -> Pair:
        """The record's (ingress, egress) pair."""
        return (self.ingress, self.egress)


@dataclass
class TrafficReport:
    """Aggregated measurement for one reporting interval."""

    interval_seconds: float
    sampling_rate: float
    pair_flows: Dict[Pair, float] = field(default_factory=dict)
    pair_packets: Dict[Pair, float] = field(default_factory=dict)
    pair_port_flows: Dict[Tuple[Pair, int], float] = field(default_factory=dict)
    pair_port_packets: Dict[Tuple[Pair, int], float] = field(default_factory=dict)

    @property
    def total_flows(self) -> float:
        """Estimated flows across all pairs."""
        return sum(self.pair_flows.values())

    @property
    def total_packets(self) -> float:
        """Estimated packets across all pairs."""
        return sum(self.pair_packets.values())

    def port_share(self, pair: Pair, port: int) -> float:
        """Estimated fraction of the pair's flows on *port*."""
        flows = self.pair_flows.get(pair, 0.0)
        if flows <= 0:
            return 0.0
        return self.pair_port_flows.get((pair, port), 0.0) / flows


class FlowExporter:
    """Turn observed sessions into sampled flow records.

    ``sampling_rate=1/N`` models packet-sampled NetFlow's flow-level
    effect approximately: each flow is exported independently with the
    configured probability and the report scales counts back up by
    ``1/sampling_rate`` — the standard inversion estimator.
    """

    def __init__(self, sampling_rate: float = 1.0, seed: int = 0):
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1]")
        self.sampling_rate = sampling_rate
        self._rng = random.Random(seed)

    def export(self, sessions: Iterable[Session]) -> List[FlowRecord]:
        """Export (possibly sampled) flow records for *sessions*."""
        records = []
        for session in sessions:
            if self.sampling_rate < 1.0 and self._rng.random() >= self.sampling_rate:
                continue
            t = session.tuple
            records.append(
                FlowRecord(
                    src=t.src,
                    dst=t.dst,
                    sport=t.sport,
                    dport=t.dport,
                    proto=t.proto,
                    packets=session.num_packets,
                    octets=session.num_bytes,
                    first=session.start_time,
                    last=session.start_time + 0.01 * session.num_packets,
                    ingress=session.ingress,
                    egress=session.egress,
                )
            )
        return records

    def build_report(
        self, records: Sequence[FlowRecord], interval_seconds: float = 300.0
    ) -> TrafficReport:
        """Assemble a per-pair traffic report, inverting the sampling."""
        scale = 1.0 / self.sampling_rate
        report = TrafficReport(
            interval_seconds=interval_seconds, sampling_rate=self.sampling_rate
        )
        for record in records:
            pair = record.pair
            report.pair_flows[pair] = report.pair_flows.get(pair, 0.0) + scale
            report.pair_packets[pair] = (
                report.pair_packets.get(pair, 0.0) + scale * record.packets
            )
            key = (pair, record.dport)
            report.pair_port_flows[key] = report.pair_port_flows.get(key, 0.0) + scale
            report.pair_port_packets[key] = (
                report.pair_port_packets.get(key, 0.0) + scale * record.packets
            )
        return report

    def measure(
        self, sessions: Iterable[Session], interval_seconds: float = 300.0
    ) -> TrafficReport:
        """Convenience: export + assemble in one step."""
        return self.build_report(self.export(sessions), interval_seconds)
