"""SNMP-style link-load counters and traffic-matrix estimation.

The paper's input pipeline alternative to NetFlow: SNMP byte counters
per link, from which operators estimate the traffic matrix (the paper
cites Zhang et al.'s tomogravity for "fast accurate computation of
large-scale IP traffic matrices from link loads").

:class:`LinkLoadCollector` accumulates per-link counters from routed
sessions; :func:`estimate_traffic_matrix` performs a simplified
tomogravity estimate — the gravity-model prior scaled to the observed
total ingress volume — which is exactly the structure the paper's own
evaluations assume for their traffic matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from ..topology.graph import Topology
from ..topology.gravity import gravity_fractions
from ..topology.routing import PathSet
from ..traffic.session import Session

Link = Tuple[str, str]
Pair = Tuple[str, str]


def _link_key(a: str, b: str) -> Link:
    """Undirected link identifier."""
    return (a, b) if a <= b else (b, a)


@dataclass
class LinkLoads:
    """Per-link and per-ingress counters for one interval."""

    link_bytes: Dict[Link, float] = field(default_factory=dict)
    link_packets: Dict[Link, float] = field(default_factory=dict)
    ingress_bytes: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ingress_bytes(self) -> float:
        """Sum of all ingress byte counters."""
        return sum(self.ingress_bytes.values())

    def utilization(self, capacities: Mapping[Link, float]) -> Dict[Link, float]:
        """Link loads as a fraction of given capacities."""
        return {
            link: load / capacities[link]
            for link, load in self.link_bytes.items()
            if link in capacities and capacities[link] > 0
        }


class LinkLoadCollector:
    """Accumulate SNMP-style counters from routed sessions."""

    def __init__(self, paths: PathSet):
        self.paths = paths

    def collect(self, sessions: Iterable[Session]) -> LinkLoads:
        """Counters for *sessions* routed along their shortest paths."""
        loads = LinkLoads()
        for session in sessions:
            path = self.paths.path(session.ingress, session.egress)
            loads.ingress_bytes[session.ingress] = (
                loads.ingress_bytes.get(session.ingress, 0.0) + session.num_bytes
            )
            for a, b in zip(path.nodes, path.nodes[1:]):
                link = _link_key(a, b)
                loads.link_bytes[link] = (
                    loads.link_bytes.get(link, 0.0) + session.num_bytes
                )
                loads.link_packets[link] = (
                    loads.link_packets.get(link, 0.0) + session.num_packets
                )
        return loads


def estimate_traffic_matrix(
    topology: Topology, loads: LinkLoads
) -> Dict[Pair, float]:
    """Tomogravity-style TM estimate from link-load counters.

    Uses the gravity prior over city populations scaled to the total
    observed ingress volume, then proportionally reconciles each
    ingress row against its observed ingress counter (the "simple
    gravity + row scaling" step of tomogravity).  Returns estimated
    bytes per ordered pair.
    """
    prior = gravity_fractions(topology.populations)
    total = loads.total_ingress_bytes
    estimate = {pair: fraction * total for pair, fraction in prior.items()}

    # Row reconciliation: each ingress's row must sum to its counter.
    row_sums: Dict[str, float] = {}
    for (src, _), volume in estimate.items():
        row_sums[src] = row_sums.get(src, 0.0) + volume
    reconciled: Dict[Pair, float] = {}
    for (src, dst), volume in estimate.items():
        observed = loads.ingress_bytes.get(src, 0.0)
        prior_row = row_sums.get(src, 0.0)
        scale = observed / prior_row if prior_row > 0 else 0.0
        reconciled[(src, dst)] = volume * scale
    return reconciled


def matrix_error(
    estimate: Mapping[Pair, float], truth: Mapping[Pair, float]
) -> float:
    """Normalized L1 error between two traffic matrices."""
    pairs = set(estimate) | set(truth)
    total_truth = sum(truth.values())
    if total_truth <= 0:
        return 0.0
    absolute = sum(
        abs(estimate.get(pair, 0.0) - truth.get(pair, 0.0)) for pair in pairs
    )
    return absolute / total_truth
