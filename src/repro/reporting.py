"""CSV artifact writers for the reproduced figures.

Each writer takes the corresponding experiment driver's output and
emits a CSV with one row per plotted point, so downstream users can
regenerate the paper's plots with any tool.  Used by the ``repro
figures`` CLI command; the writers are plain functions over the result
dataclasses, so they are equally usable from notebooks.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence, TextIO

from .control.epochs import EpochRecord
from .experiments.nids_network_wide import PerNodeProfile
from .experiments.nips_rounding import RoundingStats
from .experiments.online_adaptation import OnlineEvaluation
from .nids.emulation import ComparisonRow
from .nids.microbench import MicrobenchRow


def _write(rows: Iterable[Sequence], header: Sequence[str], stream: TextIO) -> None:
    writer = csv.writer(stream)
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)


def comparison_csv(rows: Sequence[ComparisonRow], x_label: str, stream: TextIO) -> None:
    """Figs. 6/7 series: x, max loads, and reductions per deployment."""
    _write(
        (
            (
                row.x,
                row.edge_cpu,
                row.coord_cpu,
                row.cpu_reduction,
                row.edge_mem_mb,
                row.coord_mem_mb,
                row.mem_reduction,
            )
            for row in rows
        ),
        (
            x_label,
            "edge_max_cpu",
            "coord_max_cpu",
            "cpu_reduction",
            "edge_max_mem_mb",
            "coord_max_mem_mb",
            "mem_reduction",
        ),
        stream,
    )


def per_node_csv(profile: PerNodeProfile, stream: TextIO) -> None:
    """Fig. 8: per-node loads under both deployments."""
    _write(
        (
            (index, node, edge_cpu, coord_cpu, edge_mb, coord_mb)
            for index, (node, edge_cpu, coord_cpu, edge_mb, coord_mb) in enumerate(
                profile.rows(), start=1
            )
        ),
        ("node_index", "node", "edge_cpu", "coord_cpu", "edge_mem_mb", "coord_mem_mb"),
        stream,
    )


def microbench_csv(rows: Sequence[MicrobenchRow], stream: TextIO) -> None:
    """Fig. 5: per-module coordination overheads (mean/min/max)."""
    def expand(row: MicrobenchRow):
        return (
            row.module,
            row.cpu_policy.mean,
            row.cpu_policy.minimum,
            row.cpu_policy.maximum,
            row.cpu_event.mean,
            row.cpu_event.minimum,
            row.cpu_event.maximum,
            row.mem_policy.mean,
            row.mem_event.mean,
        )

    _write(
        (expand(row) for row in rows),
        (
            "module",
            "cpu_policy_mean",
            "cpu_policy_min",
            "cpu_policy_max",
            "cpu_event_mean",
            "cpu_event_min",
            "cpu_event_max",
            "mem_policy_mean",
            "mem_event_mean",
        ),
        stream,
    )


def rounding_csv(stats: Sequence[RoundingStats], stream: TextIO) -> None:
    """Fig. 10: fraction-of-OptLP per topology/capacity/variant."""
    _write(
        (
            (
                s.topology,
                s.capacity_fraction,
                s.variant.value,
                s.mean,
                s.minimum,
                s.maximum,
            )
            for s in stats
        ),
        ("topology", "capacity_fraction", "variant", "mean", "min", "max"),
        stream,
    )


def regret_csv(evaluation: OnlineEvaluation, stream: TextIO) -> None:
    """Fig. 11: normalized regret per epoch per run."""
    rows: List[Sequence] = []
    for run_index, run in enumerate(evaluation.runs, start=1):
        for point in run.points:
            rows.append((run_index, point.epoch, point.normalized_regret))
    _write(rows, ("run", "epoch", "normalized_regret"), stream)


def control_epochs_csv(records: Sequence[EpochRecord], stream: TextIO) -> None:
    """Coordination-plane run: one row per epoch (``repro control run``)."""
    _write(
        (
            (
                r.epoch,
                r.sessions,
                ";".join(r.failed_nodes),
                r.resolved,
                r.config_version,
                r.pushes_full,
                r.pushes_delta,
                r.push_bytes,
                r.full_equivalent_bytes,
                f"{r.unchanged_entry_fraction:.4f}",
                r.messages_sent,
                r.bytes_sent,
                f"{r.coverage:.6f}",
                f"{r.min_unit_coverage:.6f}",
                f"{r.orphaned_fraction:.6f}",
                f"{r.duplicated_fraction:.6f}",
                f"{r.reconfig_lag:.4f}",
                int(r.converged),
                int(r.in_transition),
            )
            for r in records
        ),
        (
            "epoch",
            "sessions",
            "failed_nodes",
            "resolved",
            "config_version",
            "pushes_full",
            "pushes_delta",
            "push_bytes",
            "full_equivalent_bytes",
            "unchanged_entry_fraction",
            "messages_sent",
            "bytes_sent",
            "coverage",
            "min_unit_coverage",
            "orphaned_fraction",
            "duplicated_fraction",
            "reconfig_lag",
            "converged",
            "in_transition",
        ),
        stream,
    )


def to_string(writer, *args) -> str:
    """Render any writer above into a string (convenience for tests)."""
    stream = io.StringIO()
    writer(*args, stream)
    return stream.getvalue()
