"""Report artifacts for the reproduced figures.

Every figure artifact is a :class:`Report`: a named table with a
``header()`` and ``rows()``, written through one
``write(stream, fmt=...)`` interface (CSV for plotting pipelines, JSON
for programmatic consumers).  Telemetry snapshots ride the same
interface via :class:`MetricsSnapshotReport`, which adds the
Prometheus text format.

The original ``*_csv`` functions remain as thin wrappers over the
report classes, so existing callers (and the ``repro figures`` CLI)
are unaffected.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Sequence, TextIO, Tuple

from .control.epochs import EpochRecord
from .experiments.nids_network_wide import PerNodeProfile
from .experiments.nips_rounding import RoundingStats
from .experiments.online_adaptation import OnlineEvaluation
from .nids.emulation import ComparisonRow
from .nids.microbench import MicrobenchRow
from .obs import (
    CSV_HEADER as _METRICS_CSV_HEADER,
    MetricsRegistry,
    csv_rows as _metrics_csv_rows,
    snapshot as _metrics_snapshot,
    write_prometheus as _write_prometheus,
)


class Report:
    """A named table that can be written in multiple formats.

    Subclasses provide :meth:`header` and :meth:`rows`; ``write``
    renders them as CSV (one row per plotted point — the historical
    artifact format) or JSON (``{"name", "header", "rows"}``).
    """

    #: Artifact identifier, used as the JSON envelope name.
    name = "report"

    def header(self) -> Sequence[str]:
        """Column names, in order."""
        raise NotImplementedError

    def rows(self) -> Iterable[Sequence]:
        """Data rows matching :meth:`header`."""
        raise NotImplementedError

    def formats(self) -> Tuple[str, ...]:
        """Formats :meth:`write` accepts, first is the default."""
        return ("csv", "json")

    def write(self, stream: TextIO, fmt: str = "csv") -> None:
        """Render the report to *stream* in *fmt*."""
        if fmt == "csv":
            writer = csv.writer(stream)
            writer.writerow(self.header())
            for row in self.rows():
                writer.writerow(row)
        elif fmt == "json":
            json.dump(
                {
                    "name": self.name,
                    "header": list(self.header()),
                    "rows": [list(row) for row in self.rows()],
                },
                stream,
                indent=2,
            )
            stream.write("\n")
        else:
            raise ValueError(
                f"unsupported format {fmt!r} for {self.name};"
                f" expected one of {self.formats()}"
            )

    def to_string(self, fmt: str = None) -> str:
        """Render to a string (convenience for tests and notebooks).

        Defaults to the report's preferred format, ``formats()[0]``.
        """
        stream = io.StringIO()
        self.write(stream, fmt=fmt if fmt is not None else self.formats()[0])
        return stream.getvalue()


class ComparisonReport(Report):
    """Figs. 6/7 series: x, max loads, and reductions per deployment."""

    name = "comparison"

    def __init__(self, rows: Sequence[ComparisonRow], x_label: str):
        self._rows = list(rows)
        self.x_label = x_label

    def header(self) -> Sequence[str]:
        return (
            self.x_label,
            "edge_max_cpu",
            "coord_max_cpu",
            "cpu_reduction",
            "edge_max_mem_mb",
            "coord_max_mem_mb",
            "mem_reduction",
        )

    def rows(self) -> Iterable[Sequence]:
        for row in self._rows:
            yield (
                row.x,
                row.edge_cpu,
                row.coord_cpu,
                row.cpu_reduction,
                row.edge_mem_mb,
                row.coord_mem_mb,
                row.mem_reduction,
            )


class PerNodeReport(Report):
    """Fig. 8: per-node loads under both deployments."""

    name = "per_node"

    def __init__(self, profile: PerNodeProfile):
        self.profile = profile

    def header(self) -> Sequence[str]:
        return (
            "node_index",
            "node",
            "edge_cpu",
            "coord_cpu",
            "edge_mem_mb",
            "coord_mem_mb",
        )

    def rows(self) -> Iterable[Sequence]:
        for index, (node, edge_cpu, coord_cpu, edge_mb, coord_mb) in enumerate(
            self.profile.rows(), start=1
        ):
            yield (index, node, edge_cpu, coord_cpu, edge_mb, coord_mb)


class MicrobenchReport(Report):
    """Fig. 5: per-module coordination overheads (mean/min/max)."""

    name = "microbench"

    def __init__(self, rows: Sequence[MicrobenchRow]):
        self._rows = list(rows)

    def header(self) -> Sequence[str]:
        return (
            "module",
            "cpu_policy_mean",
            "cpu_policy_min",
            "cpu_policy_max",
            "cpu_event_mean",
            "cpu_event_min",
            "cpu_event_max",
            "mem_policy_mean",
            "mem_event_mean",
        )

    def rows(self) -> Iterable[Sequence]:
        for row in self._rows:
            yield (
                row.module,
                row.cpu_policy.mean,
                row.cpu_policy.minimum,
                row.cpu_policy.maximum,
                row.cpu_event.mean,
                row.cpu_event.minimum,
                row.cpu_event.maximum,
                row.mem_policy.mean,
                row.mem_event.mean,
            )


class RoundingReport(Report):
    """Fig. 10: fraction-of-OptLP per topology/capacity/variant."""

    name = "rounding"

    def __init__(self, stats: Sequence[RoundingStats]):
        self._stats = list(stats)

    def header(self) -> Sequence[str]:
        return ("topology", "capacity_fraction", "variant", "mean", "min", "max")

    def rows(self) -> Iterable[Sequence]:
        for s in self._stats:
            yield (
                s.topology,
                s.capacity_fraction,
                s.variant.value,
                s.mean,
                s.minimum,
                s.maximum,
            )


class RegretReport(Report):
    """Fig. 11: normalized regret per epoch per run."""

    name = "regret"

    def __init__(self, evaluation: OnlineEvaluation):
        self.evaluation = evaluation

    def header(self) -> Sequence[str]:
        return ("run", "epoch", "normalized_regret")

    def rows(self) -> Iterable[Sequence]:
        for run_index, run in enumerate(self.evaluation.runs, start=1):
            for point in run.points:
                yield (run_index, point.epoch, point.normalized_regret)


class ControlEpochsReport(Report):
    """Coordination-plane run: one row per epoch (``repro control run``)."""

    name = "control_epochs"

    def __init__(self, records: Sequence[EpochRecord]):
        self._records = list(records)

    def header(self) -> Sequence[str]:
        return (
            "epoch",
            "sessions",
            "failed_nodes",
            "resolved",
            "config_version",
            "pushes_full",
            "pushes_delta",
            "push_bytes",
            "full_equivalent_bytes",
            "unchanged_entry_fraction",
            "messages_sent",
            "bytes_sent",
            "coverage",
            "min_unit_coverage",
            "orphaned_fraction",
            "duplicated_fraction",
            "reconfig_lag",
            "converged",
            "in_transition",
            "fenced_nodes",
        )

    def rows(self) -> Iterable[Sequence]:
        for r in self._records:
            yield (
                r.epoch,
                r.sessions,
                ";".join(r.failed_nodes),
                r.resolved,
                r.config_version,
                r.pushes_full,
                r.pushes_delta,
                r.push_bytes,
                r.full_equivalent_bytes,
                f"{r.unchanged_entry_fraction:.4f}",
                r.messages_sent,
                r.bytes_sent,
                f"{r.coverage:.6f}",
                f"{r.min_unit_coverage:.6f}",
                f"{r.orphaned_fraction:.6f}",
                f"{r.duplicated_fraction:.6f}",
                f"{r.reconfig_lag:.4f}",
                int(r.converged),
                int(r.in_transition),
                ";".join(r.fenced_nodes),
            )


class MetricsSnapshotReport(Report):
    """A telemetry registry snapshot on the shared report interface.

    ``csv`` emits the flat one-row-per-field table from
    :mod:`repro.obs.export`; ``json`` the nested self-describing
    snapshot (the ``--metrics-out`` artifact); ``prom`` the Prometheus
    text exposition.
    """

    name = "metrics"

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def header(self) -> Sequence[str]:
        return _METRICS_CSV_HEADER

    def rows(self) -> Iterable[Sequence]:
        return _metrics_csv_rows(self.registry)

    def formats(self) -> Tuple[str, ...]:
        return ("json", "csv", "prom")

    def write(self, stream: TextIO, fmt: str = "json") -> None:
        if fmt == "json":
            json.dump(_metrics_snapshot(self.registry), stream, indent=2, sort_keys=True)
            stream.write("\n")
        elif fmt == "prom":
            _write_prometheus(self.registry, stream)
        else:
            super().write(stream, fmt=fmt)


# -- legacy function interface (thin wrappers) ----------------------------
def comparison_csv(rows: Sequence[ComparisonRow], x_label: str, stream: TextIO) -> None:
    """Figs. 6/7 series: x, max loads, and reductions per deployment."""
    ComparisonReport(rows, x_label).write(stream, fmt="csv")


def per_node_csv(profile: PerNodeProfile, stream: TextIO) -> None:
    """Fig. 8: per-node loads under both deployments."""
    PerNodeReport(profile).write(stream, fmt="csv")


def microbench_csv(rows: Sequence[MicrobenchRow], stream: TextIO) -> None:
    """Fig. 5: per-module coordination overheads (mean/min/max)."""
    MicrobenchReport(rows).write(stream, fmt="csv")


def rounding_csv(stats: Sequence[RoundingStats], stream: TextIO) -> None:
    """Fig. 10: fraction-of-OptLP per topology/capacity/variant."""
    RoundingReport(stats).write(stream, fmt="csv")


def regret_csv(evaluation: OnlineEvaluation, stream: TextIO) -> None:
    """Fig. 11: normalized regret per epoch per run."""
    RegretReport(evaluation).write(stream, fmt="csv")


def control_epochs_csv(records: Sequence[EpochRecord], stream: TextIO) -> None:
    """Coordination-plane run: one row per epoch (``repro control run``)."""
    ControlEpochsReport(records).write(stream, fmt="csv")


def to_string(writer, *args) -> str:
    """Render any writer above into a string (convenience for tests)."""
    stream = io.StringIO()
    writer(*args, stream)
    return stream.getvalue()
