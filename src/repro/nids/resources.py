"""Resource-cost model for the Bro-architecture simulator.

The paper's evaluation metrics are CPU and memory *footprints* measured
with ``atop`` over a real Bro 1.4.  Our simulator replaces wall-clock
measurement with deterministic cost accounting: every packet, event,
connection record, and coordination check is charged per the constants
below.  The constants are calibrated against two anchors from the paper
and the Dreger et al. resource-profiling methodology it cites:

* coordination-check overheads land in the measured bands of Fig. 5
  (~2% for Baseline/Signature/Blaster/SYN-flood, ~10% for Scan/TFTP,
  large for HTTP/IRC/Login only when the check is interpreted in the
  policy engine);
* memory overhead of the added connection-record hash fields is ≤6%.

CPU is measured in abstract "cpu units" (1.0 = baseline per-packet
connection processing) and memory in bytes.  Because both deployments
are charged by the same model, the *relative* comparisons the paper
makes (edge vs. coordinated, approach 1 vs. approach 2) carry over.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cost constants for the simulated Bro instance."""

    #: Per packet merely seen by the instance: libpcap capture + basic
    #: decode, before any connection state decision.
    capture_cost: float = 0.15

    #: Per packet of a *tracked* connection: Bro's basic connection
    #: processing (state lookup, TCP reassembly bookkeeping).
    base_conn_packet_cost: float = 1.0

    #: Per new tracked connection in coordinated modes: computing the
    #: hash-field combinations added to the connection record.
    hash_compute_cost: float = 0.5

    #: Per module check performed inside the event engine (approach 2):
    #: a compiled range lookup at module-initialization time.
    event_check_cost: float = 0.06

    #: Per module check executed in an interpreted policy script
    #: (approach 1, and the only option for policy-stage modules).
    policy_check_cost: float = 0.75

    #: Bytes of a baseline connection record.
    conn_record_bytes: int = 1000

    #: Extra bytes per connection record for the precomputed hashes of
    #: the different header-field combinations (Section 2.3).
    hash_fields_bytes: int = 40

    #: Fixed resident footprint of a Bro process (code, tables, ...).
    process_base_bytes: int = 24 * 1024 * 1024

    #: Fine-grained coordination (§2.5 extension): a first-packet-only
    #: subscription costs one packet's worth of connection processing
    #: and a compact record instead of full tracking.
    light_record_bytes: int = 64
    light_conn_cost: float = 1.0


#: The default calibrated model used throughout the evaluation.
DEFAULT_COST_MODEL = CostModel()


@dataclass
class ResourceUsage:
    """Accumulated CPU (cpu units) and memory (bytes) for one instance."""

    cpu: float = 0.0
    mem_bytes: float = 0.0

    def add(self, cpu: float = 0.0, mem_bytes: float = 0.0) -> None:
        """Accumulate CPU units and memory bytes."""
        self.cpu += cpu
        self.mem_bytes += mem_bytes

    def merged(self, other: "ResourceUsage") -> "ResourceUsage":
        """A new usage equal to the sum of this and *other*."""
        return ResourceUsage(self.cpu + other.cpu, self.mem_bytes + other.mem_bytes)

    @property
    def mem_mb(self) -> float:
        """Memory footprint in mebibytes."""
        return self.mem_bytes / (1024.0 * 1024.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceUsage(cpu={self.cpu:.1f}, mem={self.mem_mb:.1f}MB)"
