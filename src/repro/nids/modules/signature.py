"""Signature-based detection (event-engine pattern matching).

Matches session payload tags against a signature set — the simulator's
stand-in for Bro's signature engine scanning payload bytes with a DFA.
The module analyzes *all* traffic (its ``T_i`` is unrestricted) and is
the paper's canonical example of an analysis whose coordination check
lives solely in the event engine.
"""

from __future__ import annotations

from typing import FrozenSet

from ...traffic.packet import Packet
from ...traffic.session import Session
from .base import Alert, Detector, ModuleSpec

#: Malware payload tags the default signature set matches.
DEFAULT_SIGNATURES: FrozenSet[str] = frozenset(
    {"exploit-http", "botnet-cnc", "blaster-worm", "login-bruteforce"}
)


class SignatureMatcher(Detector):
    """Payload-tag matching over every analyzed session."""

    def __init__(self, spec: ModuleSpec, signatures: FrozenSet[str] = DEFAULT_SIGNATURES):
        super().__init__(spec)
        self.signatures = signatures
        self.bytes_scanned = 0

    def on_session(self, session: Session) -> None:
        self.bytes_scanned += session.num_bytes
        if session.malicious and session.payload_tag in self.signatures:
            self.alerts.append(
                Alert(
                    module=self.spec.name,
                    subject=f"session:{session.session_id}",
                    detail=f"signature match: {session.payload_tag}",
                )
            )

    def on_packet(self, packet: Packet) -> None:
        self.bytes_scanned += packet.size
        if packet.payload_tag and packet.payload_tag in self.signatures:
            self.alerts.append(
                Alert(
                    module=self.spec.name,
                    subject=f"flow:{packet.tuple.flow_key().hex()}",
                    detail=f"signature match: {packet.payload_tag}",
                )
            )
