"""NIDS analysis modules: specs, catalog, and behavioural detectors."""

from typing import Dict, Type

from .app_protocols import (
    BlasterDetector,
    HTTPAnalyzer,
    IRCAnalyzer,
    LoginAnalyzer,
    TFTPAnalyzer,
)
from .base import (
    Alert,
    CheckLocation,
    Detector,
    ModuleSpec,
    Scope,
    TrafficFilter,
)
from .catalog import (
    BLASTER,
    FULL_MODULE_COUNT,
    HTTP,
    IRC,
    LOGIN,
    SCAN,
    SIGNATURE,
    STANDARD_MODULES,
    SYNFLOOD,
    TFTP,
    module_by_name,
    module_set,
)
from .extended import (
    DNSTunnelDetector,
    EXTENDED_DETECTORS,
    EXTENDED_MODULES,
    FTPAnalyzer,
    SMTPAnalyzer,
    SSHBruteDetector,
)
from .scan import DEFAULT_SCAN_THRESHOLD, ScanDetector
from .signature import DEFAULT_SIGNATURES, SignatureMatcher
from .synflood import DEFAULT_FLOOD_THRESHOLD, SynFloodDetector

#: Detector class for each standard module family (duplicates such as
#: ``http#2`` resolve by their base name before the ``#``).
DETECTOR_CLASSES: Dict[str, Type[Detector]] = {
    "scan": ScanDetector,
    "http": HTTPAnalyzer,
    "irc": IRCAnalyzer,
    "login": LoginAnalyzer,
    "tftp": TFTPAnalyzer,
    "blaster": BlasterDetector,
    "signature": SignatureMatcher,
    "synflood": SynFloodDetector,
    **EXTENDED_DETECTORS,
}


def make_detector(spec: ModuleSpec) -> Detector:
    """Instantiate the behavioural detector for *spec*."""
    base_name = spec.name.split("#", 1)[0]
    try:
        detector_class = DETECTOR_CLASSES[base_name]
    except KeyError:
        raise ValueError(f"no detector registered for module {spec.name!r}") from None
    return detector_class(spec)


__all__ = [
    "Alert",
    "DNSTunnelDetector",
    "EXTENDED_DETECTORS",
    "EXTENDED_MODULES",
    "FTPAnalyzer",
    "SMTPAnalyzer",
    "SSHBruteDetector",
    "BLASTER",
    "BlasterDetector",
    "CheckLocation",
    "DEFAULT_FLOOD_THRESHOLD",
    "DEFAULT_SCAN_THRESHOLD",
    "DEFAULT_SIGNATURES",
    "DETECTOR_CLASSES",
    "Detector",
    "FULL_MODULE_COUNT",
    "HTTP",
    "HTTPAnalyzer",
    "IRC",
    "IRCAnalyzer",
    "LOGIN",
    "LoginAnalyzer",
    "ModuleSpec",
    "SCAN",
    "SIGNATURE",
    "STANDARD_MODULES",
    "SYNFLOOD",
    "ScanDetector",
    "Scope",
    "SignatureMatcher",
    "SynFloodDetector",
    "TFTP",
    "TFTPAnalyzer",
    "TrafficFilter",
    "make_detector",
    "module_by_name",
    "module_set",
]
