"""The standard analysis-module catalog.

Encodes the nine configurations of the paper's Fig. 5 — Baseline (plain
connection processing, modeled by the engine itself), Scan, IRC, Login,
TFTP, HTTP, Blaster, Signature, and SYN-flood — with scopes, check
locations, and calibrated resource footprints.  Also provides
:func:`module_set`, which reproduces the Fig. 6 methodology of growing
the deployment by duplicating the HTTP/IRC/Login/TFTP instances.

Check-location assignments follow Section 2.3/2.4 exactly: HTTP, IRC,
and Login checks can be hoisted into the event engine; Signature's
check lives solely in the event engine; Scan, TFTP, Blaster, and
SYN-flood consume policy-stage event streams, so their checks cannot
be hoisted.  Scan and TFTP subscribe to the *raw* connection event
stream (every connection reaches their scripts), which is why their
coordination overhead is ~10% rather than ~2% in Fig. 5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ...hashing.keys import Aggregation
from ...traffic.packet import TCP, UDP
from .base import CheckLocation, ModuleSpec, Scope, Subscription, TrafficFilter


def _spec(**kwargs) -> ModuleSpec:
    return ModuleSpec(**kwargs)


HTTP = _spec(
    name="http",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_CAPABLE,
    traffic_filter=TrafficFilter(server_ports=frozenset({80, 8080}), proto=TCP),
    event_cpu_per_packet=0.50,
    events_per_packet=0.50,
    policy_cpu_per_event=0.40,
    mem_bytes_per_item=450.0,
)

IRC = _spec(
    name="irc",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_CAPABLE,
    traffic_filter=TrafficFilter(server_ports=frozenset({6667}), proto=TCP),
    event_cpu_per_packet=0.25,
    events_per_packet=0.80,
    policy_cpu_per_event=0.35,
    mem_bytes_per_item=320.0,
)

LOGIN = _spec(
    name="login",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_CAPABLE,
    traffic_filter=TrafficFilter(server_ports=frozenset({23, 513}), proto=TCP),
    event_cpu_per_packet=0.25,
    events_per_packet=0.80,
    policy_cpu_per_event=0.35,
    mem_bytes_per_item=320.0,
)

TFTP = _spec(
    name="tftp",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(server_ports=frozenset({69}), proto=UDP),
    event_cpu_per_packet=0.05,
    events_per_session=1.0,
    policy_cpu_per_event=0.30,
    mem_bytes_per_item=180.0,
    raw_event_stream=True,
    raw_events_per_conn=1.5,
)

SCAN = _spec(
    name="scan",
    aggregation=Aggregation.SOURCE,
    scope=Scope.INGRESS,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(),
    event_cpu_per_packet=0.0,
    events_per_session=1.0,
    policy_cpu_per_event=0.50,
    mem_bytes_per_item=400.0,
    raw_event_stream=True,
    raw_events_per_conn=1.5,
    subscription=Subscription.FIRST_PACKET,
)

BLASTER = _spec(
    name="blaster",
    aggregation=Aggregation.SOURCE,
    scope=Scope.PATH,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(server_ports=frozenset({135}), proto=TCP),
    event_cpu_per_packet=0.05,
    events_per_session=1.0,
    policy_cpu_per_event=0.40,
    mem_bytes_per_item=130.0,
)

SIGNATURE = _spec(
    name="signature",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_ONLY,
    traffic_filter=TrafficFilter(),
    event_cpu_per_packet=0.80,
    policy_cpu_per_event=0.30,
    mem_bytes_per_item=220.0,
)

SYNFLOOD = _spec(
    name="synflood",
    aggregation=Aggregation.DESTINATION,
    scope=Scope.EGRESS,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(proto=TCP, syn_only=True),
    event_cpu_per_packet=0.02,
    events_per_session=1.0,
    policy_cpu_per_event=0.30,
    mem_bytes_per_item=190.0,
    half_open_events_only=True,
)

#: Fig. 5's eight analysis modules (Baseline is the bare engine).
STANDARD_MODULES: List[ModuleSpec] = [
    SCAN,
    IRC,
    LOGIN,
    TFTP,
    HTTP,
    BLASTER,
    SIGNATURE,
    SYNFLOOD,
]

#: The modules the paper duplicates to emulate added functionality.
_DUPLICATED = ("http", "irc", "login", "tftp")

_BY_NAME: Dict[str, ModuleSpec] = {spec.name: spec for spec in STANDARD_MODULES}


def module_by_name(name: str) -> ModuleSpec:
    """Fetch a standard module spec by name."""
    return _BY_NAME[name]


def module_set(count: int) -> List[ModuleSpec]:
    """The paper's Fig. 6 module sets: 8 standard modules plus
    duplicate HTTP/IRC/Login/TFTP instances up to *count* total.

    Duplicates are renamed (``http#2``, ...) but keep their original
    filter, scope, and footprint — "indicative of how a NIDS like Bro
    would be augmented with more modules in practice".
    """
    if count < len(STANDARD_MODULES):
        raise ValueError(
            f"count must be >= {len(STANDARD_MODULES)} (the standard set)"
        )
    modules = list(STANDARD_MODULES)
    generation = 2
    while len(modules) < count:
        for base_name in _DUPLICATED:
            if len(modules) >= count:
                break
            original = _BY_NAME[base_name]
            modules.append(
                dataclasses.replace(original, name=f"{base_name}#{generation}")
            )
        generation += 1
    return modules


#: The full 21-module deployment of Figs. 7 and 8.
FULL_MODULE_COUNT = 21
