"""SYN-flood detection (per-destination half-open counting).

Counts half-open connection attempts per destination host and alerts
when the count crosses a threshold.  Aggregating per destination, the
module is placed at the destination's egress node — "inbound floods are
best detected close to network gateways" (paper Section 1).
"""

from __future__ import annotations

from typing import Dict, Set

from ...traffic.session import Session
from .base import Alert, Detector, ModuleSpec

#: Half-open attempts before a destination is flagged as flooded.
DEFAULT_FLOOD_THRESHOLD = 15


class SynFloodDetector(Detector):
    """Per-destination half-open connection counting."""

    def __init__(self, spec: ModuleSpec, threshold: int = DEFAULT_FLOOD_THRESHOLD):
        super().__init__(spec)
        self.threshold = threshold
        self._half_open: Dict[int, int] = {}
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        if not session.half_open:
            return
        destination = session.tuple.dst
        count = self._half_open.get(destination, 0) + 1
        self._half_open[destination] = count
        if count >= self.threshold and destination not in self._alerted:
            self._alerted.add(destination)
            self.alerts.append(
                Alert(
                    module=self.spec.name,
                    subject=f"dst:{destination}",
                    detail=f"{count} half-open connection attempts",
                )
            )

    @property
    def tracked_destinations(self) -> int:
        """Destinations with live state (the memory-model item count)."""
        return len(self._half_open)
