"""Scan detection (per-source fan-out counting).

Tracks, per source host, the set of distinct destination hosts it has
contacted, and raises an alert when the fan-out crosses a threshold —
the classic Bro ``scan.bro`` policy.  Because the module aggregates per
source, its coordination unit is the source's ingress node: only the
ingress observes *all* traffic a host initiates (paper Section 2.1).
"""

from __future__ import annotations

from typing import Dict, Set

from ...traffic.session import Session
from .base import Alert, Detector, ModuleSpec

#: Distinct destinations before a source is flagged as a scanner.
DEFAULT_SCAN_THRESHOLD = 12


class ScanDetector(Detector):
    """Per-source distinct-destination counting."""

    def __init__(self, spec: ModuleSpec, threshold: int = DEFAULT_SCAN_THRESHOLD):
        super().__init__(spec)
        self.threshold = threshold
        self._destinations: Dict[int, Set[int]] = {}
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        source = session.tuple.src
        seen = self._destinations.setdefault(source, set())
        seen.add(session.tuple.dst)
        if len(seen) >= self.threshold and source not in self._alerted:
            self._alerted.add(source)
            self.alerts.append(
                Alert(
                    module=self.spec.name,
                    subject=f"src:{source}",
                    detail=f"contacted {len(seen)} distinct destinations",
                )
            )

    @property
    def tracked_sources(self) -> int:
        """Number of sources with live state (the memory-model item count)."""
        return len(self._destinations)
