"""Extended analysis-module catalog.

The paper grows its evaluation deployment by duplicating the standard
modules ("we inspected 140 policy scripts in the Bro distribution and
found that a majority of them" can hoist their checks).  For library
users who want *distinct* additional functionality rather than
duplicates, this catalog provides further realistic modules with the
same spec machinery:

* ``smtp``  — mail transaction analysis (event-capable, path scope);
* ``dns``   — per-source query-volume analysis for tunneling/abuse
  detection (policy-stage, ingress scope, raw-ish event stream);
* ``ssh``   — brute-force login detection per source (policy-stage);
* ``ftp``   — control-channel analysis (event-capable).

Each has a behavioural detector so functional-equivalence testing
covers them like the standard set.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...hashing.keys import Aggregation
from ...traffic.packet import TCP, UDP
from ...traffic.session import Session
from .base import (
    Alert,
    CheckLocation,
    Detector,
    ModuleSpec,
    Scope,
    TrafficFilter,
)

SMTP = ModuleSpec(
    name="smtp",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_CAPABLE,
    traffic_filter=TrafficFilter(server_ports=frozenset({25}), proto=TCP),
    event_cpu_per_packet=0.30,
    events_per_packet=0.40,
    policy_cpu_per_event=0.35,
    mem_bytes_per_item=350.0,
)

DNS_TUNNEL = ModuleSpec(
    name="dnstunnel",
    aggregation=Aggregation.SOURCE,
    scope=Scope.INGRESS,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(server_ports=frozenset({53}), proto=UDP),
    event_cpu_per_packet=0.05,
    events_per_session=1.0,
    policy_cpu_per_event=0.40,
    mem_bytes_per_item=280.0,
    raw_event_stream=False,
)

SSH_BRUTE = ModuleSpec(
    name="sshbrute",
    aggregation=Aggregation.SOURCE,
    scope=Scope.INGRESS,
    check_location=CheckLocation.POLICY_ONLY,
    traffic_filter=TrafficFilter(server_ports=frozenset({22}), proto=TCP),
    event_cpu_per_packet=0.10,
    events_per_session=1.0,
    policy_cpu_per_event=0.35,
    mem_bytes_per_item=240.0,
)

FTP = ModuleSpec(
    name="ftp",
    aggregation=Aggregation.SESSION,
    scope=Scope.PATH,
    check_location=CheckLocation.EVENT_CAPABLE,
    traffic_filter=TrafficFilter(server_ports=frozenset({21}), proto=TCP),
    event_cpu_per_packet=0.20,
    events_per_packet=0.30,
    policy_cpu_per_event=0.30,
    mem_bytes_per_item=300.0,
)

EXTENDED_MODULES: List[ModuleSpec] = [SMTP, DNS_TUNNEL, SSH_BRUTE, FTP]


class SMTPAnalyzer(Detector):
    """Counts mail transactions; alerts on spam-burst sources."""

    SPAM_THRESHOLD = 25

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self._per_source: Dict[int, int] = {}
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        source = session.tuple.src
        count = self._per_source.get(source, 0) + 1
        self._per_source[source] = count
        if count >= self.SPAM_THRESHOLD and source not in self._alerted:
            self._alerted.add(source)
            self.alerts.append(
                Alert(self.spec.name, f"src:{source}", "mail volume burst")
            )


class DNSTunnelDetector(Detector):
    """Flags sources issuing an anomalous volume of DNS queries."""

    QUERY_THRESHOLD = 40

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self._queries: Dict[int, int] = {}
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        source = session.tuple.src
        count = self._queries.get(source, 0) + max(1, session.num_packets // 2)
        self._queries[source] = count
        if count >= self.QUERY_THRESHOLD and source not in self._alerted:
            self._alerted.add(source)
            self.alerts.append(
                Alert(self.spec.name, f"src:{source}", "DNS query volume anomaly")
            )


class SSHBruteDetector(Detector):
    """Flags sources with many short SSH connection attempts."""

    ATTEMPT_THRESHOLD = 10

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self._attempts: Dict[int, int] = {}
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        if session.num_packets > 20:
            return  # long interactive sessions are not brute force
        source = session.tuple.src
        count = self._attempts.get(source, 0) + 1
        self._attempts[source] = count
        if count >= self.ATTEMPT_THRESHOLD and source not in self._alerted:
            self._alerted.add(source)
            self.alerts.append(
                Alert(self.spec.name, f"src:{source}", "SSH brute-force pattern")
            )


class FTPAnalyzer(Detector):
    """Logs FTP control sessions (transfer accounting)."""

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self.sessions_seen = 0

    def on_session(self, session: Session) -> None:
        self.sessions_seen += 1


EXTENDED_DETECTORS = {
    "smtp": SMTPAnalyzer,
    "dnstunnel": DNSTunnelDetector,
    "sshbrute": SSHBruteDetector,
    "ftp": FTPAnalyzer,
}
