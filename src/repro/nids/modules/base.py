"""NIDS analysis-module model.

A :class:`ModuleSpec` is the static description of one analysis class
``C_i``: what traffic it analyzes (``T_i``), how its coordination units
are formed (placement scope), at what aggregation it keeps state, where
its coordination check can run (event engine vs. policy scripts —
paper Fig. 4), and its calibrated resource footprint.

A :class:`Detector` (subclassed per module) is the behavioural half:
it consumes packets/events and raises alerts, so tests and examples can
verify that a distributed deployment produces the same aggregate
detection output as a single standalone NIDS — the paper's functional
equivalence check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ...hashing.keys import Aggregation
from ...traffic.packet import Packet, TCP, UDP
from ...traffic.session import Session


class Scope(enum.Enum):
    """Topological placement constraint of a module (Section 2.1).

    ``PATH``: any node on the session's forwarding path can run the
    analysis (coordination unit = end-to-end path).  ``INGRESS``: only
    the traffic source's ingress observes everything the analysis
    needs (outbound scans).  ``EGRESS``: only the destination's egress
    does (inbound floods).
    """

    PATH = "path"
    INGRESS = "ingress"
    EGRESS = "egress"


class Subscription(enum.Enum):
    """Connection-information granularity a module needs (§2.5).

    The paper's future-work extension: "allowing different
    granularities of connection information, providing interfaces for
    modules to subscribe to more fine-grained events (e.g., first
    packet of a flow for Scan)".  A ``FIRST_PACKET`` subscriber does
    not force full connection tracking at its responsible node — only
    a lightweight first-packet record.
    """

    FULL_CONNECTION = "full_connection"
    FIRST_PACKET = "first_packet"


class CheckLocation(enum.Enum):
    """Where the module's coordination check can execute (Fig. 4).

    ``EVENT_CAPABLE``: the check can be hoisted into the event engine
    (approach 2) or left in the policy script (approach 1) — HTTP, IRC,
    Login.  ``EVENT_ONLY``: the module runs entirely in the event
    engine, so the check always happens there — Signature.
    ``POLICY_ONLY``: the module consumes raw policy events, so the
    check cannot be hoisted — Scan, TFTP, Blaster, SYN-flood.
    """

    EVENT_CAPABLE = "event_capable"
    EVENT_ONLY = "event_only"
    POLICY_ONLY = "policy_only"


@dataclass(frozen=True)
class TrafficFilter:
    """The traffic specification ``T_i`` of an analysis class.

    Empty ``server_ports`` with ``proto=None`` matches all traffic.
    ``syn_only`` restricts to connection-initiating packets (SYN-flood
    analysis); ``half_open_only`` marks sessions that never complete.
    """

    server_ports: FrozenSet[int] = frozenset()
    proto: Optional[int] = None
    syn_only: bool = False

    def matches_session(self, session: Session) -> bool:
        if self.proto is not None and session.tuple.proto != self.proto:
            return False
        if self.server_ports and session.tuple.dport not in self.server_ports:
            return False
        # syn_only filters packets, not sessions: every TCP session
        # contributes at least its initial SYN, so it matches.
        return True

    def matches_sessions_batch(self, protos, dports):
        """Vectorized :meth:`matches_session` over field arrays.

        *protos* and *dports* are equal-length NumPy arrays of the
        sessions' protocol and destination-port fields; returns a
        boolean mask matching the scalar predicate element-wise.
        """
        import numpy as np

        mask = np.ones(len(protos), dtype=bool)
        if self.proto is not None:
            mask &= protos == self.proto
        if self.server_ports:
            mask &= np.isin(dports, np.fromiter(self.server_ports, dtype=np.int64))
        return mask

    def matches_packet(self, packet: Packet) -> bool:
        if self.proto is not None and packet.tuple.proto != self.proto:
            return False
        if self.server_ports:
            if (
                packet.tuple.dport not in self.server_ports
                and packet.tuple.sport not in self.server_ports
            ):
                return False
        if self.syn_only and not packet.is_syn:
            return False
        return True

    @property
    def matches_all(self) -> bool:
        return not self.server_ports and self.proto is None and not self.syn_only


@dataclass(frozen=True)
class ModuleSpec:
    """Static description + calibrated resource footprint of a module."""

    name: str
    aggregation: Aggregation
    scope: Scope
    check_location: CheckLocation
    traffic_filter: TrafficFilter = field(default_factory=TrafficFilter)

    #: Event-engine analysis cost per matched packet (protocol parsing,
    #: signature DFA, reassembly) in cpu units.
    event_cpu_per_packet: float = 0.1
    #: Policy-script events generated per matched packet (line/request
    #: oriented protocols generate many; connection-summary consumers
    #: generate ~1 per connection, expressed via events_per_session).
    events_per_packet: float = 0.0
    #: Policy-script events generated per matched session (e.g. one
    #: connection-summary event for scan detection).
    events_per_session: float = 0.0
    #: Policy-script interpretation cost per event, in cpu units.
    policy_cpu_per_event: float = 0.4
    #: State bytes per tracked item (flow, source, ...) — ``MemReq_i``.
    mem_bytes_per_item: float = 200.0
    #: The module's policy script subscribes to the *raw* connection
    #: event stream (scan, TFTP): every tracked connection reaches the
    #: script, so coordination checks there are charged per connection,
    #: not per matched session.
    raw_event_stream: bool = False
    #: For raw-stream consumers: connection-lifecycle events delivered
    #: to the script per tracked connection (new_connection,
    #: connection_state_remove, ...), each of which re-runs the
    #: interpreted coordination check.
    raw_events_per_conn: float = 1.0
    #: Policy events fire only for half-open connections (SYN-flood):
    #: completed handshakes are canceled cheaply inside the event engine.
    half_open_events_only: bool = False
    #: Connection-information granularity (§2.5 extension).  Scan only
    #: needs each connection's first packet; honoured when the engine
    #: runs with fine-grained coordination enabled.
    subscription: Subscription = Subscription.FULL_CONNECTION

    def policy_events(self, session: Session) -> float:
        """Expected number of policy events this module derives from
        *session* (used by both cost accounting and the LP inputs)."""
        if not self.traffic_filter.matches_session(session):
            return 0.0
        if self.half_open_events_only and not session.half_open:
            return 0.0
        return self.events_per_packet * session.num_packets + self.events_per_session

    def session_cpu(self, session: Session) -> float:
        """Total analysis cost this module incurs for *session* (cpu
        units): event-engine work per packet plus interpreted policy
        work per derived event.  Zero for unmatched sessions."""
        if not self.traffic_filter.matches_session(session):
            return 0.0
        return (
            self.event_cpu_per_packet * session.num_packets
            + self.policy_cpu_per_event * self.policy_events(session)
        )

    def policy_events_batch(self, pkts_f, half_open):
        """Vectorized :meth:`policy_events` over matched sessions.

        *pkts_f* is a float64 packet-count array, *half_open* the bool
        half-open mask.  The traffic-filter gate is NOT applied here —
        callers mask by match — but the half-open rule is, matching the
        scalar predicate elementwise.  The operation order mirrors
        :meth:`policy_events` exactly so each element is bit-identical
        to the scalar result.
        """
        import numpy as np

        events = self.events_per_packet * pkts_f
        events += self.events_per_session
        if self.half_open_events_only:
            events = np.where(half_open, events, 0.0)
        return events

    def session_cpu_batch(self, pkts_f, half_open):
        """Vectorized :meth:`session_cpu` over matched sessions.

        Same masking contract (and elementwise bit-identity) as
        :meth:`policy_events_batch`.
        """
        work = self.event_cpu_per_packet * pkts_f
        work += self.policy_cpu_per_event * self.policy_events_batch(
            pkts_f, half_open
        )
        return work

    def item_key(self, session: Session) -> int:
        """The state-table key this session occupies at the module's
        aggregation (session id, source host, or destination host)."""
        if self.aggregation is Aggregation.SOURCE:
            return session.tuple.src
        if self.aggregation is Aggregation.DESTINATION:
            return session.tuple.dst
        return session.session_id

    def cpu_per_packet(self) -> float:
        """``CpuReq_i``: total processing cost per matched packet, the
        LP's per-class CPU coefficient (event + amortized policy work)."""
        return (
            self.event_cpu_per_packet
            + self.events_per_packet * self.policy_cpu_per_event
        )

    @property
    def mem_req(self) -> float:
        """``MemReq_i``: bytes per item at this module's aggregation."""
        return self.mem_bytes_per_item


@dataclass
class Alert:
    """A detection produced by a module's behavioural detector."""

    module: str
    subject: str
    detail: str = ""

    def key(self) -> Tuple[str, str]:
        return (self.module, self.subject)

    def to_dict(self) -> dict:
        """JSON-compatible dict of the alert."""
        return {
            "module": self.module,
            "subject": self.subject,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Alert":
        """Rebuild an alert from :meth:`to_dict` output."""
        return cls(**data)


class Detector:
    """Behavioural base class: stateful per-instance analysis logic.

    Subclasses override :meth:`on_packet` and/or :meth:`on_session` and
    append to :attr:`alerts`.  Detectors are deliberately simple — they
    exist to verify functional equivalence of deployments, not to be a
    production IDS.
    """

    def __init__(self, spec: ModuleSpec):
        self.spec = spec
        self.alerts: List[Alert] = []

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - default
        """Consume one matched packet."""

    def on_session(self, session: Session) -> None:  # pragma: no cover - default
        """Consume one matched session summary."""

    def alert_keys(self) -> FrozenSet[Tuple[str, str]]:
        """Deduplicated alert identities (for cross-deployment diffing)."""
        return frozenset(alert.key() for alert in self.alerts)
