"""Application-protocol analyzers: HTTP, IRC, Login, TFTP, Blaster.

Each analyzer consumes the sessions matched by its module's traffic
filter, keeps lightweight per-session statistics, and raises an alert
when the session carries the protocol's malicious payload tag.  The
tags stand in for content inspection (see ``traffic.packet.Packet``);
what matters for the reproduction is that a distributed deployment
raises exactly the same alert set as a standalone one.
"""

from __future__ import annotations

from typing import Set

from ...traffic.session import Session
from .base import Alert, Detector, ModuleSpec


class _TaggedSessionDetector(Detector):
    """Shared base: alert on sessions carrying *alert_tag*."""

    alert_tag = ""
    alert_detail = ""

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self.sessions_analyzed = 0

    def on_session(self, session: Session) -> None:
        self.sessions_analyzed += 1
        if session.malicious and session.payload_tag == self.alert_tag:
            self.alerts.append(
                Alert(
                    module=self.spec.name,
                    subject=f"session:{session.session_id}",
                    detail=self.alert_detail,
                )
            )


class HTTPAnalyzer(_TaggedSessionDetector):
    """HTTP request analysis; alerts on exploit-bearing requests."""

    alert_tag = "exploit-http"
    alert_detail = "HTTP exploit signature in request"

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self.requests_seen = 0

    def on_session(self, session: Session) -> None:
        # Roughly one request per forward/response packet pair.
        self.requests_seen += max(1, session.num_packets // 2)
        super().on_session(session)


class IRCAnalyzer(_TaggedSessionDetector):
    """IRC channel tracking; alerts on botnet command-and-control."""

    alert_tag = "botnet-cnc"
    alert_detail = "IRC botnet C&C channel activity"


class LoginAnalyzer(_TaggedSessionDetector):
    """Telnet/rlogin session analysis; alerts on brute-force attempts."""

    alert_tag = "login-bruteforce"
    alert_detail = "interactive login brute-force"


class TFTPAnalyzer(Detector):
    """TFTP transfer logging (policy-stage raw event consumer)."""

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self.transfers: int = 0

    def on_session(self, session: Session) -> None:
        self.transfers += 1
        # Every TFTP transfer crossing the backbone is logged; unsolicited
        # transfers are inherently notable in enterprise settings.
        self.alerts.append(
            Alert(
                module=self.spec.name,
                subject=f"session:{session.session_id}",
                detail="TFTP transfer observed",
            )
        )


class BlasterDetector(Detector):
    """Blaster-worm detection on RPC (port 135) connections, per source."""

    def __init__(self, spec: ModuleSpec):
        super().__init__(spec)
        self._alerted: Set[int] = set()

    def on_session(self, session: Session) -> None:
        if not (session.malicious and session.payload_tag == "blaster-worm"):
            return
        source = session.tuple.src
        if source in self._alerted:
            return
        self._alerted.add(source)
        self.alerts.append(
            Alert(
                module=self.spec.name,
                subject=f"src:{source}",
                detail="Blaster worm propagation attempt",
            )
        )
