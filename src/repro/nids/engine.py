"""Simulated Bro instance (paper Section 2.3, Fig. 4).

A :class:`BroInstance` models one Bro process on one node in one of
three variants:

* ``UNMODIFIED`` — stock Bro: every connection is tracked and every
  module analyzes everything it matches (no coordination machinery).
* ``COORD_POLICY`` — approach 1: coordination checks are delayed to the
  policy engine; interpreted hash checks run per policy event.
* ``COORD_EVENT`` — approach 2: checks run as early as possible; for
  HTTP/IRC/Login-style modules a compiled check at module
  initialization, and connection state is skipped entirely for traffic
  outside the node's manifest unless some policy-stage module on this
  node still needs the connection's events (the Section 2.5 caveat —
  scan detection at an ingress forces tracking of all its sources'
  connections).

Processing is session-granular: per-packet costs are applied
arithmetically from each session's packet count, which reproduces the
cost accounting exactly while staying fast enough for the multi-million
session network-wide runs.  Two execution paths share one accounting
contract:

* the scalar path loops sessions in Python (reference semantics);
* the vectorized path (:meth:`BroInstance.process_sessions_batch`)
  evaluates sampling, tracking levels, coordination checks and module
  work over NumPy arrays with per-module masks.

Both paths fold per-session CPU subtotals — built with the *same*
elementwise operation order — into an :class:`~repro.core.exactsum.ExactSum`,
so their :class:`InstanceReport`\\ s are bit-identical by construction,
and chunked/streamed runs merge :class:`PartialInstanceReport`\\ s to
exactly the one-shot result.  Behavioural detectors can be enabled to
verify functional equivalence between deployments.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.dispatch import CoordinatedDispatcher
from ..core.exactsum import ExactSum
from ..core.units import unit_key_for_session
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..traffic.batch import SessionBatch
from ..traffic.session import Session
from .modules.base import Alert, CheckLocation, Detector, ModuleSpec, Subscription
from .modules import make_detector
from .resources import CostModel, DEFAULT_COST_MODEL, ResourceUsage

#: A node trace, either as materialized sessions or a prebuilt columnar
#: batch (the batch is accepted anywhere sessions are, so callers that
#: already paid the column build never pay it twice).
Trace = Union[Sequence[Session], SessionBatch]


class BroMode(enum.Enum):
    """Instance variant (Fig. 4)."""

    UNMODIFIED = "unmodified"
    COORD_POLICY = "coord-policy"
    COORD_EVENT = "coord-event"


class ExecutionMode(enum.Enum):
    """How an emulation run is executed (not *what* it computes).

    All three modes produce bit-identical :class:`InstanceReport`\\ s —
    the exact-accounting contract above — so the choice is purely an
    operational trade: memory footprint, wall-clock, process count.
    """

    #: Materialize the trace and process each node trace in one call.
    INLINE = "inline"
    #: Chunked streaming through persistent per-node instances
    #: (memory bounded by the chunk size, not the trace size).
    STREAMED = "streamed"
    #: Per-node (and per-chunk for hot nodes) shards fanned out to a
    #: spawn-safe process pool, partials merged in the parent
    #: (:mod:`repro.nids.shard`).
    SHARDED = "sharded"


@dataclass(frozen=True)
class ExecutionPolicy:
    """Execution strategy for :func:`~repro.nids.emulation.run_emulation`.

    ``jobs`` is the worker-process count for the sharded mode (``0``
    means one per CPU); ``chunk_size`` bounds both the streamed chunk
    length and the per-shard session count for hot nodes;
    ``mp_context`` names the multiprocessing start method (``spawn``
    is the only start method safe on every platform and is what the
    shard workers are written against).
    """

    mode: ExecutionMode = ExecutionMode.INLINE
    jobs: int = 0
    chunk_size: int = 50_000
    mp_context: str = "spawn"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one per CPU)")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    @classmethod
    def inline(cls) -> "ExecutionPolicy":
        """The default single-process, materialized execution."""
        return cls()

    @classmethod
    def streamed(cls, chunk_size: int = 50_000) -> "ExecutionPolicy":
        """Chunked streaming with the given chunk size."""
        return cls(mode=ExecutionMode.STREAMED, chunk_size=chunk_size)

    @classmethod
    def sharded(
        cls, jobs: int = 0, chunk_size: int = 50_000, mp_context: str = "spawn"
    ) -> "ExecutionPolicy":
        """Process-pool sharding with *jobs* workers."""
        return cls(
            mode=ExecutionMode.SHARDED,
            jobs=jobs,
            chunk_size=chunk_size,
            mp_context=mp_context,
        )


@dataclass(frozen=True)
class EmulationConfig:
    """Run configuration for emulation entry points and instances.

    Collapses the keyword sprawl that accreted on
    :func:`~repro.nids.emulation.emulate_coordinated` and
    :class:`BroInstance` into one value that can be built once and
    shared across a whole experiment sweep.  ``mode`` selects the
    instance variant for the coordinated entry points (it is ignored by
    :class:`BroInstance`, whose explicit ``mode`` argument is
    authoritative).  ``registry`` receives runtime telemetry; the
    default :data:`~repro.obs.NULL_REGISTRY` makes every recording a
    no-op.  ``policy`` selects how
    :func:`~repro.nids.emulation.run_emulation` executes the run
    (inline / streamed / sharded); it never changes what is computed.
    """

    mode: BroMode = BroMode.COORD_EVENT
    cost_model: CostModel = DEFAULT_COST_MODEL
    run_detectors: bool = False
    fine_grained: bool = False
    batch_dispatch: bool = True
    #: Vectorized engine fast path: evaluate the whole cost model over
    #: NumPy session arrays (bit-identical reports; ~order-of-magnitude
    #: faster on large traces).  Scalar fallback remains for single
    #: sessions and as the reference semantics.
    batch_engine: bool = True
    registry: MetricsRegistry = NULL_REGISTRY
    policy: ExecutionPolicy = ExecutionPolicy()


class _Unset:
    """Sentinel distinguishing 'not passed' from any real value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<unset>"


_UNSET = _Unset()


def _resolve_config(
    config: Optional[EmulationConfig],
    registry: Optional[MetricsRegistry],
    **legacy: object,
) -> EmulationConfig:
    """Fold deprecated per-call keywords into an :class:`EmulationConfig`.

    Legacy keywords still work (so pre-config callers keep their exact
    behaviour) but raise a :class:`DeprecationWarning`; mixing them
    with ``config=`` is an error because the precedence would be
    ambiguous.  An explicit ``registry=`` always wins over
    ``config.registry`` — it is the blessed way to opt into telemetry.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if supplied:
        if config is not None:
            raise TypeError(
                "pass either config=EmulationConfig(...) or the deprecated"
                f" keyword arguments {sorted(supplied)}, not both"
            )
        warnings.warn(
            f"passing {'/'.join(sorted(supplied))} directly is deprecated;"
            " use config=EmulationConfig(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        config = EmulationConfig(**supplied)  # type: ignore[arg-type]
    elif config is None:
        config = EmulationConfig()
    if registry is not None:
        config = replace(config, registry=registry)
    return config


class TrackingLevel(enum.Enum):
    """How much connection state a session forces at this node.

    ``FULL`` is Bro's normal connection record; ``LIGHT`` is the §2.5
    fine-grained extension — a first-packet-only record sufficient for
    subscribers like scan detection; ``NONE`` skips state entirely.
    """

    NONE = 0
    LIGHT = 1
    FULL = 2


@dataclass
class InstanceReport:
    """Resource usage and detection output of one instance run."""

    node: str
    mode: BroMode
    usage: ResourceUsage
    tracked_connections: int
    module_cpu: Dict[str, float]
    module_items: Dict[str, int]
    alerts: List[Alert] = field(default_factory=list)
    #: §2.5 fine-grained extension: first-packet-only records.
    light_connections: int = 0

    @property
    def cpu(self) -> float:
        """Total CPU footprint (cpu units)."""
        return self.usage.cpu

    @property
    def mem_bytes(self) -> float:
        """Total resident memory footprint (bytes)."""
        return self.usage.mem_bytes

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "node": self.node,
            "mode": self.mode.value,
            "usage": {"cpu": self.usage.cpu, "mem_bytes": self.usage.mem_bytes},
            "tracked_connections": self.tracked_connections,
            "module_cpu": dict(self.module_cpu),
            "module_items": dict(self.module_items),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "light_connections": self.light_connections,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            node=data["node"],
            mode=BroMode(data["mode"]),
            usage=ResourceUsage(**data["usage"]),
            tracked_connections=data["tracked_connections"],
            module_cpu=dict(data["module_cpu"]),
            module_items=dict(data["module_items"]),
            alerts=[Alert.from_dict(alert) for alert in data.get("alerts", ())],
            light_connections=data.get("light_connections", 0),
        )


@dataclass(eq=False)
class PartialInstanceReport:
    """Exact, mergeable accounting state for part of a node trace.

    The chunked/streaming path processes a trace in slices; each slice
    yields one partial.  All fields are order-independent (counters,
    :class:`~repro.core.exactsum.ExactSum` CPU accumulators, sorted
    distinct item-key arrays), so merging per-chunk partials in any
    order and finalizing yields a report bit-identical to the one-shot
    run.  Derived quantities — correctly rounded CPU floats, the
    per-process base memory, item memory — are computed once in
    :meth:`finalize`, never summed across partials, which is what makes
    the merge semantics safe (no double-counted ``process_base_bytes``,
    no sum-of-distinct-counts inflation).

    Serialization (:meth:`to_dict` / :meth:`from_dict`, pickle) is
    loss-free: accumulators travel as hex numerators, item keys as int
    lists.
    """

    node: str
    mode: BroMode
    num_sessions: int
    tracked_connections: int
    light_connections: int
    cpu: ExactSum
    module_cpu: Dict[str, ExactSum]
    module_sessions: Dict[str, int]
    #: Sorted unique int64 arrays of state-table keys per module —
    #: distinct-item tracking that unions exactly across chunks.
    module_item_keys: Dict[str, "object"]
    alerts: List[Alert] = field(default_factory=list)

    @classmethod
    def empty(cls, node: str, mode: BroMode, module_names: Iterable[str]) -> "PartialInstanceReport":
        """A zero partial for *node* covering *module_names*."""
        import numpy as np

        names = list(module_names)
        return cls(
            node=node,
            mode=mode,
            num_sessions=0,
            tracked_connections=0,
            light_connections=0,
            cpu=ExactSum(),
            module_cpu={name: ExactSum() for name in names},
            module_sessions={name: 0 for name in names},
            module_item_keys={name: np.empty(0, dtype=np.int64) for name in names},
            alerts=[],
        )

    def merge(self, other: "PartialInstanceReport") -> None:
        """Fold *other* into this partial — exact and order-independent."""
        import numpy as np

        if other.node != self.node or other.mode is not self.mode:
            raise ValueError(
                f"cannot merge partial for {other.node}/{other.mode.value} into"
                f" {self.node}/{self.mode.value}"
            )
        if set(other.module_cpu) != set(self.module_cpu):
            raise ValueError("cannot merge partials over different module sets")
        self.num_sessions += other.num_sessions
        self.tracked_connections += other.tracked_connections
        self.light_connections += other.light_connections
        self.cpu.merge(other.cpu)
        for name, acc in other.module_cpu.items():
            self.module_cpu[name].merge(acc)
        for name, count in other.module_sessions.items():
            self.module_sessions[name] += count
        for name, keys in other.module_item_keys.items():
            self.module_item_keys[name] = np.union1d(
                self.module_item_keys[name], keys
            )
        self.alerts.extend(other.alerts)

    def finalize(
        self, modules: Sequence[ModuleSpec], cost_model: CostModel
    ) -> InstanceReport:
        """Render the exact accounting state into an :class:`InstanceReport`.

        Memory is derived from counts here — the per-process base is
        added exactly once, connection records and hash fields per
        tracked count, item state per *distinct* key count — so the
        result does not depend on how the trace was chunked.
        """
        cost = cost_model
        coordinated = self.mode is not BroMode.UNMODIFIED
        usage = ResourceUsage(mem_bytes=float(cost.process_base_bytes))
        usage.cpu = self.cpu.value()
        usage.mem_bytes += self.tracked_connections * float(cost.conn_record_bytes)
        if coordinated:
            usage.mem_bytes += self.tracked_connections * float(
                cost.hash_fields_bytes
            )
        usage.mem_bytes += self.light_connections * float(cost.light_record_bytes)
        item_counts: Dict[str, int] = {}
        for spec in modules:
            keys = self.module_item_keys.get(spec.name)
            count = 0 if keys is None else len(keys)
            item_counts[spec.name] = count
            usage.mem_bytes += count * spec.mem_bytes_per_item
        module_cpu = {
            spec.name: self.module_cpu.get(spec.name, ExactSum()).value()
            for spec in modules
        }
        return InstanceReport(
            node=self.node,
            mode=self.mode,
            usage=usage,
            tracked_connections=self.tracked_connections,
            module_cpu=module_cpu,
            module_items=item_counts,
            alerts=list(self.alerts),
            light_connections=self.light_connections,
        )

    # -- identity / transport ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        import numpy as np

        if not isinstance(other, PartialInstanceReport):
            return NotImplemented
        return (
            self.node == other.node
            and self.mode is other.mode
            and self.num_sessions == other.num_sessions
            and self.tracked_connections == other.tracked_connections
            and self.light_connections == other.light_connections
            and self.cpu == other.cpu
            and self.module_cpu == other.module_cpu
            and self.module_sessions == other.module_sessions
            and set(self.module_item_keys) == set(other.module_item_keys)
            and all(
                np.array_equal(keys, other.module_item_keys[name])
                for name, keys in self.module_item_keys.items()
            )
            and self.alerts == other.alerts
        )

    def to_dict(self) -> dict:
        """JSON-compatible, loss-free dict (ExactSums as hex)."""
        return {
            "node": self.node,
            "mode": self.mode.value,
            "num_sessions": self.num_sessions,
            "tracked_connections": self.tracked_connections,
            "light_connections": self.light_connections,
            "cpu": self.cpu.to_hex(),
            "module_cpu": {
                name: acc.to_hex() for name, acc in self.module_cpu.items()
            },
            "module_sessions": dict(self.module_sessions),
            "module_item_keys": {
                name: [int(key) for key in keys]
                for name, keys in self.module_item_keys.items()
            },
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartialInstanceReport":
        """Rebuild a partial from :meth:`to_dict` output."""
        import numpy as np

        return cls(
            node=data["node"],
            mode=BroMode(data["mode"]),
            num_sessions=data["num_sessions"],
            tracked_connections=data["tracked_connections"],
            light_connections=data["light_connections"],
            cpu=ExactSum.from_hex(data["cpu"]),
            module_cpu={
                name: ExactSum.from_hex(text)
                for name, text in data["module_cpu"].items()
            },
            module_sessions=dict(data["module_sessions"]),
            module_item_keys={
                name: np.array(keys, dtype=np.int64)
                for name, keys in data["module_item_keys"].items()
            },
            alerts=[Alert.from_dict(alert) for alert in data.get("alerts", ())],
        )


class BroInstance:
    """One simulated Bro process."""

    def __init__(
        self,
        node: str,
        modules: Sequence[ModuleSpec],
        mode: BroMode,
        dispatcher: Optional[CoordinatedDispatcher] = None,
        cost_model: object = _UNSET,
        run_detectors: object = _UNSET,
        fine_grained: object = _UNSET,
        batch_dispatch: object = _UNSET,
        *,
        config: Optional[EmulationConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if mode is not BroMode.UNMODIFIED and dispatcher is None:
            raise ValueError("coordinated modes require a dispatcher")
        config = _resolve_config(
            config,
            registry,
            cost_model=cost_model,
            run_detectors=run_detectors,
            fine_grained=fine_grained,
            batch_dispatch=batch_dispatch,
        )
        self.node = node
        self.modules = list(modules)
        self.mode = mode
        self.dispatcher = dispatcher
        self.config = config
        self.registry = config.registry
        self.cost = config.cost_model
        #: Vectorized Fig. 3 fast path: precompute the whole trace's
        #: sampling decisions with CoordinatedDispatcher.sampled_modules_batch
        #: (bit-identical to the scalar per-session checks).
        self.batch_dispatch = config.batch_dispatch
        #: Vectorized cost-model fast path (masks over session arrays).
        self.batch_engine = config.batch_engine
        #: §2.5 extension: honour FIRST_PACKET subscriptions with
        #: lightweight records instead of full connection tracking.
        self.fine_grained = config.fine_grained
        self.detectors: Dict[str, Detector] = (
            {spec.name: make_detector(spec) for spec in self.modules}
            if config.run_detectors
            else {}
        )

    # -- per-session decisions ---------------------------------------------
    def _responsible(self, spec: ModuleSpec, session: Session) -> bool:
        """Whether this node holds any range for the session's unit."""
        assert self.dispatcher is not None
        unit = unit_key_for_session(spec, session)
        return self.dispatcher.manifest.responsible(spec.name, unit)

    def _sampled(self, spec: ModuleSpec, session: Session) -> bool:
        """The Fig. 3 hash-range check for this node."""
        assert self.dispatcher is not None
        return self.dispatcher.should_analyze(spec, session)

    def _required_level(self, spec: ModuleSpec) -> TrackingLevel:
        """Tracking level *spec* forces when it needs this session."""
        if self.fine_grained and spec.subscription is Subscription.FIRST_PACKET:
            return TrackingLevel.LIGHT
        return TrackingLevel.FULL

    def _tracking_level(
        self, session: Session, sampled_specs: List[ModuleSpec]
    ) -> TrackingLevel:
        """How much connection state *session* forces at this node.

        Unmodified Bro and approach 1 fully track every connection
        (the sampling decision comes too late to skip state).
        Approach 2 creates state only when (a) some module sampled the
        session, or (b) a policy-stage module on this node needs the
        session's connection events: raw-stream consumers (scan, TFTP)
        need events for *every* connection in their unit, other policy
        modules (Blaster, SYN-flood) only for matched sessions.  With
        the §2.5 fine-grained extension, first-packet subscribers force
        only a LIGHT record.
        """
        if self.mode is not BroMode.COORD_EVENT:
            return TrackingLevel.FULL
        assert self.dispatcher is not None
        if self.dispatcher.manifest.full:
            # Standalone configuration: the manifest assigns all
            # traffic to this node, so nothing falls outside it.
            return TrackingLevel.FULL
        level = TrackingLevel.NONE
        for spec in sampled_specs:
            required = self._required_level(spec)
            if required.value > level.value:
                level = required
            if level is TrackingLevel.FULL:
                return level
        for spec in self.modules:
            if spec.check_location is not CheckLocation.POLICY_ONLY:
                continue
            if not self._responsible(spec, session):
                continue
            if spec.raw_event_stream or spec.traffic_filter.matches_session(session):
                required = self._required_level(spec)
                if required.value > level.value:
                    level = required
                if level is TrackingLevel.FULL:
                    return level
        return level

    # -- main loop -----------------------------------------------------------
    def process_sessions(self, sessions: Trace) -> InstanceReport:
        """Run the instance over a node trace and account its resources.

        Routes through the vectorized fast path when ``batch_engine``
        is enabled and the trace is non-trivial; both paths produce
        bit-identical reports.
        """
        return self.finalize_partial(self.process_sessions_partial(sessions))

    def process_sessions_batch(self, sessions: Trace) -> InstanceReport:
        """Explicit vectorized run (bit-identical to the scalar path)."""
        return self.finalize_partial(self._process_batch(sessions))

    def process_sessions_partial(self, sessions: Trace) -> PartialInstanceReport:
        """Account one trace slice into a mergeable partial report.

        The streaming emulation entry points call this once per chunk
        and merge; detector alerts are *not* embedded (detectors
        accumulate on the instance and are collected at
        :meth:`finalize_partial` time, so chunked runs do not duplicate
        them).
        """
        if self.batch_engine and len(sessions) > 1:
            return self._process_batch(sessions)
        return self._process_scalar(sessions)

    def finalize_partial(self, partial: PartialInstanceReport) -> InstanceReport:
        """Render a (possibly merged) partial plus detector output."""
        report = partial.finalize(self.modules, self.cost)
        for detector in self.detectors.values():
            report.alerts.extend(detector.alerts)
        return report

    def _process_scalar(self, sessions: Trace) -> PartialInstanceReport:
        """Reference per-session loop producing an exact partial."""
        import numpy as np

        if isinstance(sessions, SessionBatch):
            sessions = sessions.sessions
        cost = self.cost
        coordinated = self.mode is not BroMode.UNMODIFIED
        partial = PartialInstanceReport.empty(
            self.node, self.mode, (spec.name for spec in self.modules)
        )
        item_sets: Dict[str, Set[int]] = {spec.name: set() for spec in self.modules}
        #: LIGHT-record charge; one binary add, shared with the batch path.
        light_charge = cost.light_conn_cost + cost.hash_compute_cost
        started = time.perf_counter()
        cache_before = self._cache_counters()

        batch_sampled = None
        if coordinated and self.batch_dispatch and len(sessions) > 1:
            assert self.dispatcher is not None
            batch_sampled = self.dispatcher.sampled_modules_batch(sessions)

        tracked_connections = 0
        light_connections = 0
        for position, session in enumerate(sessions):
            pkts = session.num_packets
            # Canonical per-session subtotal. The batch path reproduces
            # this exact operation order elementwise, so the two paths
            # fold identical doubles into the exact accumulator.
            subtotal = cost.capture_cost * pkts

            if batch_sampled is not None:
                sampled_specs = batch_sampled[position]
            elif coordinated:
                sampled_specs = [
                    spec for spec in self.modules if self._sampled(spec, session)
                ]
            else:
                sampled_specs = [
                    spec
                    for spec in self.modules
                    if spec.traffic_filter.matches_session(session)
                ]

            level = self._tracking_level(session, sampled_specs)
            tracked = level is not TrackingLevel.NONE
            if level is TrackingLevel.FULL:
                tracked_connections += 1
                subtotal += cost.base_conn_packet_cost * pkts
                if coordinated:
                    subtotal += cost.hash_compute_cost
            elif level is TrackingLevel.LIGHT:
                light_connections += 1
                subtotal += light_charge

            if coordinated:
                subtotal += self._check_costs(session, tracked)

            for spec in sampled_specs:
                work = spec.session_cpu(session)
                subtotal += work
                partial.module_cpu[spec.name].add(work)
                item_sets[spec.name].add(spec.item_key(session))
                partial.module_sessions[spec.name] += 1
                detector = self.detectors.get(spec.name)
                if detector is not None:
                    detector.on_session(session)

            partial.cpu.add(subtotal)

        partial.num_sessions = len(sessions)
        partial.tracked_connections = tracked_connections
        partial.light_connections = light_connections
        for name, keys in item_sets.items():
            partial.module_item_keys[name] = np.array(sorted(keys), dtype=np.int64)

        self._record_trace(
            len(sessions),
            started,
            tracked_connections,
            light_connections,
            partial.module_sessions,
            cache_before,
            batched=False,
        )
        return partial

    def _process_batch(self, sessions: Trace) -> PartialInstanceReport:
        """Vectorized cost model: per-module masks over session arrays."""
        import numpy as np

        batch = sessions if isinstance(sessions, SessionBatch) else SessionBatch(sessions)
        n = len(batch)
        cost = self.cost
        coordinated = self.mode is not BroMode.UNMODIFIED
        partial = PartialInstanceReport.empty(
            self.node, self.mode, (spec.name for spec in self.modules)
        )
        partial.num_sessions = n
        started = time.perf_counter()
        cache_before = self._cache_counters()
        if n == 0:
            self._record_trace(
                0, started, 0, 0, partial.module_sessions, cache_before, batched=True
            )
            return partial

        if coordinated:
            assert self.dispatcher is not None
            decisions = self.dispatcher.batch_decisions(batch)
            match_masks = [decision.match for decision in decisions]
            sampled_masks = [decision.analyze for decision in decisions]
            resp_masks = [decision.responsible for decision in decisions]
        else:
            match_masks = [
                spec.traffic_filter.matches_sessions_batch(batch.proto, batch.dport)
                for spec in self.modules
            ]
            sampled_masks = match_masks
            resp_masks = None

        # -- tracking levels (vectorized _tracking_level) -----------------
        if (
            self.mode is not BroMode.COORD_EVENT
            or self.dispatcher is None
            or self.dispatcher.manifest.full
        ):
            level = np.full(n, TrackingLevel.FULL.value, dtype=np.int8)
        else:
            level = np.zeros(n, dtype=np.int8)
            for spec, sampled in zip(self.modules, sampled_masks):
                required = np.int8(self._required_level(spec).value)
                np.maximum(level, sampled * required, out=level)
            assert resp_masks is not None
            for spec, match, resp in zip(self.modules, match_masks, resp_masks):
                if spec.check_location is not CheckLocation.POLICY_ONLY:
                    continue
                needs = resp if spec.raw_event_stream else resp & match
                required = np.int8(self._required_level(spec).value)
                np.maximum(level, needs * required, out=level)
        full_mask = level == TrackingLevel.FULL.value
        light_mask = level == TrackingLevel.LIGHT.value
        tracked_mask = level != TrackingLevel.NONE.value
        tracked_connections = int(full_mask.sum())
        light_connections = int(light_mask.sum())

        # -- per-session CPU subtotals (canonical scalar op order) --------
        pkts_f = batch.pkts_f
        subtotal = cost.capture_cost * pkts_f
        conn_charge = cost.base_conn_packet_cost * pkts_f
        subtotal[full_mask] += conn_charge[full_mask]
        if coordinated:
            subtotal[full_mask] += cost.hash_compute_cost
        subtotal[light_mask] += cost.light_conn_cost + cost.hash_compute_cost

        if coordinated:
            assert resp_masks is not None
            check = np.zeros(n, dtype=np.float64)
            for spec, match, resp in zip(self.modules, match_masks, resp_masks):
                location = spec.check_location
                if location is CheckLocation.POLICY_ONLY:
                    if spec.raw_event_stream:
                        mask = resp & tracked_mask
                        check[mask] += cost.policy_check_cost * spec.raw_events_per_conn
                    else:
                        mask = resp & tracked_mask & match
                        events = spec.policy_events_batch(pkts_f, batch.half_open)
                        charge = cost.policy_check_cost * events
                        check[mask] += charge[mask]
                elif location is CheckLocation.EVENT_ONLY:
                    mask = resp & match
                    check[mask] += cost.event_check_cost
                else:  # EVENT_CAPABLE: placement depends on the approach
                    if self.mode is BroMode.COORD_EVENT:
                        mask = resp & match
                        check[mask] += cost.event_check_cost
                    else:
                        mask = resp & tracked_mask & match
                        events = spec.policy_events_batch(pkts_f, batch.half_open)
                        charge = cost.policy_check_cost * events
                        check[mask] += charge[mask]
            subtotal += check

        # -- per-module analysis work -------------------------------------
        for spec, sampled in zip(self.modules, sampled_masks):
            count = int(sampled.sum())
            if count == 0:
                continue
            work = spec.session_cpu_batch(pkts_f, batch.half_open)
            subtotal[sampled] += work[sampled]
            partial.module_cpu[spec.name].add_array(work[sampled])
            partial.module_sessions[spec.name] = count
            partial.module_item_keys[spec.name] = np.unique(
                batch.item_keys(spec.aggregation)[sampled]
            )

        partial.cpu.add_array(subtotal)
        partial.tracked_connections = tracked_connections
        partial.light_connections = light_connections

        if self.detectors:
            any_sampled = np.zeros(n, dtype=bool)
            for sampled in sampled_masks:
                any_sampled |= sampled
            # Session-major, module order within — the scalar feed order.
            for index in np.flatnonzero(any_sampled):
                session = batch.sessions[index]
                for spec, sampled in zip(self.modules, sampled_masks):
                    if sampled[index]:
                        detector = self.detectors.get(spec.name)
                        if detector is not None:
                            detector.on_session(session)

        self._record_trace(
            n,
            started,
            tracked_connections,
            light_connections,
            partial.module_sessions,
            cache_before,
            batched=True,
        )
        return partial

    # -- telemetry ------------------------------------------------------------
    def _cache_counters(self) -> Tuple[int, int, int]:
        if self.dispatcher is None:
            return (0, 0, 0)
        return (
            self.dispatcher.cache_hits,
            self.dispatcher.cache_misses,
            self.dispatcher.batch_hashes,
        )

    def _record_trace(
        self,
        n: int,
        started: float,
        tracked: int,
        light: int,
        module_sessions: Dict[str, int],
        cache_before: Tuple[int, int, int],
        batched: bool = False,
    ) -> None:
        """Record one trace run into the configured registry.

        Runs once per trace (never per session) so the instrumented
        engine stays within the telemetry overhead budget; under the
        default null registry the whole block is skipped.
        """
        registry = self.registry
        if not registry.enabled:
            return
        elapsed = time.perf_counter() - started
        node = self.node
        registry.counter(
            "dispatch_sessions_total",
            "sessions processed per node trace",
            labels=("node",),
        ).inc(n, node=node)
        if batched:
            registry.counter(
                "engine_batch_sessions_total",
                "sessions processed by the vectorized engine fast path",
                labels=("node",),
            ).inc(n, node=node)
        registry.counter(
            "sessions_tracked_total",
            "sessions forcing a full connection record",
            labels=("node",),
        ).inc(tracked, node=node)
        registry.counter(
            "sessions_light_total",
            "sessions held as first-packet-only light records (Section 2.5)",
            labels=("node",),
        ).inc(light, node=node)
        registry.histogram(
            "engine_trace_seconds",
            "wall-clock seconds per node trace run",
            labels=("node",),
        ).observe(elapsed, node=node)
        if elapsed > 0.0:
            registry.gauge(
                "engine_sessions_per_second",
                "throughput of the most recent trace run",
                labels=("node",),
            ).set(n / elapsed, node=node)
        analyzed = registry.counter(
            "module_sessions_analyzed_total",
            "sessions each module analyzed at each node (Fig. 3 outcomes)",
            labels=("node", "module"),
        )
        for name, count in module_sessions.items():
            if count:
                analyzed.inc(count, node=node, module=name)
        if self.dispatcher is not None:
            hits0, misses0, batch0 = cache_before
            registry.counter(
                "hash_cache_hits_total",
                "scalar-path hash-cache hits",
                labels=("node",),
            ).inc(self.dispatcher.cache_hits - hits0, node=node)
            registry.counter(
                "hash_cache_misses_total",
                "scalar-path hash-cache misses",
                labels=("node",),
            ).inc(self.dispatcher.cache_misses - misses0, node=node)
            registry.counter(
                "hash_batch_computed_total",
                "hash values computed by the vectorized batch sweep",
                labels=("node",),
            ).inc(self.dispatcher.batch_hashes - batch0, node=node)

    # -- coordination-check accounting ----------------------------------------
    def _check_costs(self, session: Session, tracked: bool) -> float:
        """CPU cost of the coordination checks for one connection.

        Event-engine checks are charged per connection per configured
        module; policy-engine checks per event delivered to the policy
        script (raw-stream consumers receive one event per tracked
        connection; protocol modules one per derived protocol event).
        """
        cost = self.cost
        total = 0.0
        for spec in self.modules:
            if not self._responsible(spec, session):
                continue
            location = spec.check_location
            if location is CheckLocation.POLICY_ONLY:
                if not tracked:
                    continue
                if spec.raw_event_stream:
                    total += cost.policy_check_cost * spec.raw_events_per_conn
                elif spec.traffic_filter.matches_session(session):
                    total += cost.policy_check_cost * spec.policy_events(session)
            elif location is CheckLocation.EVENT_ONLY:
                if spec.traffic_filter.matches_session(session):
                    total += cost.event_check_cost
            else:  # EVENT_CAPABLE: placement depends on the approach
                if self.mode is BroMode.COORD_EVENT:
                    if spec.traffic_filter.matches_session(session):
                        total += cost.event_check_cost
                elif tracked and spec.traffic_filter.matches_session(session):
                    total += cost.policy_check_cost * spec.policy_events(session)
        return total

    def alert_keys(self) -> Set[Tuple[str, str]]:
        """Union of deduplicated alert identities across detectors."""
        keys: Set[Tuple[str, str]] = set()
        for detector in self.detectors.values():
            keys.update(detector.alert_keys())
        return keys
