"""Simulated Bro instance (paper Section 2.3, Fig. 4).

A :class:`BroInstance` models one Bro process on one node in one of
three variants:

* ``UNMODIFIED`` — stock Bro: every connection is tracked and every
  module analyzes everything it matches (no coordination machinery).
* ``COORD_POLICY`` — approach 1: coordination checks are delayed to the
  policy engine; interpreted hash checks run per policy event.
* ``COORD_EVENT`` — approach 2: checks run as early as possible; for
  HTTP/IRC/Login-style modules a compiled check at module
  initialization, and connection state is skipped entirely for traffic
  outside the node's manifest unless some policy-stage module on this
  node still needs the connection's events (the Section 2.5 caveat —
  scan detection at an ingress forces tracking of all its sources'
  connections).

Processing is session-granular: per-packet costs are applied
arithmetically from each session's packet count, which reproduces the
cost accounting exactly while staying fast enough for the 100k-session
network-wide runs.  Behavioural detectors can be enabled to verify
functional equivalence between deployments.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.dispatch import CoordinatedDispatcher
from ..core.units import unit_key_for_session
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..traffic.session import Session
from .modules.base import Alert, CheckLocation, Detector, ModuleSpec, Subscription
from .modules import make_detector
from .resources import CostModel, DEFAULT_COST_MODEL, ResourceUsage


class BroMode(enum.Enum):
    """Instance variant (Fig. 4)."""

    UNMODIFIED = "unmodified"
    COORD_POLICY = "coord-policy"
    COORD_EVENT = "coord-event"


@dataclass(frozen=True)
class EmulationConfig:
    """Run configuration for emulation entry points and instances.

    Collapses the keyword sprawl that accreted on
    :func:`~repro.nids.emulation.emulate_coordinated` and
    :class:`BroInstance` into one value that can be built once and
    shared across a whole experiment sweep.  ``mode`` selects the
    instance variant for the coordinated entry points (it is ignored by
    :class:`BroInstance`, whose explicit ``mode`` argument is
    authoritative).  ``registry`` receives runtime telemetry; the
    default :data:`~repro.obs.NULL_REGISTRY` makes every recording a
    no-op.
    """

    mode: BroMode = BroMode.COORD_EVENT
    cost_model: CostModel = DEFAULT_COST_MODEL
    run_detectors: bool = False
    fine_grained: bool = False
    batch_dispatch: bool = True
    registry: MetricsRegistry = NULL_REGISTRY


class _Unset:
    """Sentinel distinguishing 'not passed' from any real value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<unset>"


_UNSET = _Unset()


def _resolve_config(
    config: Optional[EmulationConfig],
    registry: Optional[MetricsRegistry],
    **legacy: object,
) -> EmulationConfig:
    """Fold deprecated per-call keywords into an :class:`EmulationConfig`.

    Legacy keywords still work (so pre-config callers keep their exact
    behaviour) but raise a :class:`DeprecationWarning`; mixing them
    with ``config=`` is an error because the precedence would be
    ambiguous.  An explicit ``registry=`` always wins over
    ``config.registry`` — it is the blessed way to opt into telemetry.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if supplied:
        if config is not None:
            raise TypeError(
                "pass either config=EmulationConfig(...) or the deprecated"
                f" keyword arguments {sorted(supplied)}, not both"
            )
        warnings.warn(
            f"passing {'/'.join(sorted(supplied))} directly is deprecated;"
            " use config=EmulationConfig(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        config = EmulationConfig(**supplied)  # type: ignore[arg-type]
    elif config is None:
        config = EmulationConfig()
    if registry is not None:
        config = replace(config, registry=registry)
    return config


class TrackingLevel(enum.Enum):
    """How much connection state a session forces at this node.

    ``FULL`` is Bro's normal connection record; ``LIGHT`` is the §2.5
    fine-grained extension — a first-packet-only record sufficient for
    subscribers like scan detection; ``NONE`` skips state entirely.
    """

    NONE = 0
    LIGHT = 1
    FULL = 2


@dataclass
class InstanceReport:
    """Resource usage and detection output of one instance run."""

    node: str
    mode: BroMode
    usage: ResourceUsage
    tracked_connections: int
    module_cpu: Dict[str, float]
    module_items: Dict[str, int]
    alerts: List[Alert] = field(default_factory=list)
    #: §2.5 fine-grained extension: first-packet-only records.
    light_connections: int = 0

    @property
    def cpu(self) -> float:
        """Total CPU footprint (cpu units)."""
        return self.usage.cpu

    @property
    def mem_bytes(self) -> float:
        """Total resident memory footprint (bytes)."""
        return self.usage.mem_bytes

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "node": self.node,
            "mode": self.mode.value,
            "usage": {"cpu": self.usage.cpu, "mem_bytes": self.usage.mem_bytes},
            "tracked_connections": self.tracked_connections,
            "module_cpu": dict(self.module_cpu),
            "module_items": dict(self.module_items),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "light_connections": self.light_connections,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            node=data["node"],
            mode=BroMode(data["mode"]),
            usage=ResourceUsage(**data["usage"]),
            tracked_connections=data["tracked_connections"],
            module_cpu=dict(data["module_cpu"]),
            module_items=dict(data["module_items"]),
            alerts=[Alert.from_dict(alert) for alert in data.get("alerts", ())],
            light_connections=data.get("light_connections", 0),
        )


class BroInstance:
    """One simulated Bro process."""

    def __init__(
        self,
        node: str,
        modules: Sequence[ModuleSpec],
        mode: BroMode,
        dispatcher: Optional[CoordinatedDispatcher] = None,
        cost_model: object = _UNSET,
        run_detectors: object = _UNSET,
        fine_grained: object = _UNSET,
        batch_dispatch: object = _UNSET,
        *,
        config: Optional[EmulationConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if mode is not BroMode.UNMODIFIED and dispatcher is None:
            raise ValueError("coordinated modes require a dispatcher")
        config = _resolve_config(
            config,
            registry,
            cost_model=cost_model,
            run_detectors=run_detectors,
            fine_grained=fine_grained,
            batch_dispatch=batch_dispatch,
        )
        self.node = node
        self.modules = list(modules)
        self.mode = mode
        self.dispatcher = dispatcher
        self.config = config
        self.registry = config.registry
        self.cost = config.cost_model
        #: Vectorized Fig. 3 fast path: precompute the whole trace's
        #: sampling decisions with CoordinatedDispatcher.sampled_modules_batch
        #: (bit-identical to the scalar per-session checks).
        self.batch_dispatch = config.batch_dispatch
        #: §2.5 extension: honour FIRST_PACKET subscriptions with
        #: lightweight records instead of full connection tracking.
        self.fine_grained = config.fine_grained
        self.detectors: Dict[str, Detector] = (
            {spec.name: make_detector(spec) for spec in self.modules}
            if config.run_detectors
            else {}
        )

    # -- per-session decisions ---------------------------------------------
    def _responsible(self, spec: ModuleSpec, session: Session) -> bool:
        """Whether this node holds any range for the session's unit."""
        assert self.dispatcher is not None
        unit = unit_key_for_session(spec, session)
        return self.dispatcher.manifest.responsible(spec.name, unit)

    def _sampled(self, spec: ModuleSpec, session: Session) -> bool:
        """The Fig. 3 hash-range check for this node."""
        assert self.dispatcher is not None
        return self.dispatcher.should_analyze(spec, session)

    def _required_level(self, spec: ModuleSpec) -> TrackingLevel:
        """Tracking level *spec* forces when it needs this session."""
        if self.fine_grained and spec.subscription is Subscription.FIRST_PACKET:
            return TrackingLevel.LIGHT
        return TrackingLevel.FULL

    def _tracking_level(
        self, session: Session, sampled_specs: List[ModuleSpec]
    ) -> TrackingLevel:
        """How much connection state *session* forces at this node.

        Unmodified Bro and approach 1 fully track every connection
        (the sampling decision comes too late to skip state).
        Approach 2 creates state only when (a) some module sampled the
        session, or (b) a policy-stage module on this node needs the
        session's connection events: raw-stream consumers (scan, TFTP)
        need events for *every* connection in their unit, other policy
        modules (Blaster, SYN-flood) only for matched sessions.  With
        the §2.5 fine-grained extension, first-packet subscribers force
        only a LIGHT record.
        """
        if self.mode is not BroMode.COORD_EVENT:
            return TrackingLevel.FULL
        assert self.dispatcher is not None
        if self.dispatcher.manifest.full:
            # Standalone configuration: the manifest assigns all
            # traffic to this node, so nothing falls outside it.
            return TrackingLevel.FULL
        level = TrackingLevel.NONE
        for spec in sampled_specs:
            required = self._required_level(spec)
            if required.value > level.value:
                level = required
            if level is TrackingLevel.FULL:
                return level
        for spec in self.modules:
            if spec.check_location is not CheckLocation.POLICY_ONLY:
                continue
            if not self._responsible(spec, session):
                continue
            if spec.raw_event_stream or spec.traffic_filter.matches_session(session):
                required = self._required_level(spec)
                if required.value > level.value:
                    level = required
                if level is TrackingLevel.FULL:
                    return level
        return level

    # -- main loop -----------------------------------------------------------
    def process_sessions(self, sessions: Sequence[Session]) -> InstanceReport:
        """Run the instance over a node trace and account its resources."""
        cost = self.cost
        coordinated = self.mode is not BroMode.UNMODIFIED
        usage = ResourceUsage(mem_bytes=float(cost.process_base_bytes))
        module_cpu: Dict[str, float] = {spec.name: 0.0 for spec in self.modules}
        module_items: Dict[str, Set[int]] = {spec.name: set() for spec in self.modules}
        module_sessions: Dict[str, int] = {spec.name: 0 for spec in self.modules}
        tracked_connections = 0
        light_connections = 0
        started = time.perf_counter()
        cache_before = (0, 0, 0)
        if self.dispatcher is not None:
            cache_before = (
                self.dispatcher.cache_hits,
                self.dispatcher.cache_misses,
                self.dispatcher.batch_hashes,
            )

        batch_sampled = None
        if coordinated and self.batch_dispatch and len(sessions) > 1:
            assert self.dispatcher is not None
            batch_sampled = self.dispatcher.sampled_modules_batch(sessions)

        for position, session in enumerate(sessions):
            pkts = session.num_packets
            usage.cpu += cost.capture_cost * pkts

            if batch_sampled is not None:
                sampled_specs = batch_sampled[position]
            elif coordinated:
                sampled_specs = [
                    spec for spec in self.modules if self._sampled(spec, session)
                ]
            else:
                sampled_specs = [
                    spec
                    for spec in self.modules
                    if spec.traffic_filter.matches_session(session)
                ]

            level = self._tracking_level(session, sampled_specs)
            tracked = level is not TrackingLevel.NONE
            if level is TrackingLevel.FULL:
                tracked_connections += 1
                usage.cpu += cost.base_conn_packet_cost * pkts
                usage.mem_bytes += cost.conn_record_bytes
                if coordinated:
                    usage.cpu += cost.hash_compute_cost
                    usage.mem_bytes += cost.hash_fields_bytes
            elif level is TrackingLevel.LIGHT:
                light_connections += 1
                usage.cpu += cost.light_conn_cost + cost.hash_compute_cost
                usage.mem_bytes += cost.light_record_bytes

            if coordinated:
                usage.cpu += self._check_costs(session, tracked)

            for spec in sampled_specs:
                work = spec.session_cpu(session)
                usage.cpu += work
                module_cpu[spec.name] += work
                module_items[spec.name].add(spec.item_key(session))
                module_sessions[spec.name] += 1
                detector = self.detectors.get(spec.name)
                if detector is not None:
                    detector.on_session(session)

        item_counts: Dict[str, int] = {}
        for spec in self.modules:
            count = len(module_items[spec.name])
            item_counts[spec.name] = count
            usage.mem_bytes += count * spec.mem_bytes_per_item

        alerts: List[Alert] = []
        for detector in self.detectors.values():
            alerts.extend(detector.alerts)

        self._record_trace(
            sessions,
            started,
            tracked_connections,
            light_connections,
            module_sessions,
            cache_before,
        )

        return InstanceReport(
            node=self.node,
            mode=self.mode,
            usage=usage,
            tracked_connections=tracked_connections,
            module_cpu=module_cpu,
            module_items=item_counts,
            alerts=alerts,
            light_connections=light_connections,
        )

    # -- telemetry ------------------------------------------------------------
    def _record_trace(
        self,
        sessions: Sequence[Session],
        started: float,
        tracked: int,
        light: int,
        module_sessions: Dict[str, int],
        cache_before: Tuple[int, int, int],
    ) -> None:
        """Record one trace run into the configured registry.

        Runs once per trace (never per session) so the instrumented
        engine stays within the telemetry overhead budget; under the
        default null registry the whole block is skipped.
        """
        registry = self.registry
        if not registry.enabled:
            return
        elapsed = time.perf_counter() - started
        node = self.node
        n = len(sessions)
        registry.counter(
            "dispatch_sessions_total",
            "sessions processed per node trace",
            labels=("node",),
        ).inc(n, node=node)
        registry.counter(
            "sessions_tracked_total",
            "sessions forcing a full connection record",
            labels=("node",),
        ).inc(tracked, node=node)
        registry.counter(
            "sessions_light_total",
            "sessions held as first-packet-only light records (Section 2.5)",
            labels=("node",),
        ).inc(light, node=node)
        registry.histogram(
            "engine_trace_seconds",
            "wall-clock seconds per node trace run",
            labels=("node",),
        ).observe(elapsed, node=node)
        if elapsed > 0.0:
            registry.gauge(
                "engine_sessions_per_second",
                "throughput of the most recent trace run",
                labels=("node",),
            ).set(n / elapsed, node=node)
        analyzed = registry.counter(
            "module_sessions_analyzed_total",
            "sessions each module analyzed at each node (Fig. 3 outcomes)",
            labels=("node", "module"),
        )
        for name, count in module_sessions.items():
            if count:
                analyzed.inc(count, node=node, module=name)
        if self.dispatcher is not None:
            hits0, misses0, batch0 = cache_before
            registry.counter(
                "hash_cache_hits_total",
                "scalar-path hash-cache hits",
                labels=("node",),
            ).inc(self.dispatcher.cache_hits - hits0, node=node)
            registry.counter(
                "hash_cache_misses_total",
                "scalar-path hash-cache misses",
                labels=("node",),
            ).inc(self.dispatcher.cache_misses - misses0, node=node)
            registry.counter(
                "hash_batch_computed_total",
                "hash values computed by the vectorized batch sweep",
                labels=("node",),
            ).inc(self.dispatcher.batch_hashes - batch0, node=node)

    # -- coordination-check accounting ----------------------------------------
    def _check_costs(self, session: Session, tracked: bool) -> float:
        """CPU cost of the coordination checks for one connection.

        Event-engine checks are charged per connection per configured
        module; policy-engine checks per event delivered to the policy
        script (raw-stream consumers receive one event per tracked
        connection; protocol modules one per derived protocol event).
        """
        cost = self.cost
        total = 0.0
        for spec in self.modules:
            if not self._responsible(spec, session):
                continue
            location = spec.check_location
            if location is CheckLocation.POLICY_ONLY:
                if not tracked:
                    continue
                if spec.raw_event_stream:
                    total += cost.policy_check_cost * spec.raw_events_per_conn
                elif spec.traffic_filter.matches_session(session):
                    total += cost.policy_check_cost * spec.policy_events(session)
            elif location is CheckLocation.EVENT_ONLY:
                if spec.traffic_filter.matches_session(session):
                    total += cost.event_check_cost
            else:  # EVENT_CAPABLE: placement depends on the approach
                if self.mode is BroMode.COORD_EVENT:
                    if spec.traffic_filter.matches_session(session):
                        total += cost.event_check_cost
                elif tracked and spec.traffic_filter.matches_session(session):
                    total += cost.policy_check_cost * spec.policy_events(session)
        return total

    def alert_keys(self) -> Set[Tuple[str, str]]:
        """Union of deduplicated alert identities across detectors."""
        keys: Set[Tuple[str, str]] = set()
        for detector in self.detectors.values():
            keys.update(detector.alert_keys())
        return keys
