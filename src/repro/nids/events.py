"""The event engine: packet streams into high-level events.

Bro "is logically divided into two parts: (1) an event engine that
converts a stream of packets into high-level events and (2) a
site-specific policy engine that operates on the event stream"
(paper Fig. 4).  :class:`EventEngine` implements part (1) at per-packet
granularity: it maintains the connection table, updates
:class:`~repro.nids.record.ConnectionRecord` state, and emits the
events the analysis modules subscribe to:

* ``NEW_CONNECTION`` — first packet of a connection;
* ``CONNECTION_ESTABLISHED`` — the responder answered;
* ``CONNECTION_FINISHED`` — FIN observed (state removal);
* ``PROTOCOL_DATA`` — payload-bearing packet of a matched application
  protocol (HTTP request lines, IRC messages, ...);
* ``SIGNATURE_MATCH`` — the signature engine matched a payload.

The per-packet pipeline is the fidelity reference: the session-granular
fast path in :mod:`repro.nids.engine` must agree with it on detection
output (asserted by the test suite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..traffic.packet import FiveTuple, Packet
from .record import ConnState, ConnectionRecord, record_key


class EventType(enum.Enum):
    """Event kinds produced by the engine."""

    NEW_CONNECTION = "new_connection"
    CONNECTION_ESTABLISHED = "connection_established"
    CONNECTION_FINISHED = "connection_finished"
    PROTOCOL_DATA = "protocol_data"
    SIGNATURE_MATCH = "signature_match"


@dataclass(frozen=True)
class Event:
    """One event delivered to the policy engine."""

    type: EventType
    record: ConnectionRecord
    packet: Optional[Packet] = None
    payload_tag: str = ""


class EventEngine:
    """Streaming packet-to-event conversion with connection tracking.

    ``coordinated=True`` models the paper's extension: hash fields are
    precomputed into each new connection record (Section 2.3).  The
    optional ``state_filter`` callback implements the early skip — it
    is consulted once per *new* connection and, when it returns False,
    no state is created and no events are generated for that
    connection (the approach-2 optimization).
    """

    def __init__(
        self,
        coordinated: bool = False,
        hash_seed: int = 0,
        state_filter=None,
    ):
        self.coordinated = coordinated
        self.hash_seed = hash_seed
        self.state_filter = state_filter
        self.connections: Dict[FiveTuple, ConnectionRecord] = {}
        self._skipped: set = set()
        self.packets_seen = 0
        self.packets_skipped = 0

    @property
    def num_connections(self) -> int:
        """Connections currently tracked."""
        return len(self.connections)

    def process(self, packet: Packet) -> List[Event]:
        """Feed one packet; return the events it generates (in order)."""
        self.packets_seen += 1
        key = record_key(packet)
        record = self.connections.get(key)
        events: List[Event] = []

        if record is None:
            if key in self._skipped:
                self.packets_skipped += 1
                return events
            if self.state_filter is not None and not self.state_filter(packet):
                self._skipped.add(key)
                self.packets_skipped += 1
                return events
            record = ConnectionRecord(orig=packet.tuple)
            if self.coordinated:
                record.compute_hashes(self.hash_seed)
            self.connections[key] = record
            record.update(packet)
            events.append(Event(EventType.NEW_CONNECTION, record, packet))
        else:
            was_attempt = record.state is ConnState.ATTEMPT
            record.update(packet)
            if was_attempt and record.state is ConnState.ESTABLISHED:
                events.append(
                    Event(EventType.CONNECTION_ESTABLISHED, record, packet)
                )

        if packet.payload_tag:
            events.append(
                Event(
                    EventType.SIGNATURE_MATCH,
                    record,
                    packet,
                    payload_tag=packet.payload_tag,
                )
            )
        if packet.size > 40:  # payload-bearing
            events.append(Event(EventType.PROTOCOL_DATA, record, packet))
        if record.state is ConnState.CLOSED and packet.is_fin:
            events.append(Event(EventType.CONNECTION_FINISHED, record, packet))
        return events

    def run(self, packets) -> Iterator[Event]:
        """Process a packet iterable, yielding events as they occur."""
        for packet in packets:
            for event in self.process(packet):
                yield event

    def finish(self) -> List[Event]:
        """End of trace: emit CONNECTION_FINISHED for connections that
        never closed (Bro's state-removal timeout)."""
        events = []
        for record in self.connections.values():
            if record.state is not ConnState.CLOSED:
                events.append(Event(EventType.CONNECTION_FINISHED, record))
        return events
