"""Single-vantage-point NIDS cluster baseline (paper §1).

The approach the paper argues against: "Approaches to scaling single-
vantage-point solutions have focused on building NIDS/NIPS clusters.
The cluster approach, however, faces its own challenges: since each
packet might be relevant to multiple analyses that may occur on
different nodes, these solutions need to replicate traffic across the
cluster or share the relevant analysis state."

:func:`emulate_cluster` models a Vallentin-et-al.-style cluster at one
chokepoint: a frontend hash-distributes connections across backend
workers.  Session-scoped analyses land cleanly on one worker, but
host-scoped analyses (scan per source, SYN-flood per destination)
aggregate across connections that hash to *different* workers, so the
cluster must either replicate those packets to the responsible worker
or forward per-connection state — the overhead term the paper cites.

This gives the third comparison point next to the edge-only and
coordinated deployments of :func:`repro.nids.run_emulation`: same
total analysis work, but concentrated at one location and inflated by
replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..hashing.bobhash import hash_unit
from ..hashing.keys import Aggregation
from ..traffic.session import Session
from .modules.base import ModuleSpec
from .resources import CostModel, DEFAULT_COST_MODEL, ResourceUsage

#: Cost of replicating one packet (or its derived state record) from
#: the worker that received it to the worker that needs it, in cpu
#: units — the inter-node communication the paper's intro cites.
REPLICATION_COST_PER_PACKET = 0.3


@dataclass
class ClusterReport:
    """Resource usage of a backend cluster at one chokepoint."""

    location: str
    num_workers: int
    worker_usage: List[ResourceUsage]
    replicated_packets: float
    total_packets: float
    frontend_cpu: float

    @property
    def max_worker_cpu(self) -> float:
        """Hottest backend worker's CPU footprint."""
        return max(u.cpu for u in self.worker_usage)

    @property
    def max_worker_mem_bytes(self) -> float:
        """Hottest backend worker's memory footprint."""
        return max(u.mem_bytes for u in self.worker_usage)

    @property
    def total_cpu(self) -> float:
        """Frontend plus all workers (replication included)."""
        return self.frontend_cpu + sum(u.cpu for u in self.worker_usage)

    @property
    def replication_fraction(self) -> float:
        """Replicated packets as a share of all analyzed packets."""
        if self.total_packets <= 0:
            return 0.0
        return self.replicated_packets / self.total_packets


def _worker_of(value_key: bytes, num_workers: int, seed: int = 0) -> int:
    return int(hash_unit(value_key, seed) * num_workers) % num_workers


def emulate_cluster(
    location: str,
    sessions: Sequence[Session],
    modules: Sequence[ModuleSpec],
    num_workers: int,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    hash_seed: int = 0,
) -> ClusterReport:
    """Emulate an n-worker cluster analyzing *sessions* at one point.

    The frontend hashes each connection (bidirectional 5-tuple) to a
    worker, which performs baseline processing and all session-scoped
    analyses locally.  For each host-scoped module, connections whose
    *aggregation key* (source or destination) hashes to a different
    worker are replicated there, costing
    :data:`REPLICATION_COST_PER_PACKET` per packet on both ends plus a
    duplicate connection record at the receiving worker.
    """
    if num_workers < 1:
        raise ValueError("cluster needs at least one worker")
    workers = [
        ResourceUsage(mem_bytes=float(cost_model.process_base_bytes))
        for _ in range(num_workers)
    ]
    module_items: List[Dict[str, Set[int]]] = [
        {spec.name: set() for spec in modules} for _ in range(num_workers)
    ]
    replicated_packets = 0.0
    total_packets = 0.0
    frontend_cpu = 0.0

    host_scoped = [
        spec
        for spec in modules
        if spec.aggregation in (Aggregation.SOURCE, Aggregation.DESTINATION)
    ]
    session_scoped = [spec for spec in modules if spec not in host_scoped]

    for session in sessions:
        pkts = session.num_packets
        total_packets += pkts
        frontend_cpu += cost_model.capture_cost * pkts  # frontend sees all

        home = _worker_of(session.tuple.session_key(), num_workers, hash_seed)
        usage = workers[home]
        usage.cpu += cost_model.base_conn_packet_cost * pkts
        usage.mem_bytes += cost_model.conn_record_bytes

        for spec in session_scoped:
            if not spec.traffic_filter.matches_session(session):
                continue
            usage.cpu += spec.session_cpu(session)
            module_items[home][spec.name].add(spec.item_key(session))

        # One replication per distinct foreign owner suffices even when
        # several host-scoped modules share it.
        replicated_to: Set[int] = set()
        for spec in host_scoped:
            if not spec.traffic_filter.matches_session(session):
                continue
            owner = _worker_of(
                spec.item_key(session).to_bytes(8, "big"), num_workers, hash_seed + 1
            )
            if owner != home and owner not in replicated_to:
                # Replicate the connection's packets (or state) to the
                # aggregation owner: cost at both sender and receiver,
                # plus a duplicate record at the owner.
                replicated_to.add(owner)
                replicated_packets += pkts
                workers[home].cpu += REPLICATION_COST_PER_PACKET * pkts
                workers[owner].cpu += REPLICATION_COST_PER_PACKET * pkts
                workers[owner].mem_bytes += cost_model.conn_record_bytes
            workers[owner].cpu += spec.session_cpu(session)
            module_items[owner][spec.name].add(spec.item_key(session))

    for index, items in enumerate(module_items):
        for spec in modules:
            workers[index].mem_bytes += (
                len(items[spec.name]) * spec.mem_bytes_per_item
            )

    return ClusterReport(
        location=location,
        num_workers=num_workers,
        worker_usage=workers,
        replicated_packets=replicated_packets,
        total_packets=total_packets,
        frontend_cpu=frontend_cpu,
    )


def cluster_size_for_target(
    location: str,
    sessions: Sequence[Session],
    modules: Sequence[ModuleSpec],
    target_cpu: float,
    max_workers: int = 64,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Optional[int]:
    """Smallest cluster whose hottest worker stays under *target_cpu*.

    Quantifies the provisioning question the paper's approach sidesteps:
    how much hardware must be added *at the chokepoint* to match what
    network-wide coordination achieves with the existing boxes.
    Returns ``None`` if even *max_workers* cannot meet the target
    (replication overhead does not shrink with the cluster).
    """
    for num_workers in range(1, max_workers + 1):
        report = emulate_cluster(
            location, sessions, modules, num_workers, cost_model
        )
        if report.max_worker_cpu <= target_cpu:
            return num_workers
    return None
