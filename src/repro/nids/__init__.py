"""Bro-architecture NIDS simulator substrate.

Engine and emulation symbols are loaded lazily (PEP 562): they depend
on :mod:`repro.core`, which itself depends on the module specs defined
here, and the lazy indirection keeps the import graph acyclic.
"""

from .modules import (
    Alert,
    CheckLocation,
    Detector,
    ModuleSpec,
    STANDARD_MODULES,
    Scope,
    TrafficFilter,
    make_detector,
    module_by_name,
    module_set,
)
from .resources import CostModel, DEFAULT_COST_MODEL, ResourceUsage

_LAZY_EXPORTS = {
    "BroInstance": ("repro.nids.engine", "BroInstance"),
    "BroMode": ("repro.nids.engine", "BroMode"),
    "EmulationConfig": ("repro.nids.engine", "EmulationConfig"),
    "ExecutionMode": ("repro.nids.engine", "ExecutionMode"),
    "ExecutionPolicy": ("repro.nids.engine", "ExecutionPolicy"),
    "InstanceReport": ("repro.nids.engine", "InstanceReport"),
    "PartialInstanceReport": ("repro.nids.engine", "PartialInstanceReport"),
    "ComparisonRow": ("repro.nids.emulation", "ComparisonRow"),
    "DeploymentUsage": ("repro.nids.emulation", "DeploymentUsage"),
    "Traffic": ("repro.nids.emulation", "Traffic"),
    "run_emulation": ("repro.nids.emulation", "run_emulation"),
    "run_sharded": ("repro.nids.shard", "run_sharded"),
    "compare_deployments": ("repro.nids.emulation", "compare_deployments"),
    "emulate_coordinated": ("repro.nids.emulation", "emulate_coordinated"),
    "emulate_coordinated_stream": ("repro.nids.emulation", "emulate_coordinated_stream"),
    "emulate_edge": ("repro.nids.emulation", "emulate_edge"),
    "emulate_edge_stream": ("repro.nids.emulation", "emulate_edge_stream"),
    "run_microbenchmark": ("repro.nids.microbench", "run_microbenchmark"),
    "format_microbench_table": ("repro.nids.microbench", "format_microbench_table"),
    "MicrobenchRow": ("repro.nids.microbench", "MicrobenchRow"),
    "EventEngine": ("repro.nids.events", "EventEngine"),
    "Event": ("repro.nids.events", "Event"),
    "EventType": ("repro.nids.events", "EventType"),
    "ConnectionRecord": ("repro.nids.record", "ConnectionRecord"),
    "ConnState": ("repro.nids.record", "ConnState"),
    "PacketPipeline": ("repro.nids.pipeline", "PacketPipeline"),
    "PipelineFindings": ("repro.nids.pipeline", "PipelineFindings"),
    "TrackingLevel": ("repro.nids.engine", "TrackingLevel"),
    "ClusterReport": ("repro.nids.cluster", "ClusterReport"),
    "emulate_cluster": ("repro.nids.cluster", "emulate_cluster"),
    "cluster_size_for_target": ("repro.nids.cluster", "cluster_size_for_target"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "Alert",
    "ClusterReport",
    "cluster_size_for_target",
    "emulate_cluster",
    "ConnState",
    "ConnectionRecord",
    "Event",
    "EventEngine",
    "EventType",
    "PacketPipeline",
    "PipelineFindings",
    "TrackingLevel",
    "BroInstance",
    "BroMode",
    "CheckLocation",
    "ComparisonRow",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DeploymentUsage",
    "Detector",
    "EmulationConfig",
    "ExecutionMode",
    "ExecutionPolicy",
    "InstanceReport",
    "PartialInstanceReport",
    "Traffic",
    "MicrobenchRow",
    "ModuleSpec",
    "ResourceUsage",
    "STANDARD_MODULES",
    "Scope",
    "TrafficFilter",
    "compare_deployments",
    "emulate_coordinated",
    "emulate_coordinated_stream",
    "emulate_edge",
    "emulate_edge_stream",
    "format_microbench_table",
    "make_detector",
    "module_by_name",
    "module_set",
    "run_emulation",
    "run_microbenchmark",
    "run_sharded",
]
