"""Connection records (paper Section 2.3).

Bro "maintains a connection record for each end-to-end session which is
generated in the event engine and carried into the policy engine"; the
paper's extension adds "hashes of different combinations of the
connection fields" to the record so policy scripts can perform
coordination checks with a lookup instead of recomputation.

:class:`ConnectionRecord` models exactly that: orientation (originator
vs. responder), state machine, byte/packet counters, and — when built
by a coordination-enabled engine — the precomputed per-aggregation
hash fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from ..hashing.bobhash import hash_unit
from ..hashing.keys import Aggregation, RECORD_HASH_FIELDS, key_for
from ..traffic.packet import FiveTuple, Packet, TCP


class ConnState(enum.Enum):
    """Connection life-cycle states (simplified Bro model)."""

    ATTEMPT = "attempt"  # SYN seen, no reply
    ESTABLISHED = "established"
    CLOSED = "closed"


@dataclass
class ConnectionRecord:
    """Per-connection state carried from event engine to policy engine."""

    orig: FiveTuple  # originator-oriented 5-tuple
    state: ConnState = ConnState.ATTEMPT
    orig_packets: int = 0
    resp_packets: int = 0
    orig_bytes: int = 0
    resp_bytes: int = 0
    first_timestamp: float = 0.0
    last_timestamp: float = 0.0
    #: Precomputed hash fields (the paper's extension); empty for an
    #: unmodified engine.
    hashes: Dict[Aggregation, float] = field(default_factory=dict)

    @property
    def total_packets(self) -> int:
        """Packets in both directions."""
        return self.orig_packets + self.resp_packets

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.orig_bytes + self.resp_bytes

    @property
    def half_open(self) -> bool:
        """Never progressed past the initial attempt."""
        return self.state is ConnState.ATTEMPT

    def is_originator(self, packet: Packet) -> bool:
        """Whether *packet* travels in the originator's direction."""
        return packet.tuple.src == self.orig.src

    def update(self, packet: Packet) -> None:
        """Fold one packet into the record's counters and state."""
        if self.total_packets == 0:
            self.first_timestamp = packet.timestamp
        self.last_timestamp = packet.timestamp
        if self.is_originator(packet):
            self.orig_packets += 1
            self.orig_bytes += packet.size
        else:
            self.resp_packets += 1
            self.resp_bytes += packet.size
            if self.state is ConnState.ATTEMPT:
                self.state = ConnState.ESTABLISHED
        if packet.is_fin and self.state is ConnState.ESTABLISHED:
            self.state = ConnState.CLOSED

    def compute_hashes(self, seed: int = 0) -> None:
        """Populate the coordination hash fields (Section 2.3).

        Computed once at record creation, oriented by the originator
        tuple, so every later policy-stage check is a table lookup.
        """
        t = self.orig
        for aggregation in RECORD_HASH_FIELDS:
            key = key_for(aggregation, t.src, t.dst, t.sport, t.dport, t.proto)
            self.hashes[aggregation] = hash_unit(key, seed)

    def hash_for(self, aggregation: Aggregation, seed: int = 0) -> float:
        """The record's hash for *aggregation*, computing lazily if the
        engine did not precompute (unmodified-Bro path)."""
        value = self.hashes.get(aggregation)
        if value is None:
            t = self.orig
            key = key_for(aggregation, t.src, t.dst, t.sport, t.dport, t.proto)
            value = hash_unit(key, seed)
        return value


def record_key(packet: Packet) -> FiveTuple:
    """The canonical (direction-independent) connection table key."""
    return packet.tuple.canonical()
