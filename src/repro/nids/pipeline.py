"""Per-packet analysis pipeline (fidelity reference).

Wires the :class:`~repro.nids.events.EventEngine` to per-module policy
handlers, with coordination checks performed against a node manifest
using the connection record's precomputed hash fields — the full
Fig. 4 architecture at packet granularity.

The session-granular engine in :mod:`repro.nids.engine` is the fast
path used by the network-wide benchmarks; this pipeline is the slow,
high-fidelity reference the test suite cross-validates it against:
both must identify the same scanners, the same flooded destinations,
and the same signature-bearing connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from ..core.manifest import NodeManifest, full_manifest
from ..core.units import UnitKey
from ..hashing.keys import Aggregation
from ..traffic.generator import home_node_index
from ..traffic.packet import Packet
from .events import Event, EventEngine, EventType
from .modules.base import ModuleSpec, Scope
from .modules.signature import DEFAULT_SIGNATURES
from .record import ConnectionRecord


@dataclass
class PipelineFindings:
    """Detection output of one per-packet pipeline run."""

    scanners: Set[int] = field(default_factory=set)
    flooded_destinations: Set[int] = field(default_factory=set)
    signature_connections: Set[Tuple] = field(default_factory=set)
    connections_tracked: int = 0
    packets_processed: int = 0


class PacketPipeline:
    """Event engine + policy handlers + coordination checks."""

    def __init__(
        self,
        node_names: Sequence[str],
        modules: Sequence[ModuleSpec],
        manifest: Optional[NodeManifest] = None,
        scan_threshold: int = 12,
        flood_threshold: int = 15,
        hash_seed: int = 0,
    ):
        self.node_names = list(node_names)
        self.modules = {spec.name.split("#", 1)[0]: spec for spec in modules}
        self.manifest = manifest or full_manifest("standalone")
        self.scan_threshold = scan_threshold
        self.flood_threshold = flood_threshold
        self.hash_seed = hash_seed
        self.engine = EventEngine(coordinated=True, hash_seed=hash_seed)
        self._scan_fanout: Dict[int, Set[int]] = {}
        self._flood_counts: Dict[int, int] = {}
        self.findings = PipelineFindings()

    # -- coordination -----------------------------------------------------
    def _unit_for(self, spec: ModuleSpec, record: ConnectionRecord) -> UnitKey:
        src_home = self.node_names[home_node_index(record.orig.src)]
        dst_home = self.node_names[home_node_index(record.orig.dst)]
        if spec.scope is Scope.PATH:
            return tuple(sorted((src_home, dst_home)))
        if spec.scope is Scope.INGRESS:
            return (src_home,)
        return (dst_home,)

    def _sampled(self, spec: ModuleSpec, record: ConnectionRecord) -> bool:
        """The Fig. 3 check, via the record's precomputed hash field."""
        unit = self._unit_for(spec, record)
        hash_value = record.hash_for(spec.aggregation, self.hash_seed)
        return self.manifest.contains(spec.name, unit, hash_value)

    # -- policy handlers ------------------------------------------------------
    def _on_new_connection(self, event: Event) -> None:
        record = event.record
        scan = self.modules.get("scan")
        if scan is not None and self._sampled(scan, record):
            fanout = self._scan_fanout.setdefault(record.orig.src, set())
            fanout.add(record.orig.dst)
            if len(fanout) >= self.scan_threshold:
                self.findings.scanners.add(record.orig.src)

    def _on_connection_finished(self, event: Event) -> None:
        record = event.record
        synflood = self.modules.get("synflood")
        if synflood is not None and record.half_open and self._sampled(synflood, record):
            count = self._flood_counts.get(record.orig.dst, 0) + 1
            self._flood_counts[record.orig.dst] = count
            if count >= self.flood_threshold:
                self.findings.flooded_destinations.add(record.orig.dst)

    def _on_signature_match(self, event: Event) -> None:
        record = event.record
        signature = self.modules.get("signature")
        if (
            signature is not None
            and event.payload_tag in DEFAULT_SIGNATURES
            and self._sampled(signature, record)
        ):
            self.findings.signature_connections.add(
                (
                    record.orig.src,
                    record.orig.dst,
                    record.orig.sport,
                    record.orig.dport,
                )
            )

    _HANDLERS = {
        EventType.NEW_CONNECTION: "_on_new_connection",
        EventType.CONNECTION_FINISHED: "_on_connection_finished",
        EventType.SIGNATURE_MATCH: "_on_signature_match",
    }

    # -- driving -----------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Feed one packet through engine and policy handlers."""
        self.findings.packets_processed += 1
        for event in self.engine.process(packet):
            self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        handler_name = self._HANDLERS.get(event.type)
        if handler_name is not None:
            getattr(self, handler_name)(event)

    def run(self, packets) -> PipelineFindings:
        """Process a packet stream to completion and return findings."""
        for packet in packets:
            self.process_packet(packet)
        for event in self.engine.finish():
            self._dispatch(event)
        self.findings.connections_tracked = self.engine.num_connections
        return self.findings
