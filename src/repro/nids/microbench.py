"""Standalone microbenchmarks (paper Section 2.4, Fig. 5).

Runs each analysis module in isolation over a mixed single-node trace
in three configurations — unmodified Bro, coordination checks in the
policy engine (approach 1), and coordination checks as early as
possible (approach 2) — with a sampling manifest covering all traffic,
and reports the CPU and memory overheads of the coordination
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dispatch import CoordinatedDispatcher, UnitResolver
from ..core.manifest import full_manifest
from ..topology.datasets import internet2
from ..topology.routing import PathSet
from ..traffic.generator import GeneratorConfig, TrafficGenerator
from ..traffic.profiles import mixed_profile
from ..traffic.session import Session
from .engine import BroInstance, BroMode, EmulationConfig
from .modules.base import ModuleSpec
from .modules.catalog import STANDARD_MODULES
from .resources import CostModel, DEFAULT_COST_MODEL

#: Fig. 5's x-axis order.
MICROBENCH_ORDER: Tuple[str, ...] = (
    "baseline",
    "scan",
    "irc",
    "login",
    "tftp",
    "http",
    "blaster",
    "signature",
    "synflood",
)


@dataclass
class OverheadStats:
    """Mean/min/max of a relative overhead across runs."""

    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "OverheadStats":
        """Aggregate mean/min/max over per-run samples."""
        return cls(sum(values) / len(values), min(values), max(values))


@dataclass
class MicrobenchRow:
    """Fig. 5 measurements for one module configuration."""

    module: str
    cpu_policy: OverheadStats
    cpu_event: OverheadStats
    mem_policy: OverheadStats
    mem_event: OverheadStats


def _standalone_trace(num_sessions: int, seed: int) -> List[Session]:
    """A mixed trace as seen by one standalone node."""
    topology = internet2()
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology,
        paths,
        profile=mixed_profile(),
        config=GeneratorConfig(seed=seed),
    )
    return generator.generate(num_sessions)


def _run_configuration(
    modules: List[ModuleSpec],
    sessions: Sequence[Session],
    mode: BroMode,
    cost_model: CostModel,
) -> Tuple[float, float]:
    """CPU and memory footprint of one instance configuration."""
    node = "standalone"
    dispatcher: Optional[CoordinatedDispatcher] = None
    if mode is not BroMode.UNMODIFIED:
        dispatcher = CoordinatedDispatcher(
            node=node,
            manifest=full_manifest(node),
            modules=modules,
            resolver=UnitResolver(internet2().node_names),
        )
    instance = BroInstance(
        node=node,
        modules=modules,
        mode=mode,
        dispatcher=dispatcher,
        config=EmulationConfig(cost_model=cost_model),
    )
    report = instance.process_sessions(sessions)
    return report.cpu, report.mem_bytes


def run_microbenchmark(
    num_sessions: int = 100_000,
    runs: int = 5,
    base_seed: int = 100,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    modules: Sequence[ModuleSpec] = tuple(STANDARD_MODULES),
) -> List[MicrobenchRow]:
    """Reproduce Fig. 5: per-module coordination overheads.

    Each run uses a fresh trace seed (the paper performs 5 runs and
    reports mean/min/max).  The "baseline" row is the bare engine with
    no analysis modules — its overhead isolates the cost of computing
    and storing the connection-record hashes.
    """
    by_name: Dict[str, Optional[ModuleSpec]] = {"baseline": None}
    for spec in modules:
        by_name[spec.name] = spec

    samples: Dict[str, Dict[str, List[float]]] = {
        name: {"cpu_policy": [], "cpu_event": [], "mem_policy": [], "mem_event": []}
        for name in by_name
    }

    for run in range(runs):
        sessions = _standalone_trace(num_sessions, seed=base_seed + run)
        for name, spec in by_name.items():
            isolated = [spec] if spec is not None else []
            cpu_unmod, mem_unmod = _run_configuration(
                isolated, sessions, BroMode.UNMODIFIED, cost_model
            )
            cpu_policy, mem_policy = _run_configuration(
                isolated, sessions, BroMode.COORD_POLICY, cost_model
            )
            cpu_event, mem_event = _run_configuration(
                isolated, sessions, BroMode.COORD_EVENT, cost_model
            )
            samples[name]["cpu_policy"].append(cpu_policy / cpu_unmod - 1.0)
            samples[name]["cpu_event"].append(cpu_event / cpu_unmod - 1.0)
            samples[name]["mem_policy"].append(mem_policy / mem_unmod - 1.0)
            samples[name]["mem_event"].append(mem_event / mem_unmod - 1.0)

    rows = []
    for name in MICROBENCH_ORDER:
        if name not in samples:
            continue
        data = samples[name]
        rows.append(
            MicrobenchRow(
                module=name,
                cpu_policy=OverheadStats.of(data["cpu_policy"]),
                cpu_event=OverheadStats.of(data["cpu_event"]),
                mem_policy=OverheadStats.of(data["mem_policy"]),
                mem_event=OverheadStats.of(data["mem_event"]),
            )
        )
    return rows


def format_microbench_table(rows: Sequence[MicrobenchRow]) -> str:
    """Render Fig. 5 as an aligned text table."""
    header = (
        f"{'module':<10} {'cpu(policy)':>12} {'cpu(event)':>12}"
        f" {'mem(policy)':>12} {'mem(event)':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.module:<10} {row.cpu_policy.mean:>11.1%} {row.cpu_event.mean:>11.1%}"
            f" {row.mem_policy.mean:>11.1%} {row.mem_event.mean:>11.1%}"
        )
    return "\n".join(lines)
