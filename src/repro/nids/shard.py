"""Intra-scenario sharded emulation (process-level parallelism).

:mod:`repro.sweep` parallelizes *across* scenario cells; this module
parallelizes *inside* one heavy emulation run.  The paper's own
argument makes this safe: NIDS work partitions across vantage points
with no loss of fidelity, and our accounting layer already proved the
engine-side analogue — :class:`~repro.nids.engine.PartialInstanceReport`
merges exactly (order-independent counters, ``ExactSum`` CPU
accumulators, unioned distinct-key arrays) and pickles loss-free.

The execution shape follows the sweep executor we already trust:

* the trace is split per node (the paper's Section 2.4 trace
  construction), and hot node traces are further split into
  ``chunk_size`` shards — the per-routing-pair refinement collapses to
  this, because any contiguous re-chunking merges exactly;
* each shard runs in a **spawn-safe** ``ProcessPoolExecutor`` worker
  (:func:`run_shard_payload`: module-level, dict in / dict out,
  shared-nothing — coordinated workers rebuild their dispatcher from
  the node's manifest rather than inheriting live state);
* the parent merges the returned partials per node and finalizes,
  which is **bit-identical** (float-hex comparable) to the inline,
  streamed, and batch paths by construction;
* wall-clock metric families (``*_seconds`` / ``*_per_second``) are
  excluded from the merged telemetry, exactly as the sweep report
  layer does, so a live registry never breaks report determinism.

Nested sharding is guarded: a run that already executes inside a
worker process (a sweep cell, or a shard worker itself) falls back to
inline execution and counts ``engine_shard_fallback_total`` — spawning
a pool per worker would oversubscribe the host and can deadlock
constrained executors.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dispatch import CoordinatedDispatcher, UnitResolver
from ..core.manifest import NodeManifest
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..traffic.session import Session
from .engine import (
    BroInstance,
    BroMode,
    EmulationConfig,
    ExecutionPolicy,
    InstanceReport,
    PartialInstanceReport,
)
from .modules.base import Alert, ModuleSpec

#: Metric-family suffixes excluded from merged worker telemetry — the
#: same wall-clock exclusion discipline as ``repro.sweep.report``,
#: applied at the shard boundary so merged snapshots stay identical
#: across worker counts and runs.
NONDETERMINISTIC_SUFFIXES: Tuple[str, ...] = ("_seconds", "_per_second")

#: Environment override forcing inline fallback (useful for tests and
#: for operators running under an outer scheduler the guard cannot see).
FORCE_INLINE_ENV = "REPRO_SHARD_INLINE"


def in_worker_process() -> bool:
    """Whether this process already runs inside another worker pool.

    ``multiprocessing.parent_process()`` is non-``None`` in any child
    started by :mod:`multiprocessing` — sweep-cell workers and shard
    workers alike — which is exactly the oversubscription case: every
    such child spawning its own pool would multiply the process count
    by the job factor.  The :data:`FORCE_INLINE_ENV` variable extends
    the guard to externally managed workers.
    """
    if os.environ.get(FORCE_INLINE_ENV):
        return True
    return multiprocessing.parent_process() is not None


def plan_shards(
    traces: Dict[str, List[Session]],
    chunk_size: int,
    allow_chunking: bool,
) -> List[Tuple[str, List[Session]]]:
    """Split per-node traces into shard work items.

    Every node with traffic yields at least one shard; nodes hotter
    than *chunk_size* sessions are split into contiguous chunks (exact
    under merge, so the cut points are free to choose).  When
    *allow_chunking* is off — behavioural detectors are stateful across
    a node's whole trace — each node stays a single shard, preserving
    the sequential alert stream per node.
    """
    shards: List[Tuple[str, List[Session]]] = []
    for node, trace in traces.items():
        if not trace:
            continue
        if not allow_chunking or len(trace) <= chunk_size:
            shards.append((node, trace))
            continue
        for start in range(0, len(trace), chunk_size):
            shards.append((node, trace[start : start + chunk_size]))
    return shards


def _worker_config(config: EmulationConfig) -> EmulationConfig:
    """The config a shard worker runs under.

    The live registry must not cross the process boundary (workers
    report snapshots instead), and the policy is reset so nothing in a
    worker ever consults the sharded mode again.
    """
    return replace(config, registry=NULL_REGISTRY, policy=ExecutionPolicy())


def run_shard_payload(payload: dict) -> dict:
    """Process-pool entry point: one shard, dict in / dict out.

    Spawn-safe: module-level, no inherited state.  A coordinated shard
    rebuilds its node's dispatcher from the manifest, module specs, and
    hash seed (a fresh per-worker hash cache — hash values depend only
    on header fields, so decisions are identical to the parent's).
    The returned dict carries the shard's loss-free partial report,
    any detector alerts (in detector order, matching the sequential
    :meth:`~repro.nids.engine.BroInstance.finalize_partial` append
    order), and — when the parent runs a live registry — the worker's
    telemetry snapshot for deterministic merging.
    """
    node: str = payload["node"]
    mode = BroMode(payload["mode"])
    config: EmulationConfig = payload["config"]
    modules: Sequence[ModuleSpec] = payload["modules"]
    registry = MetricsRegistry() if payload["collect_metrics"] else NULL_REGISTRY
    dispatcher = None
    if mode is not BroMode.UNMODIFIED:
        dispatcher = CoordinatedDispatcher(
            node=node,
            manifest=payload["manifest"],
            modules=modules,
            resolver=UnitResolver(payload["node_names"]),
            hash_seed=payload["hash_seed"],
        )
    instance = BroInstance(
        node=node,
        modules=modules,
        mode=mode,
        dispatcher=dispatcher,
        config=replace(config, registry=registry),
    )
    partial = instance.process_sessions_partial(payload["sessions"])
    alerts: List[dict] = []
    for detector in instance.detectors.values():
        alerts.extend(alert.to_dict() for alert in detector.alerts)
    return {
        "shard_id": payload["shard_id"],
        "node": node,
        "partial": partial.to_dict(),
        "alerts": alerts,
        "metrics": registry.snapshot() if payload["collect_metrics"] else None,
    }


def _filtered_snapshot(snapshot: dict) -> dict:
    """Drop wall-clock families from a worker snapshot before merging."""
    kept = {
        name: entry
        for name, entry in snapshot["metrics"].items()
        if not name.endswith(NONDETERMINISTIC_SUFFIXES)
    }
    return {"version": snapshot["version"], "metrics": kept}


def run_sharded(
    label: str,
    traces: Dict[str, List[Session]],
    modules: Sequence[ModuleSpec],
    mode: BroMode,
    config: EmulationConfig,
    node_names: Sequence[str],
    manifests: Optional[Dict[str, NodeManifest]] = None,
    hash_seed: int = 0,
) -> "DeploymentUsage":
    """Fan per-node trace shards out to a spawn pool and merge exactly.

    *traces* is the Section 2.4 per-node split (edge or transit);
    coordinated runs (*mode* not ``UNMODIFIED``) need *manifests* and
    *hash_seed* so workers can rebuild dispatchers.  The merged
    :class:`~repro.nids.emulation.DeploymentUsage` is bit-identical to
    the inline run over the same traces for every worker count and
    every ``chunk_size``.
    """
    from concurrent.futures import ProcessPoolExecutor

    from .emulation import DeploymentUsage

    policy = config.policy
    coordinated = mode is not BroMode.UNMODIFIED
    if coordinated and manifests is None:
        raise ValueError("coordinated sharded runs need per-node manifests")
    registry = config.registry
    collect_metrics = registry.enabled
    # Detectors are stateful across a node's trace: keep one shard per
    # node so each worker sees the node's full sequential stream.
    shards = plan_shards(
        traces, policy.chunk_size, allow_chunking=not config.run_detectors
    )
    jobs = policy.jobs or os.cpu_count() or 1
    worker_config = _worker_config(config)
    payloads = [
        {
            "shard_id": shard_id,
            "node": node,
            "mode": mode.value,
            "sessions": sessions,
            "modules": list(modules),
            "manifest": manifests[node] if coordinated and manifests else None,
            "node_names": tuple(node_names),
            "hash_seed": hash_seed,
            "config": worker_config,
            "collect_metrics": collect_metrics,
        }
        for shard_id, (node, sessions) in enumerate(shards)
    ]
    registry.counter(
        "engine_shard_tasks_total",
        "shard work items dispatched to emulation workers",
    ).inc(len(payloads))
    registry.counter(
        "engine_shard_sessions_total",
        "sessions shipped to sharded emulation workers",
    ).inc(sum(len(sessions) for _, sessions in shards))
    results: List[dict] = []
    if payloads:
        workers = min(jobs, len(payloads))
        registry.gauge(
            "engine_shard_workers",
            "worker processes used by the most recent sharded emulation",
        ).set(workers)
        context = multiprocessing.get_context(policy.mp_context)
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            results = list(pool.map(run_shard_payload, payloads, chunksize=1))
    # Merge in shard-id order: the accounting is order-independent, but
    # a fixed order keeps gauge last-merge-wins telemetry deterministic.
    results.sort(key=lambda result: result["shard_id"])
    partials: Dict[str, PartialInstanceReport] = {}
    alerts: Dict[str, List[Alert]] = {}
    for result in results:
        node = result["node"]
        partial = PartialInstanceReport.from_dict(result["partial"])
        held = partials.get(node)
        if held is None:
            partials[node] = partial
        else:
            held.merge(partial)
        alerts.setdefault(node, []).extend(
            Alert.from_dict(alert) for alert in result["alerts"]
        )
        if collect_metrics and result["metrics"] is not None:
            registry.merge_from(_filtered_snapshot(result["metrics"]))
    module_names = [spec.name for spec in modules]
    reports: Dict[str, InstanceReport] = {}
    for node in traces:
        partial = partials.get(node) or PartialInstanceReport.empty(
            node, mode, module_names
        )
        report = partial.finalize(modules, config.cost_model)
        report.alerts.extend(alerts.get(node, ()))
        reports[node] = report
    return DeploymentUsage(label=label, reports=reports)
