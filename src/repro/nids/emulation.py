"""Network-wide deployment emulation (paper Section 2.4).

Reproduces the paper's methodology: "From a network-wide trace, we
generate traces that each node sees.  For the coordinated case, this
includes both traffic originating/terminating at a node and transit
traffic.  For the edge-only case, these consist of traffic
originating/terminating at each node."  Each node's trace is then run
through a simulated Bro instance — unmodified for the edge-only
deployment, coordination-enabled (approach 2, checks as early as
possible) for the coordinated deployment — and per-node CPU and memory
footprints are reported.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..core.nids_deployment import NIDSDeployment
from ..obs import MetricsRegistry
from ..traffic.generator import TrafficGenerator
from ..traffic.session import Session
from .engine import (
    _UNSET,
    _resolve_config,
    BroInstance,
    BroMode,
    EmulationConfig,
    ExecutionMode,
    InstanceReport,
    PartialInstanceReport,
)
from .modules.base import Alert, ModuleSpec


@dataclass
class DeploymentUsage:
    """Per-node resource footprints for one deployment style."""

    label: str
    reports: Dict[str, InstanceReport]

    @property
    def nodes(self) -> List[str]:
        """Node names covered by this deployment run."""
        return list(self.reports)

    def cpu(self, node: str) -> float:
        """CPU footprint of *node*."""
        return self.reports[node].cpu

    def mem_bytes(self, node: str) -> float:
        """Memory footprint of *node* in bytes."""
        return self.reports[node].mem_bytes

    def mem_mb(self, node: str) -> float:
        """Memory footprint of *node* in mebibytes."""
        return self.reports[node].mem_bytes / (1024.0 * 1024.0)

    @property
    def max_cpu(self) -> float:
        """Maximum per-node CPU footprint (the figures' y-axis)."""
        return max(r.cpu for r in self.reports.values())

    @property
    def max_mem_bytes(self) -> float:
        """Maximum per-node memory footprint in bytes."""
        return max(r.mem_bytes for r in self.reports.values())

    @property
    def max_mem_mb(self) -> float:
        """Maximum per-node memory footprint in mebibytes."""
        return self.max_mem_bytes / (1024.0 * 1024.0)

    def hottest_cpu_node(self) -> str:
        """Node with the largest CPU footprint."""
        return max(self.reports, key=lambda n: self.reports[n].cpu)

    def hottest_mem_node(self) -> str:
        """Node with the largest memory footprint."""
        return max(self.reports, key=lambda n: self.reports[n].mem_bytes)

    def alert_keys(self) -> Set[Tuple[str, str]]:
        """Aggregate deduplicated alerts across all nodes."""
        keys: Set[Tuple[str, str]] = set()
        for report in self.reports.values():
            keys.update(alert.key() for alert in report.alerts)
        return keys

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "label": self.label,
            "reports": {
                node: report.to_dict()
                for node, report in self.reports.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentUsage":
        """Rebuild a usage result from :meth:`to_dict` output."""
        return cls(
            label=data["label"],
            reports={
                node: InstanceReport.from_dict(report)
                for node, report in data["reports"].items()
            },
        )


@dataclass
class Traffic:
    """The trace input to :func:`run_emulation`, with its routing context.

    Folds away the redundant ``(generator, sessions)`` parameter pair
    the old entry points took: the generator supplies topology and
    routing (``split_by_node``), and exactly one of three trace
    sources supplies the sessions —

    * ``sessions`` — an already-materialized trace
      (:meth:`materialized`);
    * ``chunks`` — an iterable of session chunks, e.g. from
      ``TrafficGenerator.generate_chunks`` (:meth:`chunked`; one-shot,
      as any iterable);
    * ``num_sessions`` — generate the trace lazily from the
      generator's seed (:meth:`generate`).

    All sources describe the same accounting result for the same
    sessions — the engine's reports are order-independent and exact —
    so the choice only affects memory and execution shape.
    """

    generator: TrafficGenerator
    sessions: Optional[Sequence[Session]] = None
    chunks: Optional[Iterable[Sequence[Session]]] = None
    num_sessions: Optional[int] = None

    def __post_init__(self) -> None:
        sources = [
            source
            for source in (self.sessions, self.chunks, self.num_sessions)
            if source is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "Traffic needs exactly one of sessions=, chunks=, or"
                " num_sessions="
            )

    @classmethod
    def materialized(
        cls, generator: TrafficGenerator, sessions: Sequence[Session]
    ) -> "Traffic":
        """An already-generated trace."""
        return cls(generator=generator, sessions=sessions)

    @classmethod
    def chunked(
        cls,
        generator: TrafficGenerator,
        chunks: Iterable[Sequence[Session]],
    ) -> "Traffic":
        """A pre-chunked session stream (one-shot iterable)."""
        return cls(generator=generator, chunks=chunks)

    @classmethod
    def generate(cls, generator: TrafficGenerator, num_sessions: int) -> "Traffic":
        """Generate *num_sessions* lazily from the generator's seed."""
        if num_sessions < 0:
            raise ValueError("num_sessions must be >= 0")
        return cls(generator=generator, num_sessions=num_sessions)

    def materialize(self) -> List[Session]:
        """The full session list (consumes a ``chunks`` source)."""
        if self.sessions is not None:
            return list(self.sessions)
        if self.num_sessions is not None:
            return self.generator.generate(self.num_sessions)
        assert self.chunks is not None
        return [session for chunk in self.chunks for session in chunk]

    def chunk_iter(self, chunk_size: int) -> Iterator[Sequence[Session]]:
        """The trace as chunks of at most *chunk_size* sessions."""
        if self.chunks is not None:
            yield from self.chunks
        elif self.num_sessions is not None:
            yield from self.generator.generate_chunks(
                self.num_sessions, chunk_size
            )
        else:
            assert self.sessions is not None
            sessions = self.sessions
            for start in range(0, len(sessions), chunk_size):
                yield sessions[start : start + chunk_size]


def run_emulation(
    traffic: Traffic,
    modules_or_deployment: Union[Sequence[ModuleSpec], NIDSDeployment],
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Emulate one deployment over one trace — the unified entry point.

    The second argument selects the deployment style, mirroring the
    paper's two configurations:

    * a sequence of :class:`~repro.nids.modules.base.ModuleSpec` —
      **edge-only**: every location independently runs stock Bro
      (``UNMODIFIED``) on traffic originating or terminating there;
    * a :class:`~repro.core.nids_deployment.NIDSDeployment` —
      **coordinated**: every node runs a coordination-enabled instance
      over its full trace including transit traffic, sampling per its
      manifest.  ``config.mode`` picks approach 2 (``COORD_EVENT``,
      the paper's choice and the default) or the approach-1 ablation
      (``COORD_POLICY``).

    ``config.policy`` (an :class:`~repro.nids.engine.ExecutionPolicy`)
    selects the execution shape — ``inline`` (materialized,
    single-process), ``streamed`` (chunked through persistent
    instances, memory bounded by the chunk size), or ``sharded``
    (per-node/per-chunk shards on a spawn process pool, merged
    exactly; see :mod:`repro.nids.shard`).  All three produce
    bit-identical :class:`DeploymentUsage` reports.  A sharded run
    launched from inside another worker process (e.g. a sweep cell)
    falls back to inline execution and counts
    ``engine_shard_fallback_total``.

    ``registry`` (overriding ``config.registry``) receives runtime
    telemetry: per-node dispatch counts, hash-cache hits, tracked /
    light connection tallies, trace throughput, and — for sharded
    runs — the ``engine_shard_*`` families.

    This supersedes ``emulate_edge`` / ``emulate_coordinated`` /
    ``emulate_edge_stream`` / ``emulate_coordinated_stream``, which
    remain as deprecated wrappers.
    """
    config = _resolve_config(config, registry)
    coordinated = isinstance(modules_or_deployment, NIDSDeployment)
    if coordinated:
        deployment = modules_or_deployment
        if config.mode is BroMode.UNMODIFIED:
            raise ValueError("coordinated emulation requires a coordinated mode")
        label, transit, mode = "coordinated", True, config.mode
        modules: Sequence[ModuleSpec] = deployment.modules
        run_timer = config.registry.timer(
            "emulate_coordinated_seconds",
            "wall-clock seconds per coordinated emulation",
        )
    else:
        deployment = None
        label, transit, mode = "edge", False, BroMode.UNMODIFIED
        modules = list(modules_or_deployment)
        run_timer = config.registry.timer(
            "emulate_edge_seconds",
            "wall-clock seconds per edge-only emulation",
        )

    generator = traffic.generator

    def build_instance(node: str) -> BroInstance:
        return BroInstance(
            node=node,
            modules=modules,
            mode=mode,
            dispatcher=deployment.dispatcher(node) if coordinated else None,
            config=config,
        )

    policy = config.policy
    with run_timer:
        if policy.mode is ExecutionMode.STREAMED:
            instances = {
                node: build_instance(node)
                for node in generator.topology.node_names
            }
            return _emulate_stream(
                label,
                instances,
                generator,
                traffic.chunk_iter(policy.chunk_size),
                transit,
                config,
            )

        execution = policy.mode
        if execution is ExecutionMode.SHARDED:
            from . import shard

            if shard.in_worker_process():
                # Oversubscription guard: a sweep cell (or another
                # shard worker) already runs in a pool; nesting pools
                # would multiply the process count and can deadlock.
                config.registry.counter(
                    "engine_shard_fallback_total",
                    "sharded runs demoted to inline inside a worker process",
                ).inc()
                execution = ExecutionMode.INLINE

        traces = generator.split_by_node(traffic.materialize(), transit=transit)
        if execution is ExecutionMode.SHARDED:
            return shard.run_sharded(
                label,
                traces,
                modules,
                mode,
                config,
                node_names=generator.topology.node_names,
                manifests=deployment.manifests if coordinated else None,
                hash_seed=deployment.hash_seed if coordinated else 0,
            )
        reports = {
            node: build_instance(node).process_sessions(trace)
            for node, trace in traces.items()
        }
        return DeploymentUsage(label=label, reports=reports)


def _deprecated(old: str, hint: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use run_emulation({hint})",
        DeprecationWarning,
        stacklevel=3,
    )


def emulate_edge(
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    modules: Sequence[ModuleSpec],
    cost_model: object = _UNSET,
    run_detectors: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Deprecated wrapper for the edge-only deployment.

    Use ``run_emulation(Traffic.materialized(generator, sessions),
    modules, config=...)``.  This shim folds the historically redundant
    ``(generator, sessions)`` pair — the generator was only ever used
    for ``split_by_node`` routing — into a :class:`Traffic`, resolves
    the deprecated bare keywords (``cost_model`` / ``run_detectors``)
    into the config, and forwards."""
    _deprecated("emulate_edge", "Traffic.materialized(generator, sessions), modules")
    config = _resolve_config(
        config, registry, cost_model=cost_model, run_detectors=run_detectors
    )
    return run_emulation(
        Traffic.materialized(generator, sessions), modules, config=config
    )


def emulate_coordinated(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    cost_model: object = _UNSET,
    run_detectors: object = _UNSET,
    mode: object = _UNSET,
    fine_grained: object = _UNSET,
    batch_dispatch: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Deprecated wrapper for the coordinated deployment.

    Use ``run_emulation(Traffic.materialized(generator, sessions),
    deployment, config=...)``.  The bare keywords (``cost_model``,
    ``mode``, ``batch_dispatch``, ...) are the pre-config shims; they
    are resolved into the config here and forwarded."""
    _deprecated(
        "emulate_coordinated",
        "Traffic.materialized(generator, sessions), deployment",
    )
    config = _resolve_config(
        config,
        registry,
        cost_model=cost_model,
        run_detectors=run_detectors,
        mode=mode,
        fine_grained=fine_grained,
        batch_dispatch=batch_dispatch,
    )
    return run_emulation(
        Traffic.materialized(generator, sessions), deployment, config=config
    )


def _emulate_stream(
    label: str,
    instances: Dict[str, BroInstance],
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    transit: bool,
    config: EmulationConfig,
) -> DeploymentUsage:
    """Stream chunks through persistent per-node instances and merge.

    Exact-accounting partials make the merged result bit-identical to
    processing the whole (even re-ordered) trace at once, so callers
    can trade memory for chunk count freely.
    """
    chunk_counter = config.registry.counter(
        "engine_stream_chunks_total",
        "traffic chunks streamed through the emulation entry points",
    )
    partials: Dict[str, PartialInstanceReport] = {}
    for chunk in session_chunks:
        chunk_counter.inc()
        traces = generator.split_by_node(list(chunk), transit=transit)
        for node, trace in traces.items():
            partial = instances[node].process_sessions_partial(trace)
            held = partials.get(node)
            if held is None:
                partials[node] = partial
            else:
                held.merge(partial)
    reports = {
        node: instance.finalize_partial(
            partials.get(node)
            or PartialInstanceReport.empty(
                node, instance.mode, (spec.name for spec in instance.modules)
            )
        )
        for node, instance in instances.items()
    }
    return DeploymentUsage(label=label, reports=reports)


def _streamed_config(
    config: Optional[EmulationConfig], registry: Optional[MetricsRegistry]
) -> EmulationConfig:
    """Resolve a wrapper config and force the streamed execution mode."""
    from dataclasses import replace

    config = _resolve_config(config, registry)
    if config.policy.mode is not ExecutionMode.STREAMED:
        config = replace(
            config,
            policy=replace(config.policy, mode=ExecutionMode.STREAMED),
        )
    return config


def emulate_edge_stream(
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    modules: Sequence[ModuleSpec],
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Deprecated wrapper for the edge-only streamed run.

    Use ``run_emulation(Traffic.chunked(generator, session_chunks),
    modules, config=EmulationConfig(policy=ExecutionPolicy.streamed()))``
    — this shim forces the streamed policy and forwards."""
    _deprecated(
        "emulate_edge_stream",
        "Traffic.chunked(generator, chunks), modules,"
        " config=EmulationConfig(policy=ExecutionPolicy.streamed())",
    )
    return run_emulation(
        Traffic.chunked(generator, session_chunks),
        modules,
        config=_streamed_config(config, registry),
    )


def emulate_coordinated_stream(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Deprecated wrapper for the coordinated streamed run.

    Use ``run_emulation(Traffic.chunked(generator, session_chunks),
    deployment, config=EmulationConfig(policy=ExecutionPolicy.streamed()))``
    — this shim forces the streamed policy and forwards."""
    _deprecated(
        "emulate_coordinated_stream",
        "Traffic.chunked(generator, chunks), deployment,"
        " config=EmulationConfig(policy=ExecutionPolicy.streamed())",
    )
    return run_emulation(
        Traffic.chunked(generator, session_chunks),
        deployment,
        config=_streamed_config(config, registry),
    )


@dataclass
class ComparisonRow:
    """One (x, edge, coordinated) measurement for the Fig. 6/7 series."""

    x: float
    edge_cpu: float
    coord_cpu: float
    edge_mem_mb: float
    coord_mem_mb: float

    @property
    def cpu_reduction(self) -> float:
        """Fractional reduction in max CPU from coordination."""
        return 1.0 - self.coord_cpu / self.edge_cpu if self.edge_cpu else 0.0

    @property
    def mem_reduction(self) -> float:
        """Fractional reduction in max memory from coordination."""
        return 1.0 - self.coord_mem_mb / self.edge_mem_mb if self.edge_mem_mb else 0.0


def compare_deployments(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    x: float,
    cost_model: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ComparisonRow:
    """Emulate both deployments and return the max-load comparison."""
    config = _resolve_config(config, registry, cost_model=cost_model)
    traffic = Traffic.materialized(generator, sessions)
    edge = run_emulation(traffic, deployment.modules, config=config)
    coordinated = run_emulation(traffic, deployment, config=config)
    return ComparisonRow(
        x=x,
        edge_cpu=edge.max_cpu,
        coord_cpu=coordinated.max_cpu,
        edge_mem_mb=edge.max_mem_mb,
        coord_mem_mb=coordinated.max_mem_mb,
    )
