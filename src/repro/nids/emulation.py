"""Network-wide deployment emulation (paper Section 2.4).

Reproduces the paper's methodology: "From a network-wide trace, we
generate traces that each node sees.  For the coordinated case, this
includes both traffic originating/terminating at a node and transit
traffic.  For the edge-only case, these consist of traffic
originating/terminating at each node."  Each node's trace is then run
through a simulated Bro instance — unmodified for the edge-only
deployment, coordination-enabled (approach 2, checks as early as
possible) for the coordinated deployment — and per-node CPU and memory
footprints are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.nids_deployment import NIDSDeployment
from ..obs import MetricsRegistry
from ..traffic.generator import TrafficGenerator
from ..traffic.session import Session
from .engine import (
    _UNSET,
    _resolve_config,
    BroInstance,
    BroMode,
    EmulationConfig,
    InstanceReport,
    PartialInstanceReport,
)
from .modules.base import Alert, ModuleSpec


@dataclass
class DeploymentUsage:
    """Per-node resource footprints for one deployment style."""

    label: str
    reports: Dict[str, InstanceReport]

    @property
    def nodes(self) -> List[str]:
        """Node names covered by this deployment run."""
        return list(self.reports)

    def cpu(self, node: str) -> float:
        """CPU footprint of *node*."""
        return self.reports[node].cpu

    def mem_bytes(self, node: str) -> float:
        """Memory footprint of *node* in bytes."""
        return self.reports[node].mem_bytes

    def mem_mb(self, node: str) -> float:
        """Memory footprint of *node* in mebibytes."""
        return self.reports[node].mem_bytes / (1024.0 * 1024.0)

    @property
    def max_cpu(self) -> float:
        """Maximum per-node CPU footprint (the figures' y-axis)."""
        return max(r.cpu for r in self.reports.values())

    @property
    def max_mem_bytes(self) -> float:
        """Maximum per-node memory footprint in bytes."""
        return max(r.mem_bytes for r in self.reports.values())

    @property
    def max_mem_mb(self) -> float:
        """Maximum per-node memory footprint in mebibytes."""
        return self.max_mem_bytes / (1024.0 * 1024.0)

    def hottest_cpu_node(self) -> str:
        """Node with the largest CPU footprint."""
        return max(self.reports, key=lambda n: self.reports[n].cpu)

    def hottest_mem_node(self) -> str:
        """Node with the largest memory footprint."""
        return max(self.reports, key=lambda n: self.reports[n].mem_bytes)

    def alert_keys(self) -> Set[Tuple[str, str]]:
        """Aggregate deduplicated alerts across all nodes."""
        keys: Set[Tuple[str, str]] = set()
        for report in self.reports.values():
            keys.update(alert.key() for alert in report.alerts)
        return keys

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "label": self.label,
            "reports": {
                node: report.to_dict()
                for node, report in self.reports.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentUsage":
        """Rebuild a usage result from :meth:`to_dict` output."""
        return cls(
            label=data["label"],
            reports={
                node: InstanceReport.from_dict(report)
                for node, report in data["reports"].items()
            },
        )


def emulate_edge(
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    modules: Sequence[ModuleSpec],
    cost_model: object = _UNSET,
    run_detectors: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Edge-only deployment: each location independently runs stock Bro
    on the traffic originating or terminating there.

    Run options are carried by ``config``; the bare ``cost_model`` /
    ``run_detectors`` keywords are deprecated shims.  ``registry``
    (overriding ``config.registry``) receives runtime telemetry."""
    config = _resolve_config(
        config, registry, cost_model=cost_model, run_detectors=run_detectors
    )
    traces = generator.split_by_node(list(sessions), transit=False)
    reports = {}
    with config.registry.timer(
        "emulate_edge_seconds", "wall-clock seconds per edge-only emulation"
    ):
        for node, trace in traces.items():
            instance = BroInstance(
                node=node,
                modules=modules,
                mode=BroMode.UNMODIFIED,
                config=config,
            )
            reports[node] = instance.process_sessions(trace)
    return DeploymentUsage(label="edge", reports=reports)


def emulate_coordinated(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    cost_model: object = _UNSET,
    run_detectors: object = _UNSET,
    mode: object = _UNSET,
    fine_grained: object = _UNSET,
    batch_dispatch: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Coordinated deployment: every node runs a coordination-enabled
    instance over its full trace including transit traffic, sampling
    per its manifest.  The default mode is approach 2 (checks as early
    as possible) — the configuration the paper selects;
    ``EmulationConfig(mode=BroMode.COORD_POLICY)`` selects the
    approach-1 ablation.

    Run options are carried by ``config``
    (:class:`~repro.nids.engine.EmulationConfig`); the bare keywords
    (``cost_model``, ``mode``, ``batch_dispatch``, ...) are deprecated
    shims kept for pre-config callers.  ``registry`` (overriding
    ``config.registry``) receives runtime telemetry: per-node dispatch
    counts, hash-cache hits, tracked/light connection tallies, and
    trace throughput."""
    config = _resolve_config(
        config,
        registry,
        cost_model=cost_model,
        run_detectors=run_detectors,
        mode=mode,
        fine_grained=fine_grained,
        batch_dispatch=batch_dispatch,
    )
    if config.mode is BroMode.UNMODIFIED:
        raise ValueError("coordinated emulation requires a coordinated mode")
    traces = generator.split_by_node(list(sessions), transit=True)
    reports = {}
    with config.registry.timer(
        "emulate_coordinated_seconds",
        "wall-clock seconds per coordinated emulation",
    ):
        for node, trace in traces.items():
            instance = BroInstance(
                node=node,
                modules=deployment.modules,
                mode=config.mode,
                dispatcher=deployment.dispatcher(node),
                config=config,
            )
            reports[node] = instance.process_sessions(trace)
    return DeploymentUsage(label="coordinated", reports=reports)


def _emulate_stream(
    label: str,
    instances: Dict[str, BroInstance],
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    transit: bool,
    config: EmulationConfig,
) -> DeploymentUsage:
    """Stream chunks through persistent per-node instances and merge.

    Exact-accounting partials make the merged result bit-identical to
    processing the whole (even re-ordered) trace at once, so callers
    can trade memory for chunk count freely.
    """
    chunk_counter = config.registry.counter(
        "engine_stream_chunks_total",
        "traffic chunks streamed through the emulation entry points",
    )
    partials: Dict[str, PartialInstanceReport] = {}
    for chunk in session_chunks:
        chunk_counter.inc()
        traces = generator.split_by_node(list(chunk), transit=transit)
        for node, trace in traces.items():
            partial = instances[node].process_sessions_partial(trace)
            held = partials.get(node)
            if held is None:
                partials[node] = partial
            else:
                held.merge(partial)
    reports = {
        node: instance.finalize_partial(
            partials.get(node)
            or PartialInstanceReport.empty(
                node, instance.mode, (spec.name for spec in instance.modules)
            )
        )
        for node, instance in instances.items()
    }
    return DeploymentUsage(label=label, reports=reports)


def emulate_edge_stream(
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    modules: Sequence[ModuleSpec],
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Edge-only deployment over a chunked session stream.

    Memory-bounded variant of :func:`emulate_edge`: only one chunk
    (typically from ``TrafficGenerator.generate_chunks``) is resident
    at a time, and the consolidated report is bit-identical to the
    materialize-all run over the same sessions."""
    config = _resolve_config(config, registry)
    instances = {
        node: BroInstance(
            node=node, modules=modules, mode=BroMode.UNMODIFIED, config=config
        )
        for node in generator.topology.node_names
    }
    with config.registry.timer(
        "emulate_edge_seconds", "wall-clock seconds per edge-only emulation"
    ):
        return _emulate_stream(
            "edge", instances, generator, session_chunks, False, config
        )


def emulate_coordinated_stream(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    session_chunks: Iterable[Sequence[Session]],
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DeploymentUsage:
    """Coordinated deployment over a chunked session stream.

    Memory-bounded variant of :func:`emulate_coordinated` with the same
    bit-identical-report guarantee as :func:`emulate_edge_stream`."""
    config = _resolve_config(config, registry)
    if config.mode is BroMode.UNMODIFIED:
        raise ValueError("coordinated emulation requires a coordinated mode")
    instances = {
        node: BroInstance(
            node=node,
            modules=deployment.modules,
            mode=config.mode,
            dispatcher=deployment.dispatcher(node),
            config=config,
        )
        for node in generator.topology.node_names
    }
    with config.registry.timer(
        "emulate_coordinated_seconds",
        "wall-clock seconds per coordinated emulation",
    ):
        return _emulate_stream(
            "coordinated", instances, generator, session_chunks, True, config
        )


@dataclass
class ComparisonRow:
    """One (x, edge, coordinated) measurement for the Fig. 6/7 series."""

    x: float
    edge_cpu: float
    coord_cpu: float
    edge_mem_mb: float
    coord_mem_mb: float

    @property
    def cpu_reduction(self) -> float:
        """Fractional reduction in max CPU from coordination."""
        return 1.0 - self.coord_cpu / self.edge_cpu if self.edge_cpu else 0.0

    @property
    def mem_reduction(self) -> float:
        """Fractional reduction in max memory from coordination."""
        return 1.0 - self.coord_mem_mb / self.edge_mem_mb if self.edge_mem_mb else 0.0


def compare_deployments(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    x: float,
    cost_model: object = _UNSET,
    *,
    config: Optional[EmulationConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ComparisonRow:
    """Emulate both deployments and return the max-load comparison."""
    config = _resolve_config(config, registry, cost_model=cost_model)
    edge = emulate_edge(generator, sessions, deployment.modules, config=config)
    coordinated = emulate_coordinated(deployment, generator, sessions, config=config)
    return ComparisonRow(
        x=x,
        edge_cpu=edge.max_cpu,
        coord_cpu=coordinated.max_cpu,
        edge_mem_mb=edge.max_mem_mb,
        coord_mem_mb=coordinated.max_mem_mb,
    )
