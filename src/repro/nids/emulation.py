"""Network-wide deployment emulation (paper Section 2.4).

Reproduces the paper's methodology: "From a network-wide trace, we
generate traces that each node sees.  For the coordinated case, this
includes both traffic originating/terminating at a node and transit
traffic.  For the edge-only case, these consist of traffic
originating/terminating at each node."  Each node's trace is then run
through a simulated Bro instance — unmodified for the edge-only
deployment, coordination-enabled (approach 2, checks as early as
possible) for the coordinated deployment — and per-node CPU and memory
footprints are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..core.nids_deployment import NIDSDeployment
from ..traffic.generator import TrafficGenerator
from ..traffic.session import Session
from .engine import BroInstance, BroMode, InstanceReport
from .modules.base import Alert, ModuleSpec
from .resources import CostModel, DEFAULT_COST_MODEL


@dataclass
class DeploymentUsage:
    """Per-node resource footprints for one deployment style."""

    label: str
    reports: Dict[str, InstanceReport]

    @property
    def nodes(self) -> List[str]:
        """Node names covered by this deployment run."""
        return list(self.reports)

    def cpu(self, node: str) -> float:
        """CPU footprint of *node*."""
        return self.reports[node].cpu

    def mem_bytes(self, node: str) -> float:
        """Memory footprint of *node* in bytes."""
        return self.reports[node].mem_bytes

    def mem_mb(self, node: str) -> float:
        """Memory footprint of *node* in mebibytes."""
        return self.reports[node].mem_bytes / (1024.0 * 1024.0)

    @property
    def max_cpu(self) -> float:
        """Maximum per-node CPU footprint (the figures' y-axis)."""
        return max(r.cpu for r in self.reports.values())

    @property
    def max_mem_bytes(self) -> float:
        """Maximum per-node memory footprint in bytes."""
        return max(r.mem_bytes for r in self.reports.values())

    @property
    def max_mem_mb(self) -> float:
        """Maximum per-node memory footprint in mebibytes."""
        return self.max_mem_bytes / (1024.0 * 1024.0)

    def hottest_cpu_node(self) -> str:
        """Node with the largest CPU footprint."""
        return max(self.reports, key=lambda n: self.reports[n].cpu)

    def hottest_mem_node(self) -> str:
        """Node with the largest memory footprint."""
        return max(self.reports, key=lambda n: self.reports[n].mem_bytes)

    def alert_keys(self) -> Set[Tuple[str, str]]:
        """Aggregate deduplicated alerts across all nodes."""
        keys: Set[Tuple[str, str]] = set()
        for report in self.reports.values():
            keys.update(alert.key() for alert in report.alerts)
        return keys


def emulate_edge(
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    modules: Sequence[ModuleSpec],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    run_detectors: bool = False,
) -> DeploymentUsage:
    """Edge-only deployment: each location independently runs stock Bro
    on the traffic originating or terminating there."""
    traces = generator.split_by_node(list(sessions), transit=False)
    reports = {}
    for node, trace in traces.items():
        instance = BroInstance(
            node=node,
            modules=modules,
            mode=BroMode.UNMODIFIED,
            cost_model=cost_model,
            run_detectors=run_detectors,
        )
        reports[node] = instance.process_sessions(trace)
    return DeploymentUsage(label="edge", reports=reports)


def emulate_coordinated(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    run_detectors: bool = False,
    mode: BroMode = BroMode.COORD_EVENT,
    fine_grained: bool = False,
    batch_dispatch: bool = True,
) -> DeploymentUsage:
    """Coordinated deployment: every node runs a coordination-enabled
    instance over its full trace including transit traffic, sampling
    per its manifest.  The default mode is approach 2 (checks as early
    as possible) — the configuration the paper selects; ``mode`` may be
    set to ``COORD_POLICY`` for the approach-1 ablation.

    ``batch_dispatch`` selects the vectorized Fig. 3 fast path (the
    default; decisions are bit-identical to the scalar path) —
    ``False`` forces per-session scalar dispatch, kept for equivalence
    tests and benchmarking."""
    if mode is BroMode.UNMODIFIED:
        raise ValueError("coordinated emulation requires a coordinated mode")
    traces = generator.split_by_node(list(sessions), transit=True)
    reports = {}
    for node, trace in traces.items():
        instance = BroInstance(
            node=node,
            modules=deployment.modules,
            mode=mode,
            dispatcher=deployment.dispatcher(node),
            cost_model=cost_model,
            run_detectors=run_detectors,
            fine_grained=fine_grained,
            batch_dispatch=batch_dispatch,
        )
        reports[node] = instance.process_sessions(trace)
    return DeploymentUsage(label="coordinated", reports=reports)


@dataclass
class ComparisonRow:
    """One (x, edge, coordinated) measurement for the Fig. 6/7 series."""

    x: float
    edge_cpu: float
    coord_cpu: float
    edge_mem_mb: float
    coord_mem_mb: float

    @property
    def cpu_reduction(self) -> float:
        """Fractional reduction in max CPU from coordination."""
        return 1.0 - self.coord_cpu / self.edge_cpu if self.edge_cpu else 0.0

    @property
    def mem_reduction(self) -> float:
        """Fractional reduction in max memory from coordination."""
        return 1.0 - self.coord_mem_mb / self.edge_mem_mb if self.edge_mem_mb else 0.0


def compare_deployments(
    deployment: NIDSDeployment,
    generator: TrafficGenerator,
    sessions: Sequence[Session],
    x: float,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ComparisonRow:
    """Emulate both deployments and return the max-load comparison."""
    edge = emulate_edge(generator, sessions, deployment.modules, cost_model)
    coordinated = emulate_coordinated(deployment, generator, sessions, cost_model)
    return ComparisonRow(
        x=x,
        edge_cpu=edge.max_cpu,
        coord_cpu=coordinated.max_cpu,
        edge_mem_mb=edge.max_mem_mb,
        coord_mem_mb=coordinated.max_mem_mb,
    )
