"""Shared parsed-AST store for the static-analysis passes.

``repro analysis lint`` and ``repro analysis flow`` both walk the same
package; parsing ~150 files twice doubles the cost of running the two
passes back to back (CI runs both, and the flow pass itself needs every
module parsed before it can build a call graph).  :class:`ASTStore`
parses each file once and serves the cached tree to every pass in the
process, invalidating on (size, mtime) change so editor-driven loops
stay correct.

The store is deliberately tiny: no persistence, no hashing — just a
per-process dict keyed by absolute path.  ``DEFAULT_STORE`` is the
process-wide instance both CLI passes use; tests construct private
stores to assert parse counts.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Optional, Tuple


class ASTStore:
    """Parse-once cache of ``path -> ast.Module``.

    ``get`` returns the cached tree when the file's (size, mtime_ns)
    fingerprint is unchanged, re-parses otherwise.  ``parse_count``
    counts actual ``ast.parse`` calls, so callers can assert sharing.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, Tuple[Tuple[int, int], str, ast.Module]] = {}
        self.parse_count = 0

    def get(self, path: str) -> Tuple[str, ast.Module]:
        """The (source, tree) for *path*, parsed at most once per change.

        Raises ``SyntaxError`` (with the path as filename) or ``OSError``
        exactly like an uncached read would.
        """
        key = os.path.abspath(path)
        stat = os.stat(key)
        fingerprint = (stat.st_size, stat.st_mtime_ns)
        held = self._cache.get(key)
        if held is not None and held[0] == fingerprint:
            return held[1], held[2]
        with open(key, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
        self.parse_count += 1
        self._cache[key] = (fingerprint, source, tree)
        return source, tree

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop one cached entry, or everything when *path* is None."""
        if path is None:
            self._cache.clear()
        else:
            self._cache.pop(os.path.abspath(path), None)

    def __len__(self) -> int:
        return len(self._cache)


#: Process-wide store shared by ``analysis lint`` and ``analysis flow``.
DEFAULT_STORE = ASTStore()
