"""The domain lint rules (REP001-REP006).

Each rule encodes an invariant this reproduction has been burned by —
or would be, the next time someone edits a boundary comparison, an
experiment seed, the :mod:`repro.api` facade, or a metric family —
without noticing:

========  ==========================================================
REP001    float-literal equality on fractions/boundaries
REP002    unseeded ``random`` / ``np.random`` global-state draws
REP003    ``__all__`` facade drift (unresolvable or unexported names)
REP004    metric-name drift vs. ``docs/observability.md``
REP005    mutable default arguments
REP006    deprecated emulation entrypoints / legacy keyword shims
========  ==========================================================

Suppress a deliberate exception with ``# repnoqa: REPnnn`` on the
line (see :mod:`repro.analysis.lint`); ``docs/static_analysis.md``
is the full catalogue with rationale and examples.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .lint import FileContext, ProjectContext, Rule, Violation

#: ``random``-module functions that draw from the *global* (implicitly
#: seeded) generator.  ``random.Random(seed)`` instances are fine.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "paretovariate", "lognormvariate", "vonmisesvariate",
        "weibullvariate", "triangular", "getrandbits", "randbytes", "seed",
    }
)

#: ``numpy.random`` attributes that do NOT touch the legacy global
#: state (constructors of explicit generators and state inspectors).
_NP_RANDOM_SAFE = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState",
     "get_state", "set_state", "BitGenerator", "PCG64", "Philox"}
)

#: Registry methods that declare a metric family with their first
#: positional string argument.
_REGISTRY_DECLARATORS = frozenset({"counter", "gauge", "histogram", "timer", "span"})

_METRIC_TOKEN = re.compile(r"`([a-z_][a-z0-9_]*)`")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FloatLiteralEquality(Rule):
    """REP001: ``==`` / ``!=`` against a float literal.

    Hash-range boundaries, coverage sums, and headroom factors are all
    accumulated floats; exact comparison against a literal like ``1.0``
    silently misses values an ulp away (the ``headroom == 1.0``
    fast-path bug).  Compare within ``EPSILON`` or ``math.isclose``;
    suppress with ``# repnoqa: REP001`` where bit-exactness is the
    invariant itself (e.g. the manifest top-snap check).
    """

    rule_id = "REP001"
    description = "float-literal equality; use EPSILON/math.isclose"

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield Violation(
                            rule_id=self.rule_id,
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"float-literal comparison `{symbol}"
                                f" {side.value!r}`; use an EPSILON-tolerant"
                                " check (math.isclose or abs(a-b) <= EPSILON)"
                            ),
                        )
                        break


class UnseededRandomness(Rule):
    """REP002: draws from implicitly seeded global RNG state.

    Every figure of the paper (Figs. 6-11) must regenerate
    bit-identically from a seed; a single ``random.random()`` or
    ``np.random.rand()`` call routes through process-global state that
    any import can perturb.  Use ``random.Random(seed)`` /
    ``np.random.default_rng(seed)`` instances instead.
    """

    rule_id = "REP002"
    description = "unseeded global RNG draw; use Random(seed)/default_rng(seed)"

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        aliases = self._module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            resolved = self._resolve(dotted, aliases)
            message = self._diagnose(resolved, node)
            if message:
                yield Violation(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )

    @staticmethod
    def _module_aliases(tree: ast.Module) -> Dict[str, str]:
        """Map local names to the canonical module path they bind."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and (
                node.level == 0
            ):
                for item in node.names:
                    aliases[item.asname or item.name] = (
                        f"{node.module}.{item.name}"
                    )
        return aliases

    @staticmethod
    def _resolve(dotted: str, aliases: Dict[str, str]) -> str:
        head, _, rest = dotted.partition(".")
        canonical = aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical

    @staticmethod
    def _diagnose(resolved: str, call: ast.Call) -> Optional[str]:
        if resolved.startswith("numpy.random.") or resolved.startswith(
            "np.random."
        ):
            attr = resolved.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_SAFE:
                return (
                    f"`np.random.{attr}()` draws from numpy's global RNG;"
                    " use np.random.default_rng(seed)"
                )
            if attr in ("default_rng", "RandomState") and not (
                call.args or call.keywords
            ):
                return (
                    f"`np.random.{attr}()` without a seed is irreproducible;"
                    " pass an explicit seed"
                )
            return None
        if resolved.startswith("random."):
            attr = resolved.rsplit(".", 1)[1]
            if attr in _GLOBAL_RANDOM_FNS:
                return (
                    f"`random.{attr}()` uses the process-global RNG;"
                    " use a seeded random.Random(seed) instance"
                )
            if attr == "Random" and not (call.args or call.keywords):
                return (
                    "`random.Random()` without a seed is irreproducible;"
                    " pass an explicit seed"
                )
        return None


class FacadeDrift(Rule):
    """REP003: ``__all__`` facade drift.

    For any module declaring a literal ``__all__`` (the public facade
    pattern of :mod:`repro.api` and the package ``__init__`` files):

    * every ``__all__`` entry must resolve — to a top-level binding or
      to a name served by a PEP 562 module ``__getattr__``;
    * every public top-level definition or intra-package re-export
      must either appear in ``__all__`` or be renamed with a leading
      underscore, so new symbols cannot leak half-published.
    """

    rule_id = "REP003"
    description = "__all__ facade drift (unresolvable or unexported names)"

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        exported = self._literal_all(ctx.tree)
        if exported is None:
            return
        all_node, names = exported
        bound, reexported, lazy = self._bindings(ctx.tree)
        for name in names:
            if name not in bound and name not in lazy:
                yield Violation(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=all_node.lineno,
                    col=all_node.col_offset,
                    message=(
                        f"__all__ exports {name!r} but the module never"
                        " binds it (import, definition, or __getattr__)"
                    ),
                )
        declared = set(names)
        for name, line, col in reexported:
            if name.startswith("_") or name in declared:
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=ctx.path,
                line=line,
                col=col,
                message=(
                    f"public symbol {name!r} is bound but missing from"
                    " __all__; export it or prefix it with '_'"
                ),
            )

    @staticmethod
    def _literal_all(
        tree: ast.Module,
    ) -> Optional[Tuple[ast.AST, List[str]]]:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" not in targets:
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                return None  # computed __all__: out of scope
            names = []
            for element in node.value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            return node, names
        return None

    @staticmethod
    def _bindings(
        tree: ast.Module,
    ) -> Tuple[Set[str], List[Tuple[str, int, int]], Set[str]]:
        """(all bound names, export-candidate bindings, lazy names).

        Export candidates are top-level defs/classes and *relative*
        (intra-package) imports — stdlib/third-party imports are
        implementation detail, not facade surface.  Lazy names are
        resolved from a module-level ``__getattr__`` (PEP 562): both
        identifier string constants in its body (``if name == "api":``)
        and the string keys of any module-level dict literal the body
        consults (``_LAZY_EXPORTS[name]``).
        """
        bound: Set[str] = set()
        candidates: List[Tuple[str, int, int]] = []
        lazy: Set[str] = set()
        getattr_defs: List[ast.FunctionDef] = []
        dict_keys: Dict[str, List[str]] = {}
        # Flatten top-level conditional/try blocks: `if TYPE_CHECKING:`
        # imports and version-gated bindings are part of the facade.
        body: List[ast.stmt] = []
        stack = list(tree.body)
        while stack:
            node = stack.pop(0)
            if isinstance(node, ast.If):
                stack = list(node.body) + list(node.orelse) + stack
            elif isinstance(node, ast.Try):
                stack = (
                    list(node.body)
                    + [h for handler in node.handlers for h in handler.body]
                    + list(node.orelse)
                    + list(node.finalbody)
                    + stack
                )
            else:
                body.append(node)
        for node in body:
            if isinstance(node, ast.Import):
                for item in node.names:
                    bound.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    name = item.asname or item.name
                    bound.add(name)
                    if node.level > 0:
                        candidates.append((name, node.lineno, node.col_offset))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
                if node.name == "__getattr__":
                    getattr_defs.append(node)
                else:
                    candidates.append((node.name, node.lineno, node.col_offset))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if isinstance(node.value, ast.Dict):
                            dict_keys[target.id] = [
                                k.value
                                for k in node.value.keys
                                if isinstance(k, ast.Constant)
                                and isinstance(k.value, str)
                            ]
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bound.add(node.target.id)
        for getattr_def in getattr_defs:
            for inner in ast.walk(getattr_def):
                if (
                    isinstance(inner, ast.Constant)
                    and isinstance(inner.value, str)
                    and inner.value.isidentifier()
                ):
                    lazy.add(inner.value)
                elif isinstance(inner, ast.Name) and inner.id in dict_keys:
                    lazy.update(dict_keys[inner.id])
        return bound, candidates, lazy


class MetricNameDrift(Rule):
    """REP004: metric families vs. the observability catalogue.

    Exporters are generic (they serialize whatever the registry
    holds), so the *names* are the contract: every family declared via
    ``registry.counter/gauge/histogram/timer/span("name", ...)`` must
    appear in ``docs/observability.md``, and every name catalogued
    there must still be declared somewhere in the linted tree.  A
    rename that touches only one side orphans dashboards silently.
    """

    rule_id = "REP004"
    description = "metric-name drift between code and docs/observability.md"

    #: Repository-relative location of the catalogue.
    DOC_PATH = os.path.join("docs", "observability.md")

    def __init__(self) -> None:
        self._declared: Dict[str, Tuple[str, int, int]] = {}
        self._consumed: Dict[str, Tuple[str, int, int]] = {}

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            site = (ctx.path, node.lineno, node.col_offset)
            if node.func.attr in _REGISTRY_DECLARATORS:
                self._declared.setdefault(name, site)
                if node.func.attr == "span":
                    # span() implicitly creates a companion counter.
                    self._declared.setdefault(f"{name}_total", site)
            elif node.func.attr == "get" and self._is_registry(node.func.value):
                # Consumer side: reading a family by name must refer to
                # a declared one, or the dashboard/test reads nothing.
                self._consumed.setdefault(name, site)
        return ()

    @staticmethod
    def _is_registry(node: ast.AST) -> bool:
        """True when *node* is a ``...registry``-named receiver."""
        if isinstance(node, ast.Attribute):
            return node.attr.lower().endswith("registry")
        if isinstance(node, ast.Name):
            return node.id.lower().endswith("registry")
        return False

    def finish(self, project: ProjectContext) -> Iterable[Violation]:
        declared, self._declared = self._declared, {}
        consumed, self._consumed = self._consumed, {}
        if project.root is None:
            return
        doc_path = os.path.join(project.root, self.DOC_PATH)
        if not os.path.exists(doc_path) or not declared:
            return  # tree under lint has no catalogue to agree with
        with open(doc_path, "r", encoding="utf-8") as handle:
            doc_lines = handle.read().splitlines()
        documented = self._catalogue_names(doc_lines)
        for name, (path, line, col) in sorted(consumed.items()):
            if name not in declared and name not in documented:
                yield Violation(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"metric family {name!r} is read via registry.get"
                        " but neither declared in code nor catalogued in"
                        f" {self.DOC_PATH}"
                    ),
                )
        for name, (path, line, col) in sorted(declared.items()):
            if name not in documented:
                yield Violation(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"metric family {name!r} is declared in code but"
                        f" missing from {self.DOC_PATH}"
                    ),
                )
        for name, line in sorted(documented.items()):
            if name not in declared:
                yield Violation(
                    rule_id=self.rule_id,
                    path=doc_path,
                    line=line,
                    col=0,
                    message=(
                        f"metric family {name!r} is catalogued but no"
                        " linted source declares it"
                    ),
                )

    @staticmethod
    def _catalogue_names(doc_lines: Sequence[str]) -> Dict[str, int]:
        """Backticked tokens in the first column of catalogue tables."""
        names: Dict[str, int] = {}
        in_catalogue = False
        for number, text in enumerate(doc_lines, start=1):
            if text.startswith("## "):
                in_catalogue = text.strip() == "## Metric catalogue"
                continue
            if not in_catalogue or not text.lstrip().startswith("|"):
                continue
            cells = text.split("|")
            if len(cells) < 2:
                continue
            for token in _METRIC_TOKEN.findall(cells[1]):
                names.setdefault(token, number)
        return names


class MutableDefaultArgument(Rule):
    """REP005: mutable default arguments.

    A ``def f(acc=[])`` default is evaluated once and shared across
    calls — state leaks between invocations (and between tests).  Use
    ``None`` plus an in-body default.
    """

    rule_id = "REP005"
    description = "mutable default argument; use None and fill in the body"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield Violation(
                        rule_id=self.rule_id,
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                        message=(
                            f"mutable default argument in {label!r};"
                            " default to None and construct inside the body"
                        ),
                    )

    @classmethod
    def _is_mutable(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in cls._MUTABLE_CALLS
        )


#: Emulation entrypoints kept only as deprecated wrappers around
#: :func:`repro.nids.run_emulation`.
_DEPRECATED_ENTRYPOINTS = frozenset(
    {
        "emulate_edge",
        "emulate_coordinated",
        "emulate_edge_stream",
        "emulate_coordinated_stream",
    }
)

#: Callables still accepting legacy bare-keyword shims, and the shim
#: keywords themselves.  ``EmulationConfig(...)`` fields of the same
#: names are the supported spelling and are not flagged.
_LEGACY_SHIM_KEYWORDS: Dict[str, frozenset] = {
    "BroInstance": frozenset(
        {"cost_model", "run_detectors", "fine_grained", "batch_dispatch"}
    ),
    "compare_deployments": frozenset({"cost_model"}),
}


class DeprecatedEmulationAPI(Rule):
    """REP006: deprecated emulation entrypoints and keyword shims.

    The four ``emulate_*`` names survive only as
    :class:`DeprecationWarning`-emitting wrappers around
    :func:`repro.nids.run_emulation`, and the bare keywords they (and
    :class:`~repro.nids.engine.BroInstance` /
    :func:`~repro.nids.emulation.compare_deployments`) still accept are
    shims around :class:`~repro.nids.engine.EmulationConfig`.  In-repo
    code must use the new surface so the wrappers can eventually be
    deleted without a migration sweep; suppress with
    ``# repnoqa: REP006`` only where the deprecation path itself is
    under test.
    """

    rule_id = "REP006"
    description = "deprecated emulation entrypoint/shim; use run_emulation + config="

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        aliases = UnseededRandomness._module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            resolved = UnseededRandomness._resolve(dotted, aliases)
            tail = resolved.rsplit(".", 1)[-1]
            if tail in _DEPRECATED_ENTRYPOINTS:
                yield Violation(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"`{tail}()` is a deprecated wrapper; call"
                        " run_emulation(traffic, modules_or_deployment,"
                        " config=...) instead"
                    ),
                )
                continue
            shim_keywords = _LEGACY_SHIM_KEYWORDS.get(tail)
            if not shim_keywords:
                continue
            for keyword in node.keywords:
                if keyword.arg in shim_keywords:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=ctx.path,
                        line=keyword.value.lineno,
                        col=keyword.value.col_offset,
                        message=(
                            f"legacy keyword {keyword.arg!r} on {tail}() is a"
                            " deprecated shim; pass"
                            f" config=EmulationConfig({keyword.arg}=...)"
                        ),
                    )


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, REP001 first."""
    return [
        FloatLiteralEquality(),
        UnseededRandomness(),
        FacadeDrift(),
        MetricNameDrift(),
        MutableDefaultArgument(),
        DeprecatedEmulationAPI(),
    ]


#: Stable id -> one-line description, for ``--list-rules`` and docs.
RULE_CATALOGUE: Dict[str, str] = {
    rule.rule_id: rule.description for rule in default_rules()
}
