"""Whole-package import- and call-graph construction (AST only).

This module turns a set of Python files into a :class:`CallGraph`: every
module parsed (via the shared :mod:`repro.analysis.astcache` store),
every function/method registered under a canonical qualified name
(``pkg.mod.func`` / ``pkg.mod.Class.method``), and a conservative edge
set linking callers to callees.  Nothing is imported or executed — the
graph is built for the flow rules (REP201–REP206), which need to answer
"is this call site reachable from ``run_shard_payload``?" without
running any traffic.

Resolution handles the shapes that actually occur in this repo:

* plain and aliased imports, including relative imports
  (``from ..obs import metrics``);
* facade re-exports — ``repro.api`` imports a symbol, callers go
  through the facade name, the graph follows the chain to the defining
  module;
* PEP 562 lazy modules — a module-level ``__getattr__`` backed either
  by a ``_LAZY``-style dict table (``{"lint": "lint"}``) or by literal
  string dispatch (``if name in ("api", ...)``) resolves to the lazy
  submodule;
* function references passed as values (``pool.submit(run_shard_payload,
  ...)``, ``functools.partial(run_cell, spec)``) — these produce edges
  exactly like direct calls, because a spawn pool *will* call them;
* unresolvable method calls (``obj.merge(...)``) — these fall back to
  an edge to *every* known function with that bare method name.  That
  over-approximation keeps reachability sound: a merge implementation
  cannot hide behind dynamic dispatch.

Nested functions are folded into their enclosing function's body (their
calls count as the parent's), which matches how reachability is used.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astcache import ASTStore, DEFAULT_STORE

_MAX_RESOLVE_HOPS = 24

_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str) -> str:
    """Canonical dotted module name for *path*.

    Walks up from the file through directories that contain an
    ``__init__.py``; the topmost such directory is the package root.
    ``src/repro/nids/shard.py`` → ``repro.nids.shard``;
    ``src/repro/nids/__init__.py`` → ``repro.nids``; a stray script in
    no package keeps just its stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method, addressed by canonical qualname."""

    qualname: str
    module: str
    name: str  # bare name ("merge"), used for the method fallback
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    lineno: int
    class_name: Optional[str] = None
    calls: Set[str] = field(default_factory=set)  # resolved callee qualnames
    bare_method_calls: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Per-module facts the resolver and the flow rules consume."""

    name: str
    path: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    #: top-level ``NAME = "literal"`` string constants
    string_constants: Dict[str, str] = field(default_factory=dict)
    #: names of top-level functions and classes defined here
    top_level: Set[str] = field(default_factory=set)
    #: PEP 562 lazy exports: attr -> (target_module, symbol or None)
    lazy_exports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    #: module-level mutable-container globals: name -> lineno
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    #: module-level globals rebound via a ``global`` statement somewhere
    rebound_globals: Dict[str, int] = field(default_factory=dict)
    #: functions (bare or Class.method key) whose return annotation is set-like
    set_returning: Set[str] = field(default_factory=set)
    #: per class: self attributes assigned/annotated as sets
    set_attrs: Dict[str, Set[str]] = field(default_factory=dict)

    def resolve_constant(self, name: str) -> Optional[str]:
        return self.string_constants.get(name)


def _is_set_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    text = dotted_name(node)
    if text is None and isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].strip()
    if text is None:
        return False
    leaf = text.rsplit(".", 1)[-1]
    return leaf in {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}


def _is_mutable_container_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        text = dotted_name(node.func)
        if text is not None and text.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _collect_lazy_exports(module: ModuleInfo, getattr_fn: ast.FunctionDef) -> None:
    """Populate ``module.lazy_exports`` from a module-level ``__getattr__``.

    Two shapes are understood (both live in this repo):

    * a dict table consulted by the function — module-level dict
      literals mapping ``"attr"`` to either ``"submodule"``
      (``repro.analysis._LAZY``; the symbol keeps the attr name) or an
      explicit ``("target.module", "symbol")`` tuple
      (``repro.nids._LAZY_EXPORTS``);
    * literal dispatch — ``if name in ("api", "analysis"):`` or
      ``if name == "api":`` followed by an import of the submodule
      (``repro.__getattr__``).
    """
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Dict):
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    continue
                attr = key.value
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    # ``getattr(import_module(sub), attr)``: the symbol
                    # keeps the attr name.  A dotted value is already a
                    # canonical module path; a bare one is a sibling.
                    sub = value.value
                    target = sub if "." in sub else f"{module.name}.{sub}"
                    module.lazy_exports.setdefault(attr, (target, attr))
                elif (
                    isinstance(value, (ast.Tuple, ast.List))
                    and len(value.elts) == 2
                    and all(
                        isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                        for elt in value.elts
                    )
                ):
                    target_module, symbol = (
                        value.elts[0].value,  # type: ignore[union-attr]
                        value.elts[1].value,  # type: ignore[union-attr]
                    )
                    if "." not in target_module:
                        target_module = f"{module.name}.{target_module}"
                    module.lazy_exports.setdefault(attr, (target_module, symbol))
    # Literal string dispatch inside the __getattr__ body: every string
    # constant that is a valid identifier is assumed to name a lazy
    # submodule.  Conservative, but the repo's facades follow it.
    for node in ast.walk(getattr_fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
            if text.isidentifier():
                module.lazy_exports.setdefault(text, (f"{module.name}.{text}", None))


def _register_aliases(module: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            module.aliases[bound] = target
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            # Resolve the relative base against this module's package.
            pkg_parts = module.name.split(".")
            if not module.path.endswith("__init__.py"):
                pkg_parts = pkg_parts[:-1]
            if node.level > 1:
                pkg_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
            base = ".".join(pkg_parts)
        else:
            base = ""
        stem = node.module or ""
        prefix = ".".join(p for p in (base, stem) if p)
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            module.aliases[bound] = f"{prefix}.{alias.name}" if prefix else alias.name


def _scan_module(name: str, path: str, tree: ast.Module) -> Tuple[ModuleInfo, List[FunctionInfo]]:
    module = ModuleInfo(name=name, path=path, tree=tree)
    functions: List[FunctionInfo] = []
    getattr_fn: Optional[ast.FunctionDef] = None

    for stmt in tree.body:
        _register_aliases(module, stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.top_level.add(stmt.name)
            if stmt.name == "__getattr__" and isinstance(stmt, ast.FunctionDef):
                getattr_fn = stmt
            functions.append(
                FunctionInfo(
                    qualname=f"{name}.{stmt.name}",
                    module=name,
                    name=stmt.name,
                    node=stmt,
                    path=path,
                    lineno=stmt.lineno,
                )
            )
            if _is_set_annotation(stmt.returns):
                module.set_returning.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            module.top_level.add(stmt.name)
            attrs: Set[str] = set()
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        FunctionInfo(
                            qualname=f"{name}.{stmt.name}.{item.name}",
                            module=name,
                            name=item.name,
                            node=item,
                            path=path,
                            lineno=item.lineno,
                            class_name=stmt.name,
                        )
                    )
                    if _is_set_annotation(item.returns):
                        module.set_returning.add(f"{stmt.name}.{item.name}")
                    for sub in ast.walk(item):
                        target: Optional[ast.AST] = None
                        value: Optional[ast.AST] = None
                        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                            target, value = sub.targets[0], sub.value
                        elif isinstance(sub, ast.AnnAssign):
                            target, value = sub.target, sub.value
                            if _is_set_annotation(sub.annotation) and _is_self_attr(target):
                                attrs.add(target.attr)  # type: ignore[union-attr]
                        if (
                            target is not None
                            and value is not None
                            and _is_self_attr(target)
                            and _is_set_expr_shallow(value)
                        ):
                            attrs.add(target.attr)  # type: ignore[union-attr]
                elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    if _is_set_annotation(item.annotation):
                        attrs.add(item.target.id)
            if attrs:
                module.set_attrs[stmt.name] = attrs
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                module.top_level.add(target.id)
                if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str):
                    module.string_constants[target.id] = stmt.value.value
                if _is_mutable_container_expr(stmt.value):
                    module.mutable_globals[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            module.top_level.add(stmt.target.id)
            if stmt.value is not None and _is_mutable_container_expr(stmt.value):
                module.mutable_globals[stmt.target.id] = stmt.lineno

    # ``global NAME`` anywhere in the module marks NAME as process state
    # that functions rebind (the ambient-registry pattern).
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for gname in node.names:
                module.rebound_globals.setdefault(gname, node.lineno)

    if getattr_fn is not None:
        _collect_lazy_exports(module, getattr_fn)
    return module, functions


def _is_self_attr(node: Optional[ast.AST]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_set_expr_shallow(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        text = dotted_name(node.func)
        if text is not None and text.rsplit(".", 1)[-1] in {"set", "frozenset"}:
            return True
    return False


class CallGraph:
    """Functions, modules, and conservative call/reference edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_bare_name: Dict[str, List[str]] = {}
        self.errors: List[str] = []

    # -- construction -------------------------------------------------

    def add_module(self, name: str, path: str, tree: ast.Module) -> None:
        module, functions = _scan_module(name, path, tree)
        self.modules[name] = module
        for info in functions:
            self.functions[info.qualname] = info
            self.by_bare_name.setdefault(info.name, []).append(info.qualname)

    def link(self) -> None:
        """Populate call/reference edges for every registered function."""
        for info in self.functions.values():
            self._link_function(info)

    def _link_function(self, info: FunctionInfo) -> None:
        module = self.modules[info.module]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                self._link_call(info, module, node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                # Function referenced as a value (submitted to a pool,
                # stored in a table): treat as a potential call.
                resolved = self.resolve(module, node.id, info)
                if resolved is not None and resolved in self.functions:
                    info.calls.add(resolved)

    def _link_call(self, info: FunctionInfo, module: ModuleInfo, node: ast.Call) -> None:
        text = dotted_name(node.func)
        if text is not None:
            resolved = self.resolve(module, text, info)
            if resolved is not None and resolved in self.functions:
                info.calls.add(resolved)
                return
            canonical = self.canonical_text(module, text)
            if canonical in {"functools.partial", "partial"}:
                if node.args:
                    inner = dotted_name(node.args[0])
                    if inner is not None:
                        bound = self.resolve(module, inner, info)
                        if bound is not None and bound in self.functions:
                            info.calls.add(bound)
                return
        if isinstance(node.func, ast.Attribute):
            # Unresolvable method call: fall back to every function with
            # this bare name (sound over-approximation).
            info.bare_method_calls.add(node.func.attr)
            for qualname in self.by_bare_name.get(node.func.attr, ()):  # pragma: no branch
                info.calls.add(qualname)

    # -- resolution ---------------------------------------------------

    def canonical_text(self, module: ModuleInfo, dotted: str) -> str:
        """Alias-expand the head of *dotted* without requiring a target."""
        head, _, rest = dotted.partition(".")
        base = module.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base

    def resolve(
        self,
        module: ModuleInfo,
        dotted: str,
        context: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Canonical function qualname for *dotted* as written in *module*.

        Follows aliases, re-export facades, and PEP 562 lazy exports up
        to a hop limit.  ``self.method`` resolves within the enclosing
        class when *context* is a method.
        """
        parts = dotted.split(".")
        if context is not None and context.class_name and parts[0] in {"self", "cls"}:
            if len(parts) >= 2:
                qualname = f"{module.name}.{context.class_name}.{parts[1]}"
                if qualname in self.functions:
                    return qualname
            return None
        head, rest = parts[0], parts[1:]
        if head in module.aliases:
            target = module.aliases[head]
        elif f"{module.name}.{head}" in self.functions or head in module.top_level:
            target = f"{module.name}.{head}"
        else:
            return None
        return self._resolve_canonical(".".join([target] + rest))

    def _resolve_canonical(self, dotted: str) -> Optional[str]:
        for _ in range(_MAX_RESOLVE_HOPS):
            if dotted in self.functions:
                return dotted
            owner, remainder = self._split_module(dotted)
            if owner is None or not remainder:
                return None
            module = self.modules[owner]
            head, tail = remainder[0], remainder[1:]
            qualname = f"{owner}.{head}"
            if qualname in self.functions and not tail:
                return qualname
            if tail and f"{owner}.{head}.{tail[0]}" in self.functions:
                # Class attribute access: Module.Class.method
                return f"{owner}.{head}.{tail[0]}"
            if head in module.aliases:
                dotted = ".".join([module.aliases[head]] + tail)
                continue
            if head in module.lazy_exports:
                target_module, symbol = module.lazy_exports[head]
                pieces = [target_module] + ([symbol] if symbol else []) + tail
                dotted = ".".join(pieces)
                continue
            return None
        return None

    def _split_module(self, dotted: str) -> Tuple[Optional[str], List[str]]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate, parts[cut:]
        return None, parts

    # -- reachability -------------------------------------------------

    def reachable(self, entrypoints: Iterable[str]) -> Dict[str, str]:
        """BFS closure: function qualname -> the entrypoint that reaches it.

        Unknown entrypoints are skipped (recorded in ``errors``) so a
        config naming a function the repo has since renamed degrades
        loudly in the report rather than crashing the pass.
        """
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for entry in entrypoints:
            if entry not in self.functions:
                self.errors.append(f"unknown entrypoint: {entry}")
                continue
            if entry not in origin:
                origin[entry] = entry
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            for callee in self.functions[current].calls:
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin


def build_callgraph(
    files: Sequence[str],
    store: Optional[ASTStore] = None,
) -> CallGraph:
    """Parse *files* (via the shared store) and return a linked graph."""
    store = store if store is not None else DEFAULT_STORE
    graph = CallGraph()
    for path in files:
        try:
            _, tree = store.get(path)
        except (OSError, SyntaxError) as exc:
            graph.errors.append(f"{path}: {exc}")
            continue
        graph.add_module(module_name_for(path), os.path.abspath(path), tree)
    graph.link()
    return graph
