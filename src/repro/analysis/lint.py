"""The domain-aware AST lint engine (``repro analysis lint``).

The reproduction's correctness rests on invariants that ordinary
linters cannot see: hash-range boundaries compared with ``==`` break
the Fig. 2 partition an ulp at a time, an unseeded RNG silently
de-reproduces Figs. 6-11, and a metric family renamed in code but not
in ``docs/observability.md`` orphans every dashboard built on the
catalogue.  This module provides the small rule engine those domain
rules (:mod:`repro.analysis.rules`) plug into:

* :class:`Rule` — the protocol a rule implements: a stable ``rule_id``
  (``REPnnn``), a one-line ``description``, a per-file
  :meth:`~Rule.visit_file` hook, and an optional cross-file
  :meth:`~Rule.finish` hook for whole-project rules;
* :func:`lint_paths` — walks ``.py`` files, parses each once, runs the
  rules, and filters suppressed violations;
* suppression comments — ``# repnoqa`` / ``# repnoqa: REP001`` on the
  offending line, ``# repnoqa-file`` / ``# repnoqa-file: REP004``
  anywhere in the file;
* :func:`render_text` / :func:`render_json` — stable human and
  machine output (schema version 1).

Exit-code contract (used by CI): 0 clean, 1 violations, 2 bad usage.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astcache import ASTStore, DEFAULT_STORE

#: JSON output schema version (``render_json``).
LINT_SCHEMA_VERSION = 1

#: Inline / file-level suppression markers.
_SUPPRESS_LINE = re.compile(r"#\s*repnoqa(?::\s*(?P<rules>[A-Z0-9, ]+))?")
_SUPPRESS_FILE = re.compile(r"#\s*repnoqa-file(?::\s*(?P<rules>[A-Z0-9, ]+))?")

_RULE_ID = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Violation:
    """One finding: *rule_id* fired at *path*:*line*:*col*."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: REPnnn message`` (the text output row)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class ProjectContext:
    """Cross-file state handed to :meth:`Rule.finish`.

    ``root`` is the directory treated as the repository root (where
    ``docs/`` and ``pyproject.toml`` live); whole-project rules resolve
    companion artifacts such as ``docs/observability.md`` against it.
    """

    root: Optional[str]
    files: List[FileContext] = field(default_factory=list)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`description` and override
    :meth:`visit_file` (per-file findings) and/or :meth:`finish`
    (findings that need the whole project, e.g. cross-file drift).
    """

    rule_id: str = "REP000"
    description: str = ""

    def visit_file(self, ctx: FileContext) -> Iterable[Violation]:
        """Findings local to one file (default: none)."""
        return ()

    def finish(self, project: ProjectContext) -> Iterable[Violation]:
        """Findings requiring the full file set (default: none)."""
        return ()


@dataclass
class LintResult:
    """Outcome of one :func:`lint_paths` run."""

    violations: List[Violation]
    files_checked: int
    rule_ids: Tuple[str, ...]
    #: Files that could not be parsed: (path, error message).
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations and no parse errors."""
        return not self.violations and not self.errors


def _parse_suppressions(
    lines: Sequence[str],
) -> Tuple[Dict[int, Optional[Set[str]]], Optional[Set[str]], bool]:
    """Extract suppression comments from raw source lines.

    Returns ``(per_line, file_rules, file_all)`` where ``per_line``
    maps 1-based line numbers to a rule-ID set (``None`` = all rules),
    ``file_rules`` is the file-level suppressed set, and ``file_all``
    means the whole file is exempt from every rule.
    """
    per_line: Dict[int, Optional[Set[str]]] = {}
    file_rules: Set[str] = set()
    file_all = False
    for number, text in enumerate(lines, start=1):
        if "repnoqa" not in text:
            continue
        file_match = _SUPPRESS_FILE.search(text)
        if file_match:
            listed = file_match.group("rules")
            if listed:
                file_rules.update(_split_rules(listed))
            else:
                file_all = True
            continue
        line_match = _SUPPRESS_LINE.search(text)
        if line_match:
            listed = line_match.group("rules")
            per_line[number] = set(_split_rules(listed)) if listed else None
    return per_line, (file_rules or None), file_all


def _split_rules(listed: str) -> List[str]:
    return [token.strip() for token in listed.split(",") if token.strip()]


def _suppressed(
    violation: Violation,
    per_line: Dict[int, Optional[Set[str]]],
    file_rules: Optional[Set[str]],
    file_all: bool,
) -> bool:
    if file_all:
        return True
    if file_rules and violation.rule_id in file_rules:
        return True
    if violation.line in per_line:
        allowed = per_line[violation.line]
        return allowed is None or violation.rule_id in allowed
    return False


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".venv")
                ]
                for name in filenames:
                    if name.endswith(".py"):
                        found.add(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            found.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(found)


def find_project_root(start: str) -> Optional[str]:
    """Walk upward from *start* to the directory holding
    ``pyproject.toml`` (or ``.git``); ``None`` when no marker found."""
    probe = os.path.abspath(start)
    if os.path.isfile(probe):
        probe = os.path.dirname(probe)
    while True:
        if os.path.exists(os.path.join(probe, "pyproject.toml")) or (
            os.path.isdir(os.path.join(probe, ".git"))
        ):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return None
        probe = parent


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
    store: Optional[ASTStore] = None,
) -> LintResult:
    """Run *rules* over every ``.py`` file under *paths*.

    *root* anchors whole-project rules (docs lookups); when omitted it
    is discovered by walking up from the first path.  Violations come
    back sorted by (path, line, col, rule) with suppressions applied.
    Parsed trees come from *store* (default: the process-wide
    :data:`~repro.analysis.astcache.DEFAULT_STORE`), so a subsequent
    ``analysis flow`` run over the same tree re-parses nothing.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    seen: Set[str] = set()
    for rule in rules:
        if not _RULE_ID.match(rule.rule_id):
            raise ValueError(f"unstable rule id {rule.rule_id!r}")
        if rule.rule_id in seen:
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        seen.add(rule.rule_id)

    files = iter_python_files(paths)
    if root is None and files:
        root = find_project_root(files[0])
    if store is None:
        store = DEFAULT_STORE
    project = ProjectContext(root=root)
    violations: List[Violation] = []
    errors: List[Tuple[str, str]] = []
    suppressions: Dict[str, Tuple] = {}
    for path in files:
        try:
            source, tree = store.get(path)
        except SyntaxError as error:
            errors.append((path, f"syntax error: {error.msg} (line {error.lineno})"))
            continue
        except OSError as error:
            errors.append((path, f"read error: {error}"))
            continue
        ctx = FileContext(path=path, source=source, tree=tree)
        suppressions[path] = _parse_suppressions(ctx.lines)
        project.files.append(ctx)
        for rule in rules:
            violations.extend(rule.visit_file(ctx))
    for rule in rules:
        violations.extend(rule.finish(project))

    kept = []
    for violation in violations:
        per_line, file_rules, file_all = suppressions.get(
            violation.path, ({}, None, False)
        )
        if not _suppressed(violation, per_line, file_rules, file_all):
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return LintResult(
        violations=kept,
        files_checked=len(files),
        rule_ids=tuple(rule.rule_id for rule in rules),
        errors=errors,
    )


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col`` row per violation."""
    rows = [violation.render() for violation in result.violations]
    rows.extend(f"{path}: ERROR {message}" for path, message in result.errors)
    summary = (
        f"{len(result.violations)} violation(s) in"
        f" {result.files_checked} file(s)"
    )
    return "\n".join(rows + [summary])


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, version 1)."""
    return json.dumps(
        {
            "version": LINT_SCHEMA_VERSION,
            "files_checked": result.files_checked,
            "rules": list(result.rule_ids),
            "violations": [
                {
                    "rule": v.rule_id,
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in result.violations
            ],
            "errors": [
                {"path": path, "message": message}
                for path, message in result.errors
            ],
        },
        indent=2,
        sort_keys=True,
    )
