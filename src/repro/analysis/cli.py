"""Command-line front end for the static-analysis subsystem.

Three subcommands, shared by ``repro analysis ...`` and
``python -m repro.analysis ...``:

* ``lint`` — run the REP001-REP006 AST rules over source trees;
* ``flow`` — run the cross-module determinism / spawn-safety /
  protocol-conformance flow pass (REP201-REP206) over a package;
* ``verify`` — statically verify planning artifacts (manifest sets,
  LP assignments) against the deployment invariants (REP101-REP108).

``lint`` and ``flow`` share one parsed-AST store, so running both in
one process parses the package exactly once.

Exit codes: 0 clean, 1 violations/findings, 2 usage or load errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .flow import FLOW_CATALOGUE, flow_paths
from .lint import lint_paths, render_json, render_text
from .rules import RULE_CATALOGUE, default_rules
from .verify import VERIFIER_RULES, verify_artifact_files


def cmd_lint(args: argparse.Namespace) -> int:
    """Handle ``analysis lint``."""
    if args.list_rules:
        for rule_id, description in sorted(RULE_CATALOGUE.items()):
            print(f"{rule_id}  {description}")
        return 0
    rules = default_rules()
    if args.select:
        wanted = {token.strip() for token in args.select.split(",")}
        unknown = wanted - set(RULE_CATALOGUE)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]
    try:
        result = lint_paths(args.paths, rules=rules, root=args.root)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def cmd_flow(args: argparse.Namespace) -> int:
    """Handle ``analysis flow``."""
    if args.list_rules:
        for rule_id, description in sorted(FLOW_CATALOGUE.items()):
            print(f"{rule_id}  {description}")
        return 0
    try:
        result = flow_paths(args.paths, root=args.root)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.select:
        wanted = {token.strip() for token in args.select.split(",")}
        unknown = wanted - set(FLOW_CATALOGUE)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        result.violations = [
            violation
            for violation in result.violations
            if violation.rule_id in wanted
        ]
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Handle ``analysis verify``."""
    if args.list_rules:
        for rule_id, description in sorted(VERIFIER_RULES.items()):
            print(f"{rule_id}  {description}")
        return 0
    if not args.manifests:
        print("error: --manifests is required", file=sys.stderr)
        return 2
    try:
        report = verify_artifact_files(
            args.manifests,
            assignment_path=args.assignment,
            topology_label=args.topology,
        )
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot verify artifacts: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` / ``verify`` subcommands to *parser*."""
    sub = parser.add_subparsers(dest="analysis_command", required=True)

    lint = sub.add_parser(
        "lint", help="run the domain AST lint rules over source trees"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument(
        "--select", help="comma-separated rule IDs to run (default: all)"
    )
    lint.add_argument(
        "--root",
        help="project root for cross-file rules (default: auto-detect)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.set_defaults(func=cmd_lint)

    flow = sub.add_parser(
        "flow",
        help="run the cross-module determinism & spawn-safety flow pass"
        " (REP201-REP206)",
    )
    flow.add_argument(
        "paths", nargs="*", default=["src"], help="package files or directories"
    )
    flow.add_argument("--format", choices=["text", "json"], default="text")
    flow.add_argument(
        "--select", help="comma-separated rule IDs to report (default: all)"
    )
    flow.add_argument(
        "--root",
        help="project root for docs lookups (default: auto-detect)",
    )
    flow.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    flow.set_defaults(func=cmd_flow)

    verify = sub.add_parser(
        "verify",
        help="statically verify planning artifacts (manifests, assignment)",
    )
    verify.add_argument(
        "--manifests", help="dump_manifests JSON artifact to verify"
    )
    verify.add_argument(
        "--assignment", help="dump_assignment JSON artifact (enables d* checks)"
    )
    verify.add_argument(
        "--topology",
        help="topology label (e.g. internet2) to reconstruct forwarding"
        " paths for the off-path check",
    )
    verify.add_argument("--format", choices=["text", "json"], default="text")
    verify.add_argument(
        "--list-rules", action="store_true", help="print the invariant catalogue"
    )
    verify.set_defaults(func=cmd_verify)


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Domain static analysis: AST lint + deployment-artifact"
        " verification",
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
