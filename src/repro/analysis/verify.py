"""Static deployment-artifact verification (``repro analysis verify``).

Given the *artifacts* of planning — an LP assignment, a manifest set,
a NIPS rounding solution, or a manifest delta — prove the paper's
deployment invariants **without running any traffic**:

* the hash ranges of every coordination unit partition ``[0, 1]``
  exactly ``r`` times, with no node overlapping itself and the union
  topping out at exactly 1.0 (Fig. 2 / Section 2.5);
* ``d_ikj`` mass only lands on nodes of the unit's forwarding path
  ``P_ik`` (Section 2.3 — an off-path node never sees the traffic it
  was assigned);
* NIPS rule enablement respects per-node TCAM budgets, and nodes only
  sample for rules they enabled (Section 3.2, Eqs. 8 and 12);
* a manifest delta applies cleanly to its base epoch.

Each violated invariant maps to a stable rule ID (REP101-REP108, the
``docs/static_analysis.md`` catalogue) so CI and the controller's
fail-closed gate can report precisely *which* invariant broke.  The
checks here are the shift-left twin of the runtime asserts in
:func:`repro.core.manifest.verify_manifests`: they accept plain data,
return findings instead of raising on the first problem, and are wired
into :class:`repro.control.Controller` as a pre-distribution gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.manifest import EntryKey, NodeManifest
from ..core.manifest_io import SCHEMA_VERSION, apply_manifest_delta
from ..core.nids_lp import NIDSAssignment
from ..core.units import CoordinationUnit

if TYPE_CHECKING:  # heavy NIPS imports only for type checkers
    from ..core.nips_manifest import NIPSNodeManifest
    from ..core.nips_milp import NIPSProblem, NIPSSolution
from ..hashing.ranges import (
    EPSILON,
    HashRange,
    are_disjoint,
    covers_unit_interval,
)

#: Numeric tolerance for mass sums (matches the runtime verifier).
MASS_TOL = 1e-6

# -- the verifier rule catalogue ------------------------------------------
REP101 = "REP101"  #: coverage mass does not sum to the expected fold
REP102 = "REP102"  #: overlapping hash ranges
REP103 = "REP103"  #: range union does not top out at exactly 1.0
REP104 = "REP104"  #: mass assigned to a node off the unit's path
REP105 = "REP105"  #: per-node TCAM budget exceeded
REP106 = "REP106"  #: manifest delta does not apply cleanly to its base
REP107 = "REP107"  #: manifest mass disagrees with the solved d*
REP108 = "REP108"  #: sampling for a rule the node never enabled

VERIFIER_RULES: Dict[str, str] = {
    REP101: "unit coverage mass does not sum to the expected fold",
    REP102: "overlapping hash ranges",
    REP103: "range union does not top out at exactly 1.0",
    REP104: "mass assigned to a node off the unit's forwarding path",
    REP105: "per-node TCAM budget exceeded",
    REP106: "manifest delta does not apply cleanly to its base epoch",
    REP107: "manifest mass disagrees with the solved d* fractions",
    REP108: "node samples for a rule it never enabled",
}


@dataclass(frozen=True)
class Finding:
    """One violated invariant: *rule_id* at *subject*."""

    rule_id: str
    subject: str
    message: str

    def render(self) -> str:
        """``REPnnn [subject] message`` (the text output row)."""
        return f"{self.rule_id} [{self.subject}] {self.message}"


@dataclass
class VerificationReport:
    """All findings of one verification pass."""

    findings: List[Finding] = field(default_factory=list)
    checks: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every checked invariant held."""
        return not self.findings

    def rule_ids(self) -> List[str]:
        """Distinct violated rule IDs, sorted."""
        return sorted({finding.rule_id for finding in self.findings})

    def render_text(self) -> str:
        """Human-readable report."""
        rows = [finding.render() for finding in self.findings]
        status = "OK" if self.ok else "REJECTED"
        rows.append(
            f"{status}: {len(self.findings)} finding(s) from checks:"
            f" {', '.join(self.checks) or '-'}"
        )
        return "\n".join(rows)

    def render_json(self) -> str:
        """Machine-readable report (stable schema, version 1)."""
        return json.dumps(
            {
                "version": 1,
                "ok": self.ok,
                "checks": list(self.checks),
                "findings": [
                    {
                        "rule": f.rule_id,
                        "subject": f.subject,
                        "message": f.message,
                    }
                    for f in self.findings
                ],
            },
            indent=2,
            sort_keys=True,
        )

    def raise_for_findings(self) -> None:
        """Raise :class:`ManifestRejectedError` unless everything held."""
        if not self.ok:
            raise ManifestRejectedError(self)


class ManifestRejectedError(ValueError):
    """A deployment artifact failed static verification.

    Raised by :meth:`VerificationReport.raise_for_findings`; the
    controller's pre-distribution gate catches it, counts the
    rejection, and keeps the previous configuration active.
    """

    def __init__(self, report: VerificationReport) -> None:
        self.report = report
        summary = "; ".join(
            finding.render() for finding in report.findings[:3]
        )
        extra = len(report.findings) - 3
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"deployment artifact rejected: {summary}")


def _unit_label(ident: EntryKey) -> str:
    class_name, key = ident
    return f"{class_name}/{','.join(key)}"


# -- NIDS manifest invariants ---------------------------------------------
def check_partition(
    units: Sequence[CoordinationUnit],
    manifests: Mapping[str, NodeManifest],
) -> List[Finding]:
    """Fig. 2 partition: disjoint per node, exact r-fold cover, top at 1.0.

    Unlike the runtime :func:`~repro.core.manifest.verify_manifests`,
    the sweep collects ranges from **every** manifest in the set — a
    corrupted entry on a non-eligible node must not escape the count.
    """
    findings: List[Finding] = []
    for unit in units:
        label = _unit_label(unit.ident)
        all_pieces: List[HashRange] = []
        total = 0.0
        for node in sorted(manifests):
            pieces = [
                p
                for p in manifests[node].ranges(unit.class_name, unit.key)
                if not p.empty
            ]
            if not are_disjoint(pieces):
                findings.append(
                    Finding(
                        REP102,
                        f"{label}@{node}",
                        "node's own ranges overlap (same traffic analyzed"
                        " twice at one node)",
                    )
                )
            all_pieces.extend(pieces)
            total += sum(p.length for p in pieces)
        fold = int(round(total))
        if abs(total - fold) > MASS_TOL or fold < 1:
            findings.append(
                Finding(
                    REP101,
                    label,
                    f"total coverage mass {total!r} is not a positive"
                    " integer fold",
                )
            )
            continue
        if not covers_unit_interval(all_pieces, fold=fold):
            findings.append(
                Finding(
                    REP101,
                    label,
                    f"ranges do not cover [0,1] exactly {fold}-fold"
                    " (gap or uneven depth)",
                )
            )
        top = max((p.hi for p in all_pieces), default=0.0)
        if top != 1.0:  # repnoqa: REP001 — generation snaps the top exactly
            findings.append(
                Finding(
                    REP103,
                    label,
                    f"range union tops out at {top!r}, not exactly 1.0"
                    " (ulp sliver above the last boundary)",
                )
            )
    return findings


def check_on_path(
    units: Sequence[CoordinationUnit],
    manifests: Mapping[str, NodeManifest],
) -> List[Finding]:
    """Section 2.3: positive mass only on nodes of the unit's path."""
    findings: List[Finding] = []
    eligible: Dict[EntryKey, Set[str]] = {
        unit.ident: set(unit.eligible) for unit in units
    }
    for node in sorted(manifests):
        for ident, pieces in sorted(manifests[node].entries.items()):
            mass = sum(p.length for p in pieces)
            if mass <= EPSILON:
                continue
            label = _unit_label(ident)
            if ident not in eligible:
                findings.append(
                    Finding(
                        REP104,
                        f"{label}@{node}",
                        "manifest entry for a unit absent from the plan",
                    )
                )
            elif node not in eligible[ident]:
                findings.append(
                    Finding(
                        REP104,
                        f"{label}@{node}",
                        f"node holds {mass:.6f} of the unit's hash space"
                        " but is not on its forwarding path",
                    )
                )
    return findings


def check_assignment(
    units: Sequence[CoordinationUnit],
    assignment: NIDSAssignment,
) -> List[Finding]:
    """Eqs. 1 and 6 on the raw ``d*`` profile, plus the path constraint."""
    findings: List[Finding] = []
    eligible: Dict[EntryKey, Set[str]] = {
        unit.ident: set(unit.eligible) for unit in units
    }
    sums: Dict[EntryKey, float] = {}
    for (class_name, key, node), fraction in sorted(assignment.fractions.items()):
        if fraction <= EPSILON:
            continue
        ident = (class_name, key)
        label = _unit_label(ident)
        if fraction < -EPSILON or fraction > 1.0 + EPSILON:
            findings.append(
                Finding(
                    REP101,
                    f"{label}@{node}",
                    f"fraction {fraction!r} outside [0, 1] (Eq. 6)",
                )
            )
        if ident in eligible and node not in eligible[ident]:
            findings.append(
                Finding(
                    REP104,
                    f"{label}@{node}",
                    f"d* assigns {fraction:.6f} to a node off the unit's"
                    " forwarding path",
                )
            )
        sums[ident] = sums.get(ident, 0.0) + fraction
    for unit in units:
        expected = assignment.coverage.get(unit.ident, 1.0)
        total = sums.get(unit.ident, 0.0)
        if abs(total - expected) > MASS_TOL:
            findings.append(
                Finding(
                    REP101,
                    _unit_label(unit.ident),
                    f"d* sums to {total!r}, coverage requires {expected!r}"
                    " (Eq. 1)",
                )
            )
    return findings


def check_manifests_match_assignment(
    units: Sequence[CoordinationUnit],
    assignment: NIDSAssignment,
    manifests: Mapping[str, NodeManifest],
    tol: float = MASS_TOL,
) -> List[Finding]:
    """Per (unit, node): manifest mass must equal the solved ``d*``.

    Only meaningful for *unstabilized* manifests — the controller's
    churn suppression deliberately keeps manifests up to its tolerance
    away from the fresh optimum, so its gate skips this check.
    """
    findings: List[Finding] = []
    for unit in units:
        for node in unit.eligible:
            if node not in manifests:
                continue
            held = manifests[node].assigned_fraction(unit.class_name, unit.key)
            solved = assignment.fraction(unit.class_name, unit.key, node)
            if abs(held - solved) > tol:
                findings.append(
                    Finding(
                        REP107,
                        f"{_unit_label(unit.ident)}@{node}",
                        f"manifest holds {held:.8f} of the hash space but"
                        f" the solution assigned {solved:.8f}",
                    )
                )
    return findings


def verify_deployment(
    units: Sequence[CoordinationUnit],
    manifests: Mapping[str, NodeManifest],
    assignment: Optional[NIDSAssignment] = None,
) -> VerificationReport:
    """Full static verification of a NIDS deployment artifact set.

    Always checks the partition and path invariants; with *assignment*
    also proves the ``d*`` profile feasible and the manifests faithful
    to it.  This is the entry point the controller gate and the CLI
    share.
    """
    findings = check_partition(units, manifests)
    findings.extend(check_on_path(units, manifests))
    checks = ["partition", "on-path"]
    if assignment is not None:
        findings.extend(check_assignment(units, assignment))
        findings.extend(
            check_manifests_match_assignment(units, assignment, manifests)
        )
        checks.extend(["assignment", "assignment-match"])
    return VerificationReport(findings=findings, checks=tuple(checks))


# -- manifest deltas -------------------------------------------------------
def check_delta(base: NodeManifest, delta: Mapping) -> List[Finding]:
    """Prove a :func:`repro.core.manifest_io.manifest_diff` delta applies
    cleanly to its base-epoch manifest."""
    findings: List[Finding] = []
    subject = f"delta@{base.node}"
    version = delta.get("version")
    if version != SCHEMA_VERSION:
        findings.append(
            Finding(
                REP106,
                subject,
                f"schema version {version!r}, expected {SCHEMA_VERSION}",
            )
        )
        return findings
    if delta.get("kind") != "delta":
        findings.append(
            Finding(REP106, subject, f"kind {delta.get('kind')!r} is not 'delta'")
        )
        return findings
    if delta.get("node") != base.node:
        findings.append(
            Finding(
                REP106,
                subject,
                f"delta addressed to {delta.get('node')!r}, base manifest"
                f" belongs to {base.node!r}",
            )
        )
        return findings
    for removal in delta.get("removed", []):
        key = (removal["class"], tuple(removal["unit"]))
        if key not in base.entries:
            findings.append(
                Finding(
                    REP106,
                    subject,
                    f"removes entry {_unit_label(key)} absent from the base"
                    " epoch (delta computed against a different base)",
                )
            )
    try:
        applied = apply_manifest_delta(base, delta)
    except (ValueError, KeyError, TypeError) as error:
        findings.append(
            Finding(REP106, subject, f"delta does not apply: {error}")
        )
        return findings
    for ident, pieces in sorted(applied.entries.items()):
        if not are_disjoint(list(pieces)):
            findings.append(
                Finding(
                    REP102,
                    f"{_unit_label(ident)}@{base.node}",
                    "applying the delta leaves overlapping ranges",
                )
            )
    return findings


def verify_delta(base: NodeManifest, delta: Mapping) -> VerificationReport:
    """Static verification of one manifest delta against its base."""
    return VerificationReport(
        findings=check_delta(base, delta), checks=("delta",)
    )


# -- NIPS artifacts --------------------------------------------------------
def check_nips(
    problem: "NIPSProblem",
    solution: "NIPSSolution",
    manifests: Optional[Mapping[str, "NIPSNodeManifest"]] = None,
) -> List[Finding]:
    """Section 3.2 invariants on a (rounded) NIPS solution.

    TCAM budgets (Eq. 8), enablement coupling ``d <= e`` (Eq. 12),
    per-path mass at most 1 (Eq. 11), and — path by path — that
    filtering mass only lands on nodes the traffic traverses.  With
    *manifests*, additionally prove every node samples only rules in
    its TCAM and holds exactly the solved mass, disjointly.
    """
    findings: List[Finding] = []
    tol = MASS_TOL
    cam_used: Dict[str, float] = {}
    for (i, node), enabled in sorted(solution.e.items()):
        if enabled >= 0.5:
            cam_used[node] = cam_used.get(node, 0.0) + problem.rules[i].cam_req
    for node in sorted(cam_used):
        capacity = problem.topology.node(node).cam_capacity
        if cam_used[node] > capacity + tol:
            findings.append(
                Finding(
                    REP105,
                    f"tcam@{node}",
                    f"enabled rules need {cam_used[node]:g} TCAM slots,"
                    f" capacity is {capacity:g} (Eq. 8)",
                )
            )
    path_mass: Dict[Tuple[int, Tuple[str, str]], float] = {}
    for (i, pair, node), fraction in sorted(solution.d.items()):
        if fraction <= EPSILON:
            continue
        subject = f"rule{i}/{pair[0]}->{pair[1]}@{node}"
        if solution.e.get((i, node), 0.0) < 0.5:
            findings.append(
                Finding(
                    REP108,
                    subject,
                    f"samples {fraction:.6f} of the path without enabling"
                    " the rule (Eq. 12)",
                )
            )
        path = problem.paths.get(pair)
        if path is None or node not in path.nodes:
            findings.append(
                Finding(
                    REP104,
                    subject,
                    "filtering mass on a node the path never traverses",
                )
            )
        path_mass[(i, pair)] = path_mass.get((i, pair), 0.0) + fraction
    for (i, pair), total in sorted(path_mass.items()):
        if total > 1.0 + tol:
            findings.append(
                Finding(
                    REP101,
                    f"rule{i}/{pair[0]}->{pair[1]}",
                    f"sampling fractions sum to {total!r} > 1 (Eq. 11)",
                )
            )
    if manifests is not None:
        findings.extend(_check_nips_manifests(problem, solution, manifests, tol))
    return findings


def _check_nips_manifests(
    problem: "NIPSProblem",
    solution: "NIPSSolution",
    manifests: Mapping[str, "NIPSNodeManifest"],
    tol: float,
) -> List[Finding]:
    findings: List[Finding] = []
    for node in sorted(manifests):
        manifest = manifests[node]
        enabled = set(manifest.enabled_rules)
        for (i, pair), pieces in sorted(manifest.ranges.items()):
            subject = f"rule{i}/{pair[0]}->{pair[1]}@{node}"
            if i not in enabled:
                findings.append(
                    Finding(
                        REP108,
                        subject,
                        "manifest samples a rule outside the node's TCAM set",
                    )
                )
            if not are_disjoint(list(pieces)):
                findings.append(
                    Finding(REP102, subject, "node's own ranges overlap")
                )
            held = sum(p.length for p in pieces)
            solved = solution.d.get((i, pair, node), 0.0)
            if abs(held - solved) > tol:
                findings.append(
                    Finding(
                        REP107,
                        subject,
                        f"manifest holds {held:.8f}, solution assigned"
                        f" {solved:.8f}",
                    )
                )
    return findings


def verify_nips(
    problem: "NIPSProblem",
    solution: "NIPSSolution",
    manifests: Optional[Mapping[str, "NIPSNodeManifest"]] = None,
) -> VerificationReport:
    """Static verification of a NIPS rounding artifact."""
    checks = ["tcam", "enablement", "path-mass", "on-path"]
    if manifests is not None:
        checks.append("nips-manifests")
    return VerificationReport(
        findings=check_nips(problem, solution, manifests),
        checks=tuple(checks),
    )


# -- artifact files (the CLI path) ----------------------------------------
def _pseudo_units(
    idents: Sequence[EntryKey],
    holders: Mapping[EntryKey, Set[str]],
    topology_label: Optional[str],
) -> List[CoordinationUnit]:
    """Reconstruct minimal units from artifact contents.

    The serialized artifacts carry (class, unit-key) idents but not the
    eligible sets; with a topology label the forwarding paths are
    recomputed from the key itself (a two-location key is PATH-scoped,
    a single location is its own observer — Section 2.1), enabling the
    off-path check.  Without a topology the holders stand in and the
    path check is vacuous.
    """
    path_nodes: Optional[Dict[Tuple[str, str], Tuple[str, ...]]] = None
    known: Set[str] = set()
    if topology_label is not None:
        from ..topology.datasets import by_label
        from ..topology.routing import PathSet

        topology = by_label(topology_label)
        paths = PathSet(topology)
        known = set(topology.node_names)
        path_nodes = {}
        for a in topology.node_names:
            for b in topology.node_names:
                if a == b:
                    continue
                forward = paths.path(a, b)
                backward = set(paths.path(b, a).nodes)
                observers = tuple(
                    node for node in forward.nodes if node in backward
                )
                path_nodes[(a, b)] = observers or (a, b)

    units = []
    for ident in idents:
        class_name, key = ident
        eligible: Tuple[str, ...]
        if path_nodes is not None and len(key) == 2 and set(key) <= known:
            a, b = key
            eligible = path_nodes[(a, b)]
        elif path_nodes is not None and len(key) == 1 and set(key) <= known:
            eligible = key
        else:
            eligible = tuple(sorted(holders.get(ident, set())))
        units.append(
            CoordinationUnit(
                class_name=class_name,
                key=key,
                eligible=eligible,
                pkts=0.0,
                items=0.0,
                cpu_work=0.0,
                mem_bytes=0.0,
            )
        )
    return units


def verify_artifact_files(
    manifests_path: str,
    assignment_path: Optional[str] = None,
    topology_label: Optional[str] = None,
) -> VerificationReport:
    """Verify serialized planning artifacts straight from disk.

    *manifests_path* is a :func:`repro.core.manifest_io.dump_manifests`
    JSON file; *assignment_path* optionally adds the solved ``d*``
    profile; *topology_label* (e.g. ``internet2``) reconstructs the
    forwarding paths so off-path mass is caught.
    """
    from ..core.manifest_io import load_assignment, load_manifests

    with open(manifests_path, "r", encoding="utf-8") as handle:
        manifests = load_manifests(handle.read())
    assignment = None
    if assignment_path is not None:
        with open(assignment_path, "r", encoding="utf-8") as handle:
            assignment = load_assignment(handle.read())

    holders: Dict[EntryKey, Set[str]] = {}
    for node, manifest in manifests.items():
        for ident in manifest.entries:
            holders.setdefault(ident, set()).add(node)
    if assignment is not None:
        for (class_name, key, node), fraction in assignment.fractions.items():
            if fraction > EPSILON:
                holders.setdefault((class_name, key), set()).add(node)
    units = _pseudo_units(sorted(holders), holders, topology_label)
    report = verify_deployment(units, manifests, assignment)
    if assignment is None:
        # Without d* the per-unit fold comes from round(total); note it.
        report.checks = report.checks + ("fold-inferred",)
    return report
