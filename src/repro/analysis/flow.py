"""Cross-module determinism & spawn-safety flow pass (REP201–REP206).

The repo's load-bearing guarantee — consolidated, sharded, and streamed
reports bit-identical to the inline oracle — is enforced dynamically by
equality tests.  Those tests can only catch a nondeterminism source the
moment it actually bites.  This pass proves the absence of whole defect
classes *statically*: it builds the package call graph
(:mod:`repro.analysis.callgraph`), computes which functions are
reachable from the report-producing, mergeable-report, and spawn-worker
entrypoints, and flags the patterns that break exactness across process
boundaries:

======  ==============================================================
Rule    What it catches
======  ==============================================================
REP201  wall-clock reads (``time.*``, ``datetime.now``) reachable from
        report entrypoints outside allowlisted ``*_seconds`` /
        ``*_per_second`` timing sites
REP202  nondeterministic iteration feeding reports: bare ``set``
        iteration, unsorted ``os.listdir`` / ``glob`` / ``scandir``,
        ``dict.popitem``
REP203  plain float accumulation (builtin ``sum``, ``+=`` on floats)
        in mergeable-report code where ``ExactSum`` is the contract
REP204  module-level mutable state read or written by spawn-reachable
        functions (state a forked/spawned worker will not share)
REP205  ``os.environ`` reads in worker-reachable code outside the
        config layer
REP206  control-plane protocol drift: message kinds sent on the
        ``Bus`` vs the declared :data:`repro.control.protocol.PROTOCOL`
        table vs the dispatch sites that handle them
======  ==============================================================

Run as ``repro analysis flow src/repro``; same suppression comments
(``# repnoqa: REP204 -- reason``), renderers, and exit-code contract
(0 clean / 1 findings / 2 usage) as ``repro analysis lint``.  Both
passes share the :mod:`~repro.analysis.astcache` parse store, so
running them back to back parses the package once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astcache import ASTStore, DEFAULT_STORE
from .callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    build_callgraph,
    dotted_name,
)
from .lint import (
    LintResult,
    Violation,
    _parse_suppressions,
    _suppressed,
    find_project_root,
    iter_python_files,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

FLOW_RULE_IDS: Tuple[str, ...] = (
    "REP201",
    "REP202",
    "REP203",
    "REP204",
    "REP205",
    "REP206",
)

FLOW_CATALOGUE: Dict[str, str] = {
    "REP201": (
        "wall-clock read reachable from a report entrypoint outside an"
        " allowlisted *_seconds/*_per_second timing site"
    ),
    "REP202": (
        "nondeterministic iteration order (set / os.listdir / glob /"
        " dict.popitem) in report-reachable code"
    ),
    "REP203": (
        "plain float accumulation (sum / +=) in mergeable-report code"
        " where ExactSum is the contract"
    ),
    "REP204": (
        "module-level mutable state touched by spawn-worker-reachable"
        " code (not shared across process boundaries)"
    ),
    "REP205": "os.environ read in worker-reachable code outside the config layer",
    "REP206": (
        "control-plane protocol drift between Bus sends, the declared"
        " PROTOCOL table, and dispatch handling"
    ),
}


@dataclass(frozen=True)
class FlowConfig:
    """Entrypoints and allowlists anchoring the reachability rules.

    The defaults describe this repo; tests analyzing synthetic packages
    pass their own instance.  Unknown entrypoints are reported as
    errors (not silently dropped) so a rename cannot quietly disable a
    rule.
    """

    report_entrypoints: Tuple[str, ...] = (
        "repro.nids.emulation.run_emulation",
        "repro.nids.shard.run_shard_payload",
        "repro.sweep.worker.run_cell_payload",
        "repro.nids.engine.PartialInstanceReport.merge",
        "repro.nids.engine.PartialInstanceReport.finalize",
    )
    merge_entrypoints: Tuple[str, ...] = (
        "repro.nids.engine.PartialInstanceReport.merge",
        "repro.obs.metrics.MetricsRegistry.merge_from",
        "repro.sweep.report.consolidate",
    )
    spawn_entrypoints: Tuple[str, ...] = (
        "repro.nids.shard.run_shard_payload",
        "repro.sweep.worker.run_cell_payload",
    )
    #: Modules allowed to read ``os.environ`` (REP205).
    config_modules: Tuple[str, ...] = ("repro.experiments.config",)
    #: Modules whose wall-clock reads are categorically timing-layer
    #: (REP201) — the metrics primitives themselves.
    timing_allowlist_modules: Tuple[str, ...] = ("repro.obs.metrics",)
    #: Module declaring the control-plane ``PROTOCOL`` table (REP206);
    #: skipped when absent from the analyzed file set.
    protocol_module: str = "repro.control.protocol"
    #: Functions whose ``message.kind == ...`` comparisons count as
    #: protocol dispatch.
    dispatch_sites: Tuple[str, ...] = (
        "repro.control.controller.Controller._drain",
        "repro.control.agent.Agent.step",
        "repro.control.ha.ControllerReplica._dispatch",
    )


# --------------------------------------------------------------------------
# shared helpers


_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_TIMING_TOKENS = ("_seconds", "_per_second")

_UNORDERED_SOURCES = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}

_ORDER_INSENSITIVE = {
    "sorted",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

_FLOAT_HINTS = (
    "cpu",
    "mem",
    "mass",
    "coverage",
    "fraction",
    "second",
    "mean",
    "load",
    "util",
    "ratio",
    "weight",
    "cost",
    "_sum",
)

_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "setdefault",
}


def _function_locals(info: FunctionInfo) -> Set[str]:
    """Parameter and locally-bound names (shadow module globals)."""
    names: Set[str] = set()
    node = info.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    declared_global: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
    return names - declared_global


def _parents(info: FunctionInfo) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(info.node):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _canonical(graph: CallGraph, module: ModuleInfo, node: ast.AST) -> Optional[str]:
    text = dotted_name(node)
    return graph.canonical_text(module, text) if text is not None else None


# --------------------------------------------------------------------------
# REP201 — wall-clock reads on report paths


def _has_timing_token(info: FunctionInfo) -> bool:
    node = info.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    docstring_node: Optional[ast.AST] = None
    if (
        node.body
        and isinstance(node.body[0], ast.Expr)
        and isinstance(node.body[0].value, ast.Constant)
        and isinstance(node.body[0].value.value, str)
    ):
        docstring_node = node.body[0].value
    for sub in ast.walk(node):
        token: Optional[str] = None
        if isinstance(sub, ast.Name):
            token = sub.id
        elif isinstance(sub, ast.Attribute):
            token = sub.attr
        elif isinstance(sub, ast.keyword) and sub.arg:
            token = sub.arg
        elif (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and sub is not docstring_node
        ):
            token = sub.value
        if token and any(mark in token for mark in _TIMING_TOKENS):
            return True
    return False


def _check_rep201(
    graph: CallGraph,
    origins: Dict[str, str],
    config: FlowConfig,
) -> List[Violation]:
    findings: List[Violation] = []
    token_cache: Dict[str, bool] = {}

    def has_token(qual: str) -> bool:
        if qual not in token_cache:
            token_cache[qual] = _has_timing_token(graph.functions[qual])
        return token_cache[qual]

    for qualname, entry in origins.items():
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        if module.name in config.timing_allowlist_modules:
            continue
        clock_calls = [
            (node, canonical)
            for node in ast.walk(info.node)
            if isinstance(node, ast.Call)
            for canonical in (_canonical(graph, module, node.func),)
            if canonical in _CLOCK_CALLS
        ]
        if not clock_calls:
            continue
        # A declared timing site either names the *_seconds family
        # itself or hands the reading to a helper that does (the
        # read-here/record-there split in the engine's trace paths).
        if has_token(qualname) or any(has_token(c) for c in info.calls):
            continue
        for node, canonical in clock_calls:
            findings.append(
                Violation(
                    rule_id="REP201",
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"wall-clock read `{canonical}` in `{qualname}`,"
                        f" reachable from report entrypoint `{entry}`;"
                        " wall time must only feed *_seconds/*_per_second"
                        " metric families"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# REP202 — unordered iteration on report paths


class _SetTyping:
    """Per-function inference of 'this expression iterates unordered'."""

    def __init__(self, graph: CallGraph, module: ModuleInfo, info: FunctionInfo) -> None:
        self.graph = graph
        self.module = module
        self.info = info
        self.set_locals: Set[str] = set()
        # Two passes so ``a = set(); b = a`` propagates one level.
        for _ in range(2):
            for sub in ast.walk(info.node):
                value: Optional[ast.AST] = None
                targets: List[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    value, targets = sub.value, list(sub.targets)
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    value, targets = sub.value, [sub.target]
                if value is None or not self.is_unordered(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.set_locals.add(target.id)

    def is_unordered(self, node: ast.AST, depth: int = 0) -> bool:
        if depth > 6:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_locals
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_unordered(node.left, depth + 1) or self.is_unordered(
                node.right, depth + 1
            )
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.info.class_name is not None
                and node.attr
                in self.module.set_attrs.get(self.info.class_name, set())
            ):
                return True
            return False
        if isinstance(node, ast.Call):
            text = dotted_name(node.func)
            if text is not None:
                leaf = text.rsplit(".", 1)[-1]
                if leaf in {"set", "frozenset"}:
                    return True
                canonical = self.graph.canonical_text(self.module, text)
                if canonical in _UNORDERED_SOURCES:
                    return True
                resolved = self.graph.resolve(self.module, text, self.info)
                if resolved is not None and self._returns_set(resolved):
                    return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_METHODS:
                    return True
                if node.func.attr == "keys" or node.func.attr == "values":
                    return False  # dicts preserve insertion order
                # ``x.alert_keys()``-style accessors: bare-name lookup
                # against known set-returning functions.
                for qual in self.graph.by_bare_name.get(node.func.attr, ()):
                    if self._returns_set(qual):
                        return True
        return False

    def _returns_set(self, qualname: str) -> bool:
        target = self.graph.functions.get(qualname)
        if target is None:
            return False
        owner = self.graph.modules.get(target.module)
        if owner is None:
            return False
        key = (
            f"{target.class_name}.{target.name}" if target.class_name else target.name
        )
        return key in owner.set_returning


def _consumed_order_insensitively(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> bool:
    parent = parents.get(node)
    if isinstance(parent, ast.Call):
        text = dotted_name(parent.func)
        if text is not None and text.rsplit(".", 1)[-1] in _ORDER_INSENSITIVE:
            return True
    return False


def _check_rep202(
    graph: CallGraph,
    origins: Dict[str, str],
    config: FlowConfig,
) -> List[Violation]:
    findings: List[Violation] = []

    def flag(info: FunctionInfo, node: ast.AST, what: str, entry: str) -> None:
        findings.append(
            Violation(
                rule_id="REP202",
                path=info.path,
                line=getattr(node, "lineno", info.lineno),
                col=getattr(node, "col_offset", 0),
                message=(
                    f"{what} in `{info.qualname}`, reachable from report"
                    f" entrypoint `{entry}`; sort (or otherwise fix the"
                    " order) before results can feed a report"
                ),
            )
        )

    for qualname, entry in origins.items():
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        typing = _SetTyping(graph, module, info)
        parents = _parents(info)
        for node in ast.walk(info.node):
            if isinstance(node, ast.For):
                if typing.is_unordered(node.iter):
                    flag(info, node, "iteration over an unordered collection", entry)
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if any(typing.is_unordered(gen.iter) for gen in node.generators):
                    if not _consumed_order_insensitively(node, parents):
                        flag(
                            info,
                            node,
                            "comprehension over an unordered collection",
                            entry,
                        )
            elif isinstance(node, ast.Call):
                text = dotted_name(node.func)
                leaf = text.rsplit(".", 1)[-1] if text else (
                    node.func.attr if isinstance(node.func, ast.Attribute) else None
                )
                if leaf == "popitem" and isinstance(node.func, ast.Attribute):
                    flag(info, node, "`dict.popitem()` (order-dependent)", entry)
                elif leaf in {"list", "tuple", "enumerate", "zip", "map", "join"}:
                    if any(typing.is_unordered(arg) for arg in node.args):
                        if not _consumed_order_insensitively(node, parents):
                            flag(
                                info,
                                node,
                                f"`{leaf}(...)` over an unordered collection",
                                entry,
                            )
    return findings


# --------------------------------------------------------------------------
# REP203 — plain float accumulation in merge-reachable code


def _float_evidence(node: ast.AST) -> Optional[str]:
    """A short reason when *node* plausibly computes on floats."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return "float literal"
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return "division"
        token: Optional[str] = None
        if isinstance(sub, ast.Name):
            token = sub.id
        elif isinstance(sub, ast.Attribute):
            token = sub.attr
        if token:
            lowered = token.lower()
            if any(hint in lowered for hint in _FLOAT_HINTS):
                return f"float-typed name `{token}`"
        if isinstance(sub, ast.Call):
            text = dotted_name(sub.func)
            if text is not None and text.rsplit(".", 1)[-1] == "float":
                return "float() conversion"
    return None


def _check_rep203(
    graph: CallGraph,
    origins: Dict[str, str],
    config: FlowConfig,
) -> List[Violation]:
    findings: List[Violation] = []
    for qualname, entry in origins.items():
        info = graph.functions[qualname]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "sum":
                    evidence = None
                    for arg in node.args:
                        evidence = _float_evidence(arg)
                        if evidence:
                            break
                    if evidence:
                        findings.append(
                            Violation(
                                rule_id="REP203",
                                path=info.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"builtin `sum` over floats ({evidence}) in"
                                    f" `{qualname}`, reachable from merge"
                                    f" entrypoint `{entry}`; mergeable report"
                                    " values must accumulate via ExactSum"
                                ),
                            )
                        )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                evidence = _float_evidence(node.value) or _float_evidence(node.target)
                if evidence:
                    findings.append(
                        Violation(
                            rule_id="REP203",
                            path=info.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"float `+=` accumulation ({evidence}) in"
                                f" `{qualname}`, reachable from merge"
                                f" entrypoint `{entry}`; mergeable report"
                                " values must accumulate via ExactSum"
                            ),
                        )
                    )
    return findings


# --------------------------------------------------------------------------
# REP204 — spawn-safety: module state touched by worker-reachable code


def _mutated_globals(graph: CallGraph, module: ModuleInfo) -> Set[str]:
    """Names of *module*'s container globals that some function mutates."""
    mutated: Set[str] = set()
    candidates = set(module.mutable_globals)
    if not candidates:
        return mutated
    for info in graph.functions.values():
        if info.module != module.name:
            # Cross-module mutation: ``alias.NAME.append(...)``.
            other = graph.modules.get(info.module)
            if other is None:
                continue
            for sub in ast.walk(info.node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATOR_METHODS
                    and isinstance(sub.func.value, ast.Attribute)
                    and isinstance(sub.func.value.value, ast.Name)
                ):
                    alias = sub.func.value.value.id
                    if other.aliases.get(alias) == module.name:
                        if sub.func.value.attr in candidates:
                            mutated.add(sub.func.value.attr)
            continue
        locals_here = _function_locals(info)
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                base = sub.func.value
                if (
                    isinstance(base, ast.Name)
                    and sub.func.attr in _MUTATOR_METHODS
                    and base.id in candidates
                    and base.id not in locals_here
                ):
                    mutated.add(base.id)
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in candidates
                        and target.value.id not in locals_here
                    ):
                        mutated.add(target.value.id)
    return mutated


def _check_rep204(
    graph: CallGraph,
    origins: Dict[str, str],
    config: FlowConfig,
) -> List[Violation]:
    hazards: Dict[str, Set[str]] = {}  # module -> hazardous global names
    for module in graph.modules.values():
        names = set(module.rebound_globals)
        names |= _mutated_globals(graph, module)
        if names:
            hazards[module.name] = names

    findings: List[Violation] = []
    for qualname, entry in origins.items():
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        own_hazards = hazards.get(module.name, set())
        locals_here = _function_locals(info)
        seen: Set[Tuple[str, str]] = set()
        for sub in ast.walk(info.node):
            name: Optional[str] = None
            owner = module.name
            if isinstance(sub, ast.Name) and sub.id in own_hazards:
                if sub.id not in locals_here or _declares_global(info, sub.id):
                    name = sub.id
            elif isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
                target_module = module.aliases.get(sub.value.id)
                if target_module in hazards and sub.attr in hazards[target_module]:
                    name, owner = sub.attr, target_module
            if name is None or (owner, name) in seen:
                continue
            seen.add((owner, name))
            findings.append(
                Violation(
                    rule_id="REP204",
                    path=info.path,
                    line=getattr(sub, "lineno", info.lineno),
                    col=getattr(sub, "col_offset", 0),
                    message=(
                        f"module-level mutable state `{owner}.{name}` touched"
                        f" by `{qualname}`, reachable from spawn entrypoint"
                        f" `{entry}`; spawned workers do not share module"
                        " state — pass it through the payload instead"
                    ),
                )
            )
    return findings


def _declares_global(info: FunctionInfo, name: str) -> bool:
    for sub in ast.walk(info.node):
        if isinstance(sub, ast.Global) and name in sub.names:
            return True
    return False


# --------------------------------------------------------------------------
# REP205 — environment reads outside the config layer


def _check_rep205(
    graph: CallGraph,
    origins: Dict[str, str],
    config: FlowConfig,
) -> List[Violation]:
    findings: List[Violation] = []
    for qualname, entry in origins.items():
        info = graph.functions[qualname]
        module = graph.modules[info.module]
        if module.name in config.config_modules:
            continue
        for sub in ast.walk(info.node):
            hit: Optional[str] = None
            if isinstance(sub, ast.Call):
                canonical = _canonical(graph, module, sub.func)
                if canonical in {"os.getenv", "os.environ.get"}:
                    hit = canonical
            elif isinstance(sub, ast.Subscript):
                canonical = _canonical(graph, module, sub.value)
                if canonical == "os.environ":
                    hit = "os.environ[...]"
            if hit is None:
                continue
            findings.append(
                Violation(
                    rule_id="REP205",
                    path=info.path,
                    line=sub.lineno,
                    col=sub.col_offset,
                    message=(
                        f"`{hit}` read in `{qualname}`, reachable from spawn"
                        f" entrypoint `{entry}`; worker behaviour must come"
                        " from the payload or the config layer"
                        f" ({', '.join(config.config_modules) or 'none'})"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# REP206 — control-plane protocol conformance


@dataclass(frozen=True)
class _DeclaredKind:
    kind: str
    implicit: bool
    line: int


def _kind_value(
    graph: CallGraph, module: ModuleInfo, node: ast.AST
) -> Optional[str]:
    """Static string value of a message-kind expression, if derivable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    text = dotted_name(node)
    if text is None:
        return None
    if "." not in text and text in module.string_constants:
        return module.string_constants[text]
    canonical = graph.canonical_text(module, text)
    owner, remainder = graph._split_module(canonical)
    if owner is not None and len(remainder) == 1:
        return graph.modules[owner].string_constants.get(remainder[0])
    return None


def _declared_protocol(
    graph: CallGraph, config: FlowConfig
) -> Optional[Tuple[str, Dict[str, _DeclaredKind]]]:
    module = graph.modules.get(config.protocol_module)
    if module is None:
        return None
    declared: Dict[str, _DeclaredKind] = {}
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "MessageSpec"
        ):
            continue
        kind: Optional[str] = None
        implicit = False
        if node.args:
            kind = _kind_value(graph, module, node.args[0])
        for keyword in node.keywords:
            if keyword.arg == "kind":
                kind = _kind_value(graph, module, keyword.value)
            elif keyword.arg == "implicit":
                implicit = (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        if kind is not None:
            declared[kind] = _DeclaredKind(kind=kind, implicit=implicit, line=node.lineno)
    return module.path, declared


def _check_rep206(graph: CallGraph, config: FlowConfig) -> List[Violation]:
    table = _declared_protocol(graph, config)
    if table is None:
        return []  # no protocol module in the analyzed set: rule not applicable
    protocol_path, declared = table

    findings: List[Violation] = []
    sent: Dict[str, Tuple[FunctionInfo, int, int]] = {}
    handled: Dict[str, Tuple[FunctionInfo, int, int]] = {}

    for info in graph.functions.values():
        module = graph.modules[info.module]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "send"):
                continue
            receiver = dotted_name(func)
            if receiver is None or "bus" not in receiver.lower():
                continue
            kind_node: Optional[ast.AST] = None
            if len(node.args) >= 3:
                kind_node = node.args[2]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "kind":
                        kind_node = keyword.value
            if kind_node is None:
                continue
            kind = _kind_value(graph, module, kind_node)
            if kind is None:
                findings.append(
                    Violation(
                        rule_id="REP206",
                        path=info.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"bus send in `{info.qualname}` uses a message"
                            " kind the analyzer cannot resolve statically;"
                            " use a literal or a repro.control.protocol"
                            " constant"
                        ),
                    )
                )
                continue
            sent.setdefault(kind, (info, node.lineno, node.col_offset))

    for qualname in config.dispatch_sites:
        info = graph.functions.get(qualname)
        if info is None:
            continue
        module = graph.modules[info.module]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            left = node.left
            if not (isinstance(left, ast.Attribute) and left.attr == "kind"):
                continue
            op = node.ops[0]
            comparator = node.comparators[0]
            kind_nodes: List[ast.AST] = []
            if isinstance(op, ast.Eq):
                kind_nodes = [comparator]
            elif isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                kind_nodes = list(comparator.elts)
            for kind_node in kind_nodes:
                kind = _kind_value(graph, module, kind_node)
                if kind is not None:
                    handled.setdefault(kind, (info, node.lineno, node.col_offset))

    for kind, (info, line, col) in sorted(sent.items()):
        if kind not in declared:
            findings.append(
                Violation(
                    rule_id="REP206",
                    path=info.path,
                    line=line,
                    col=col,
                    message=(
                        f"message kind '{kind}' is sent on the bus by"
                        f" `{info.qualname}` but not declared in the"
                        f" {config.protocol_module}.PROTOCOL table"
                    ),
                )
            )
    for kind, (info, line, col) in sorted(handled.items()):
        if kind not in declared:
            findings.append(
                Violation(
                    rule_id="REP206",
                    path=info.path,
                    line=line,
                    col=col,
                    message=(
                        f"message kind '{kind}' is dispatched in"
                        f" `{info.qualname}` but not declared in the"
                        f" {config.protocol_module}.PROTOCOL table"
                    ),
                )
            )
    for kind, spec in sorted(declared.items()):
        if kind not in sent:
            findings.append(
                Violation(
                    rule_id="REP206",
                    path=protocol_path,
                    line=spec.line,
                    col=0,
                    message=(
                        f"declared message kind '{kind}' is never sent on"
                        " the bus (dead protocol entry or missing sender)"
                    ),
                )
            )
        if kind not in handled and not spec.implicit:
            findings.append(
                Violation(
                    rule_id="REP206",
                    path=protocol_path,
                    line=spec.line,
                    col=0,
                    message=(
                        f"declared message kind '{kind}' is never handled by"
                        f" a dispatch site ({', '.join(config.dispatch_sites)});"
                        " mark it implicit=True if a blanket handler covers it"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# driver


def flow_paths(
    paths: Sequence[str],
    config: Optional[FlowConfig] = None,
    root: Optional[str] = None,
    registry: Optional["MetricsRegistry"] = None,
    store: Optional[ASTStore] = None,
) -> LintResult:
    """Run the REP201–REP206 flow rules over the package at *paths*.

    Returns the same :class:`~repro.analysis.lint.LintResult` shape as
    ``lint_paths`` (shared renderers, suppressions, and exit-code
    contract).  *registry* (default ``NULL_REGISTRY``) receives the
    ``analysis_flow_*`` metric families.
    """
    if config is None:
        config = FlowConfig()
    if store is None:
        store = DEFAULT_STORE
    if registry is None:
        from repro.obs import NULL_REGISTRY

        registry = NULL_REGISTRY

    files = iter_python_files(paths)
    if root is None and files:
        root = find_project_root(files[0])

    graph = build_callgraph(files, store)
    registry.counter(
        "analysis_flow_files_total",
        "files parsed into the flow-pass call graph",
    ).inc(len(files))

    report_reach = graph.reachable(config.report_entrypoints)
    merge_reach = graph.reachable(config.merge_entrypoints)
    spawn_reach = graph.reachable(config.spawn_entrypoints)

    checks = (
        ("REP201", lambda: _check_rep201(graph, report_reach, config)),
        ("REP202", lambda: _check_rep202(graph, report_reach, config)),
        ("REP203", lambda: _check_rep203(graph, merge_reach, config)),
        ("REP204", lambda: _check_rep204(graph, spawn_reach, config)),
        ("REP205", lambda: _check_rep205(graph, spawn_reach, config)),
        ("REP206", lambda: _check_rep206(graph, config)),
    )
    violations: List[Violation] = []
    for rule_id, check in checks:
        with registry.timer(
            "analysis_flow_rule_seconds",
            "wall-clock seconds per flow rule",
            rule=rule_id,
        ):
            found = check()
        violations.extend(found)
        registry.counter(
            "analysis_flow_findings_total",
            "flow-pass findings before suppression",
            labels=("rule",),
        ).inc(len(found), rule=rule_id)

    errors: List[Tuple[str, str]] = []
    for error in graph.errors:
        errors.append(("<callgraph>", error))

    kept: List[Violation] = []
    suppression_cache: Dict[str, Tuple] = {}
    for violation in violations:
        if violation.path not in suppression_cache:
            try:
                source, _ = store.get(violation.path)
            except (OSError, SyntaxError):
                suppression_cache[violation.path] = ({}, None, False)
            else:
                suppression_cache[violation.path] = _parse_suppressions(
                    source.splitlines()
                )
        per_line, file_rules, file_all = suppression_cache[violation.path]
        if not _suppressed(violation, per_line, file_rules, file_all):
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return LintResult(
        violations=kept,
        files_checked=len(files),
        rule_ids=FLOW_RULE_IDS,
        errors=errors,
    )
