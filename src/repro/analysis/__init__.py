"""repro.analysis — domain-aware static analysis.

Two shift-left guards for the deployment pipeline:

* :mod:`repro.analysis.lint` — a small AST rule engine with domain
  rules (REP001-REP005): float-literal boundary comparisons, unseeded
  RNG draws, ``repro.api`` facade drift, metric-name drift against
  ``docs/observability.md``, and mutable default arguments.  Runnable
  as ``repro analysis lint`` or ``python -m repro.analysis lint``.
* :mod:`repro.analysis.verify` — a static deployment-artifact
  verifier (REP101-REP108) proving, without running any traffic, that
  manifests partition ``[0, 1]`` exactly, mass only lands on
  forwarding paths, TCAM budgets hold, and deltas apply cleanly.  The
  controller runs it as a fail-closed pre-distribution gate.

See ``docs/static_analysis.md`` for the full rule catalogue.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

#: PEP 562 lazy surface: name -> defining submodule.  Resolved on
#: first attribute access so ``import repro.analysis`` stays light and
#: the lint CLI never pays for the verifier's planning imports.
_LAZY = {
    "ASTStore": "astcache",
    "DEFAULT_STORE": "astcache",
    "CallGraph": "callgraph",
    "build_callgraph": "callgraph",
    "FLOW_CATALOGUE": "flow",
    "FlowConfig": "flow",
    "flow_paths": "flow",
    "FileContext": "lint",
    "LintResult": "lint",
    "ProjectContext": "lint",
    "Rule": "lint",
    "Violation": "lint",
    "iter_python_files": "lint",
    "lint_paths": "lint",
    "render_json": "lint",
    "render_text": "lint",
    "RULE_CATALOGUE": "rules",
    "default_rules": "rules",
    "Finding": "verify",
    "ManifestRejectedError": "verify",
    "VERIFIER_RULES": "verify",
    "VerificationReport": "verify",
    "check_delta": "verify",
    "check_nips": "verify",
    "check_on_path": "verify",
    "check_partition": "verify",
    "verify_artifact_files": "verify",
    "verify_delta": "verify",
    "verify_deployment": "verify",
    "verify_nips": "verify",
    "main": "cli",
}

if TYPE_CHECKING:  # static importers see the real symbols
    from .astcache import ASTStore, DEFAULT_STORE
    from .callgraph import CallGraph, build_callgraph
    from .cli import main
    from .flow import FLOW_CATALOGUE, FlowConfig, flow_paths
    from .lint import (
        FileContext,
        LintResult,
        ProjectContext,
        Rule,
        Violation,
        iter_python_files,
        lint_paths,
        render_json,
        render_text,
    )
    from .rules import RULE_CATALOGUE, default_rules
    from .verify import (
        Finding,
        ManifestRejectedError,
        VERIFIER_RULES,
        VerificationReport,
        check_delta,
        check_nips,
        check_on_path,
        check_partition,
        verify_artifact_files,
        verify_delta,
        verify_deployment,
        verify_nips,
    )


def __getattr__(name: str) -> Any:
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{submodule}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


__all__ = [
    "ASTStore",
    "CallGraph",
    "DEFAULT_STORE",
    "FLOW_CATALOGUE",
    "FileContext",
    "Finding",
    "FlowConfig",
    "LintResult",
    "ManifestRejectedError",
    "ProjectContext",
    "RULE_CATALOGUE",
    "Rule",
    "VERIFIER_RULES",
    "VerificationReport",
    "Violation",
    "check_delta",
    "check_nips",
    "check_on_path",
    "check_partition",
    "build_callgraph",
    "default_rules",
    "flow_paths",
    "iter_python_files",
    "lint_paths",
    "main",
    "render_json",
    "render_text",
    "verify_artifact_files",
    "verify_delta",
    "verify_deployment",
    "verify_nips",
]
