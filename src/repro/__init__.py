"""repro — Network-Wide Deployment of Intrusion Detection and
Prevention Systems.

A reproduction of Sekar, Krishnaswamy, Gupta & Reiter (ACM CoNEXT
2010).  Instead of scaling NIDS/NIPS at a few chokepoints, detection
and prevention responsibilities are distributed across every node on
each packet's forwarding path:

* **NIDS** — a linear program assigns per-class, per-coordination-unit
  traffic fractions to nodes, minimizing the maximum CPU/memory load
  while guaranteeing complete coverage; the optimum is realized as
  non-overlapping hash-range sampling manifests consulted per packet.
* **NIPS** — an NP-hard mixed integer-linear program places filtering
  rules under per-node TCAM budgets to maximize the network-footprint
  reduction of unwanted traffic; practical randomized-rounding
  algorithms reach ≥92% of the LP upper bound.
* **Online adaptation** — a follow-the-perturbed-leader strategy keeps
  deployments robust to adversaries that shift the attack mix.

Sub-packages: :mod:`repro.core` (the contribution), :mod:`repro.lp`,
:mod:`repro.hashing`, :mod:`repro.topology`, :mod:`repro.traffic`,
:mod:`repro.nids`, :mod:`repro.nips`, :mod:`repro.experiments`.

Quickstart::

    from repro import quick_nids_deployment
    deployment = quick_nids_deployment()
    print(deployment.assignment.max_cpu_load)
"""

from .core import (
    CoordinatedDispatcher,
    FPLConfig,
    NIDSDeployment,
    NIPSProblem,
    RoundingVariant,
    best_of_roundings,
    build_nips_problem,
    plan_deployment,
    run_online_adaptation,
    solve_nids_lp,
    solve_relaxation,
)
from .topology import PathSet, Topology, geant, internet2, rocketfuel
from .traffic import TrafficGenerator, TrafficMatrix, mixed_profile

__version__ = "1.0.0"


def __getattr__(name: str):
    # PEP 562: the stable facade (repro.api) pulls in the emulation,
    # control, and reporting stacks, and the static-analysis subsystem
    # (repro.analysis) pulls in its rule engine — load either only on
    # first access so `import repro` stays light.
    if name in ("api", "analysis"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quick_nids_deployment(num_sessions: int = 2000, seed: int = 1):
    """Plan a coordinated NIDS deployment on Internet2 in one call.

    Convenience entry point for the README quickstart: builds the
    11-node Internet2 topology, generates a gravity-model mixed trace,
    and returns the planned :class:`~repro.core.NIDSDeployment`.
    """
    from .nids.modules import STANDARD_MODULES
    from .traffic.generator import GeneratorConfig

    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology, paths, config=GeneratorConfig(seed=seed)
    )
    sessions = generator.generate(num_sessions)
    return plan_deployment(topology, paths, STANDARD_MODULES, sessions)


__all__ = [
    "analysis",
    "api",
    "CoordinatedDispatcher",
    "FPLConfig",
    "NIDSDeployment",
    "NIPSProblem",
    "PathSet",
    "RoundingVariant",
    "Topology",
    "TrafficGenerator",
    "TrafficMatrix",
    "best_of_roundings",
    "build_nips_problem",
    "geant",
    "internet2",
    "mixed_profile",
    "plan_deployment",
    "quick_nids_deployment",
    "rocketfuel",
    "run_online_adaptation",
    "solve_nids_lp",
    "solve_relaxation",
    "__version__",
]
