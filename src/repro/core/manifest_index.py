"""Precompiled sampling-manifest index for batch dispatch.

``NodeManifest.contains`` answers the Fig. 3 range check with a linear
``any(r.contains(value))`` scan — fine for one packet, ruinous when the
network-wide emulation asks it 100k times per node.  A
:class:`ManifestIndex` flattens each (class, unit) entry's ranges into a
sorted boundary array once, after which membership is a single
``searchsorted`` (binary search) per probe — and, crucially, one
*vectorized* ``searchsorted`` per batch of probes.

The compilation is exact with respect to the scalar semantics of
:meth:`repro.hashing.ranges.HashRange.contains`:

* each range contributes the half-open interval ``[lo, hi)``;
* a range whose ``hi`` is within ``EPSILON`` of 1.0 is closed at the
  top — it contributes ``[lo, nextafter(1.0))`` so every float up to
  and including 1.0 tests inside;
* overlapping or touching intervals are merged (union membership is
  preserved exactly — merging only compares endpoints, no arithmetic).

A probe is inside the union iff ``searchsorted(boundaries, probe,
side="right")`` is odd.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..hashing.ranges import EPSILON, HashRange
from .manifest import EntryKey, NodeManifest
from .units import UnitKey

#: Exclusive upper bound that admits every float <= 1.0 — the half-open
#: encoding of a range closed at the top of the hash space.
_TOP = np.nextafter(1.0, 2.0)

_EMPTY = np.empty(0, dtype=np.float64)


def compile_ranges(ranges: Iterable[HashRange]) -> np.ndarray:
    """Flatten *ranges* into a sorted boundary array for searchsorted.

    Returns ``[lo1, hi1, lo2, hi2, ...]`` of the merged union; a value
    ``v`` is contained iff its right-insertion point is odd.  Exactly
    equivalent to ``any(r.contains(v) for r in ranges)``.
    """
    intervals = []
    for r in ranges:
        hi = _TOP if r.hi >= 1.0 - EPSILON else r.hi
        if hi > r.lo:
            intervals.append((r.lo, hi))
    intervals.sort()
    merged: List[List[float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1][1] = hi
        else:
            merged.append([lo, hi])
    return np.array([edge for pair in merged for edge in pair], dtype=np.float64)


class ManifestIndex:
    """Searchsorted-ready compilation of one node's sampling manifest."""

    __slots__ = ("node", "full", "_boundaries")

    def __init__(self, manifest: NodeManifest):
        self.node = manifest.node
        self.full = manifest.full
        self._boundaries: Dict[EntryKey, np.ndarray] = {
            entry: compile_ranges(ranges)
            for entry, ranges in manifest.entries.items()
        }

    def boundaries(self, class_name: str, key: UnitKey) -> np.ndarray:
        """The entry's flat boundary array (empty when not responsible)."""
        return self._boundaries.get((class_name, key), _EMPTY)

    def contains(self, class_name: str, key: UnitKey, hash_value: float) -> bool:
        """Scalar Fig. 3 check — agrees with ``NodeManifest.contains``."""
        if self.full:
            return True
        bounds = self._boundaries.get((class_name, key))
        if bounds is None or not len(bounds):
            return False
        return bool(np.searchsorted(bounds, hash_value, side="right") & 1)

    def contains_batch(
        self, class_name: str, key: UnitKey, hash_values: np.ndarray
    ) -> np.ndarray:
        """Vectorized Fig. 3 check over an array of hash values."""
        hash_values = np.asarray(hash_values, dtype=np.float64)
        if self.full:
            return np.ones(len(hash_values), dtype=bool)
        bounds = self._boundaries.get((class_name, key))
        if bounds is None or not len(bounds):
            return np.zeros(len(hash_values), dtype=bool)
        return (np.searchsorted(bounds, hash_values, side="right") & 1).astype(bool)


def index_manifests(
    manifests: Dict[str, NodeManifest]
) -> Dict[str, ManifestIndex]:
    """Compile an index for every node manifest."""
    return {node: ManifestIndex(manifest) for node, manifest in manifests.items()}
