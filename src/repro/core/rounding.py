"""Randomized-rounding approximation for NIPS deployment (Fig. 9).

The exact problem is NP-hard, so the paper rounds the LP relaxation:

1. Solve the relaxation for ``e*``, ``d*``; let ``eps = d*/e*``.
2. Repeatedly draw ``ê_ij = 1`` with probability ``e*_ij / alpha``
   until the induced ``d̂ = eps * ê`` violates no capacity constraint
   (Eqs. 9–11) by more than a factor ``beta * log N``.
3. Zero out ``ê`` entries as needed to repair TCAM violations (Eq. 8).
4. Scale ``eps`` down by ``beta * log N`` so Eqs. 9–11 hold exactly.

This guarantees an ``Omega(1 / log N)`` fraction of ``OptLP`` in
expectation.  Two practical improvements (Section 3.3) replace the
conservative scaling:

* **Rounding + LP re-solve** — fix ``ê`` and solve the d-only LP
  (Fig. 10a: ≥~70% of OptLP);
* **Rounding + greedy + LP re-solve** — additionally enable more rules
  greedily while TCAM capacity remains, then solve the d-only LP
  (Fig. 10b: ≥92% of OptLP).

Both improvements "do not affect feasibility and can only improve the
value of the objective function".
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .nips_milp import (
    DKey,
    EKey,
    NIPSProblem,
    NIPSSolution,
    solve_relaxation,
    solve_with_fixed_rules,
)

_TINY = 1e-9


class RoundingVariant(enum.Enum):
    """The three algorithm variants evaluated in Section 3.4."""

    BASIC = "basic"  # Fig. 9 verbatim, conservative scaling
    LP = "round+lp"  # Fig. 10(a)
    GREEDY_LP = "round+greedy+lp"  # Fig. 10(b)


@dataclass
class RoundedSolution:
    """Result of one rounding run."""

    variant: RoundingVariant
    solution: NIPSSolution
    trials: int
    opt_lp: float

    @property
    def fraction_of_lp(self) -> float:
        """Objective as a fraction of the LP upper bound (Fig. 10 y-axis)."""
        return self.solution.objective / self.opt_lp if self.opt_lp > 0 else 0.0


def _capacity_loads(
    problem: NIPSProblem, d: Mapping[DKey, float]
) -> Tuple[Dict[str, float], Dict[str, float], Dict[Tuple[int, Tuple[str, str]], float]]:
    """Memory/CPU loads per node and per-(rule, path) sampling sums."""
    mem: Dict[str, float] = {}
    cpu: Dict[str, float] = {}
    path_sum: Dict[Tuple[int, Tuple[str, str]], float] = {}
    for (i, pair, node), fraction in d.items():
        if fraction <= 0.0:
            continue
        rule = problem.rules[i]
        mem[node] = mem.get(node, 0.0) + problem.items[pair] * rule.mem_req * fraction
        cpu[node] = cpu.get(node, 0.0) + problem.pkts[pair] * rule.cpu_req * fraction
        path_sum[(i, pair)] = path_sum.get((i, pair), 0.0) + fraction
    return mem, cpu, path_sum


def _violation_factor(problem: NIPSProblem, d: Mapping[DKey, float]) -> float:
    """Largest factor by which Eqs. 9–11 are exceeded (1.0 = feasible)."""
    mem, cpu, path_sum = _capacity_loads(problem, d)
    worst = 1.0
    for node_name, load in mem.items():
        cap = problem.topology.node(node_name).mem_capacity
        if cap > 0:
            worst = max(worst, load / cap)
    for node_name, load in cpu.items():
        cap = problem.topology.node(node_name).cpu_capacity
        if cap > 0:
            worst = max(worst, load / cap)
    for total in path_sum.values():
        worst = max(worst, total)
    return worst


def _repair_cam(
    problem: NIPSProblem, e_hat: Dict[EKey, int], rng: random.Random
) -> None:
    """Zero ``ê`` entries until every node's TCAM constraint holds.

    The paper drops entries "arbitrarily"; we drop uniformly at random
    among the node's enabled rules, which keeps the repair unbiased.
    """
    for node_name in problem.topology.node_names:
        cap = problem.topology.node(node_name).cam_capacity
        enabled = [
            (i, node_name)
            for (i, n), value in e_hat.items()
            if n == node_name and value
        ]
        used = sum(problem.rules[i].cam_req for i, _ in enabled)
        while used > cap + _TINY and enabled:
            victim = enabled.pop(rng.randrange(len(enabled)))
            e_hat[victim] = 0
            used -= problem.rules[victim[0]].cam_req


def round_enablement(
    problem: NIPSProblem,
    relaxed: NIPSSolution,
    rng: random.Random,
    alpha: float = 2.0,
    beta: float = 2.0,
    max_trials: int = 100,
) -> Tuple[Dict[EKey, int], Dict[DKey, float], int]:
    """Fig. 9 lines 3–10: rounded ``ê``, induced ``d̂``, trials used.

    The returned ``d̂`` is *unscaled* (pre line 11); callers choose
    between conservative scaling (:func:`finish_basic`) and the
    LP-re-solve improvements.
    """
    eps: Dict[DKey, float] = {}
    for key, d_star in relaxed.d.items():
        i, _, node = key
        e_star = relaxed.e.get((i, node), 0.0)
        eps[key] = d_star / e_star if e_star > _TINY else 0.0

    threshold = beta * problem.log_n()
    e_hat: Dict[EKey, int] = {}
    d_hat: Dict[DKey, float] = {}
    trials = 0
    while trials < max_trials:
        trials += 1
        e_hat = {
            key: 1 if rng.random() < min(1.0, value / alpha) else 0
            for key, value in relaxed.e.items()
        }
        d_hat = {
            key: eps[key] if e_hat.get((key[0], key[2]), 0) else 0.0
            for key in relaxed.d
        }
        if _violation_factor(problem, d_hat) <= threshold:
            break

    _repair_cam(problem, e_hat, rng)
    d_hat = {
        key: value if e_hat.get((key[0], key[2]), 0) else 0.0
        for key, value in d_hat.items()
    }
    return e_hat, d_hat, trials


def finish_basic(
    problem: NIPSProblem,
    d_hat: Mapping[DKey, float],
    e_hat: Mapping[EKey, int],
    beta: float = 2.0,
) -> NIPSSolution:
    """Fig. 9 lines 11–13: conservative ``beta log N`` down-scaling."""
    scale = max(1.0, _violation_factor(problem, d_hat))
    # The paper scales by beta*log N unconditionally; scaling by the
    # *observed* violation factor (capped below by 1) is never less
    # conservative than necessary and keeps the guarantee.
    scale = max(scale, 1.0)
    d_scaled = {key: value / scale for key, value in d_hat.items()}
    return NIPSSolution(
        e={key: float(value) for key, value in e_hat.items()},
        d=d_scaled,
        objective=problem.objective(d_scaled),
        solve_seconds=0.0,
    )


def greedy_fill(
    problem: NIPSProblem,
    e_hat: Dict[EKey, int],
) -> Dict[EKey, int]:
    """Greedily enable more rules while TCAM capacity remains.

    Candidates are ordered by their maximum potential footprint
    reduction at the node (sum over paths through the node of
    ``T^items * M_ik * Dist_ikj``), so TCAM slots go to the most
    valuable rules first.
    """
    filled = dict(e_hat)
    cam_used: Dict[str, float] = {}
    for (i, node), value in filled.items():
        if value:
            cam_used[node] = cam_used.get(node, 0.0) + problem.rules[i].cam_req

    gains: Dict[EKey, float] = {}
    for pair in problem.pairs:
        items = problem.items[pair]
        for node in problem.paths[pair].nodes:
            dist = problem.dist[pair][node]
            for rule in problem.rules:
                rate = problem.match.rate(rule.index, pair)
                if rate <= 0.0:
                    continue
                key = (rule.index, node)
                gains[key] = gains.get(key, 0.0) + items * rate * dist

    for key in sorted(gains, key=lambda k: -gains[k]):
        if filled.get(key, 0):
            continue
        i, node_name = key
        cap = problem.topology.node(node_name).cam_capacity
        need = problem.rules[i].cam_req
        if cam_used.get(node_name, 0.0) + need <= cap + _TINY:
            filled[key] = 1
            cam_used[node_name] = cam_used.get(node_name, 0.0) + need
    return filled


def rounded_deployment(
    problem: NIPSProblem,
    variant: RoundingVariant,
    rng: random.Random,
    relaxed: Optional[NIPSSolution] = None,
    alpha: float = 2.0,
    beta: float = 2.0,
) -> RoundedSolution:
    """Run one rounding iteration of the chosen *variant*."""
    if relaxed is None:
        relaxed = solve_relaxation(problem)
    e_hat, d_hat, trials = round_enablement(problem, relaxed, rng, alpha, beta)

    if variant is RoundingVariant.BASIC:
        solution = finish_basic(problem, d_hat, e_hat, beta)
    elif variant is RoundingVariant.LP:
        solution = solve_with_fixed_rules(problem, e_hat)
    else:
        solution = solve_with_fixed_rules(problem, greedy_fill(problem, e_hat))

    violations = problem.check_feasible(solution.e, solution.d)
    if violations:
        raise AssertionError(f"rounded solution infeasible: {violations[:3]}")
    return RoundedSolution(
        variant=variant,
        solution=solution,
        trials=trials,
        opt_lp=relaxed.objective,
    )


def best_of_roundings(
    problem: NIPSProblem,
    variant: RoundingVariant,
    iterations: int = 10,
    seed: int = 0,
    relaxed: Optional[NIPSSolution] = None,
) -> RoundedSolution:
    """The paper's procedure: best of *iterations* independent roundings."""
    if relaxed is None:
        relaxed = solve_relaxation(problem)
    rng = random.Random(seed)
    best: Optional[RoundedSolution] = None
    for _ in range(iterations):
        candidate = rounded_deployment(problem, variant, rng, relaxed=relaxed)
        if best is None or candidate.solution.objective > best.solution.objective:
            best = candidate
    assert best is not None
    return best
