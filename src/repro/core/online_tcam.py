"""Online adaptation of the TCAM-constrained deployment (§3.5 future work).

The paper's online evaluation removes the TCAM constraints because FPL
needs an offline optimizer ``Λ``; it notes that "there are known
extensions for the case where Λ is an approximation algorithm" (Kalai &
Vempala; Ligett, Kakade & Kalai).  This module implements that
extension: the perturbed-leader oracle is the Section 3.3
rounding-plus-greedy-plus-LP pipeline, so each epoch's decision is a
*feasible integral rule placement* under the TCAM budgets, and the
regret guarantee degrades only by the oracle's approximation factor
(α-regret).

Because the oracle solves two LPs per epoch, this adapter is meant for
the moderate instance sizes of the online evaluation, exactly like the
paper's own preliminary study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..nips.rules import MatchRateMatrix
from .nips_milp import DKey, NIPSProblem, NIPSSolution, solve_relaxation
from .online import MatchRates, decision_value, state_vector
from .rounding import RoundingVariant, rounded_deployment


def _rates_from_weights(
    problem: NIPSProblem, weights: Mapping[DKey, float]
) -> MatchRateMatrix:
    """Convert perturbed state weights back into per-(rule, path) match
    rates the MILP formulation consumes.

    The objective weight of ``d_ikj`` is ``T^items_k * M_ik * Dist_ikj``;
    dividing out volume and distance recovers an effective ``M_ik``
    (averaged over the path's nodes for numerical robustness).
    """
    sums: Dict[Tuple[int, Tuple[str, str]], float] = {}
    counts: Dict[Tuple[int, Tuple[str, str]], int] = {}
    for (i, pair, node), weight in weights.items():
        items = problem.items[pair]
        dist = problem.dist[pair][node]
        if items <= 0 or dist <= 0:
            continue
        key = (i, pair)
        sums[key] = sums.get(key, 0.0) + weight / (items * dist)
        counts[key] = counts.get(key, 0) + 1
    rates = {
        key: min(1.0, max(0.0, total / counts[key])) for key, total in sums.items()
    }
    return MatchRateMatrix(rates)


def approximate_oracle(
    problem: NIPSProblem,
    weights: Mapping[DKey, float],
    seed: int,
    iterations: int = 2,
) -> NIPSSolution:
    """``Λ`` with TCAM constraints: rounding + greedy + LP re-solve on
    the problem re-weighted by the (perturbed) historical state."""
    import dataclasses

    weighted = dataclasses.replace(
        problem, match=_rates_from_weights(problem, weights)
    )
    relaxed = solve_relaxation(weighted)
    best = None
    rng = random.Random(seed)
    for _ in range(iterations):
        candidate = rounded_deployment(
            weighted, RoundingVariant.GREEDY_LP, rng, relaxed=relaxed
        )
        if best is None or candidate.solution.objective > best.solution.objective:
            best = candidate
    assert best is not None
    return best.solution


@dataclass
class TCAMFPLConfig:
    """Parameters for the TCAM-constrained online adapter."""

    epochs: int = 50
    perturbation_amplitude: float = 1e-4  # added to the mean match rate
    oracle_iterations: int = 2
    seed: int = 0


class TCAMOnlineAdapter:
    """Follow-the-perturbed-(approximate-)leader over rule placements."""

    def __init__(self, problem: NIPSProblem, config: TCAMFPLConfig):
        self.problem = problem
        self.config = config
        self._rng = random.Random(config.seed)
        self._observed_sum: Dict[Tuple[int, Tuple[str, str]], float] = {}
        self.t = 0

    def _perturbed_mean_rates(self) -> Dict[Tuple[int, Tuple[str, str]], float]:
        rates = {}
        for rule in self.problem.rules:
            for pair in self.problem.pairs:
                mean = (
                    self._observed_sum.get((rule.index, pair), 0.0) / (self.t - 1)
                    if self.t > 1
                    else 0.0
                )
                perturbation = (
                    self._rng.random() * self.config.perturbation_amplitude / self.t
                )
                rates[(rule.index, pair)] = min(1.0, mean + perturbation)
        return rates

    def decide(self) -> NIPSSolution:
        """One epoch's feasible integral deployment."""
        self.t += 1
        rates = self._perturbed_mean_rates()
        weights = state_vector(self.problem, rates)
        return approximate_oracle(
            self.problem,
            weights,
            seed=self.config.seed * 1000 + self.t,
            iterations=self.config.oracle_iterations,
        )

    def observe(self, rates: Mapping) -> None:
        """Reveal the epoch's true match rates."""
        for key, rate in rates.items():
            self._observed_sum[key] = self._observed_sum.get(key, 0.0) + rate


@dataclass
class TCAMOnlineResult:
    """Outcome of a TCAM-constrained online run."""

    fpl_total: float
    static_total: float
    per_epoch_feasible: bool

    @property
    def normalized_regret(self) -> float:
        """``(static - fpl) / static`` against the approx oracle."""
        if self.static_total <= 0:
            return 0.0
        return (self.static_total - self.fpl_total) / self.static_total


def run_tcam_online(
    problem: NIPSProblem,
    rate_process: Callable[[int, Optional[Dict]], MatchRates],
    config: TCAMFPLConfig,
) -> TCAMOnlineResult:
    """Run the TCAM-constrained adapter for ``config.epochs`` epochs.

    The hindsight comparator uses the *same* approximate oracle on the
    summed states (α-regret is measured against the best solution the
    oracle itself could produce — the Ligett et al. setting).
    """
    adapter = TCAMOnlineAdapter(problem, config)
    fpl_total = 0.0
    state_sum: Dict[DKey, float] = {}
    feasible = True

    for epoch in range(1, config.epochs + 1):
        decision = adapter.decide()
        if problem.check_feasible(decision.e, decision.d):
            feasible = False
        rates = rate_process(epoch, None)
        state = state_vector(problem, rates)
        fpl_total += decision_value(state, decision.d)
        for key, value in state.items():
            state_sum[key] = state_sum.get(key, 0.0) + value
        adapter.observe(rates)

    static = approximate_oracle(
        problem, state_sum, seed=config.seed + 7, iterations=config.oracle_iterations
    )
    static_total = decision_value(state_sum, static.d)
    return TCAMOnlineResult(
        fpl_total=fpl_total,
        static_total=static_total,
        per_epoch_feasible=feasible,
    )
