"""NIPS rule placements and sampling manifests (paper Section 3.2).

"We want to generate rule placements specifying which rules are enabled
on each NIPS node and sampling manifests specifying what fraction of
the traffic the node should process for each enabled rule."

A solved :class:`~repro.core.nips_milp.NIPSSolution` carries ``e`` and
``d``; this module lays each path's ``d_ikj`` fractions out as
non-overlapping hash ranges along the path (the same Fig. 2 procedure
the NIDS side uses) and packages, per node, the TCAM rule set plus the
per-(rule, path) ranges — the configuration a NIPS box actually needs.
:class:`NIPSDispatcher` then answers the per-packet question: "should
this node apply rule ``C_i`` to this packet?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..hashing.bobhash import hash_unit
from ..hashing.keys import Aggregation, key_for
from ..hashing.ranges import EPSILON, HashRange, are_disjoint
from ..traffic.generator import home_node_index
from ..traffic.packet import Packet
from .nips_milp import DKey, NIPSProblem, NIPSSolution

Pair = Tuple[str, str]


@dataclass
class NIPSNodeManifest:
    """One NIPS node's configuration: TCAM rules + sampling ranges."""

    node: str
    enabled_rules: Tuple[int, ...]
    #: Hash ranges per (rule index, path pair).
    ranges: Dict[Tuple[int, Pair], Tuple[HashRange, ...]] = field(default_factory=dict)

    def sampled_fraction(self, rule_index: int, pair: Pair) -> float:
        """Hash-space share held for (rule, path)."""
        return sum(r.length for r in self.ranges.get((rule_index, pair), ()))

    def contains(self, rule_index: int, pair: Pair, hash_value: float) -> bool:
        """Whether *hash_value* falls in this node's range."""
        return any(
            r.contains(hash_value) for r in self.ranges.get((rule_index, pair), ())
        )

    @property
    def tcam_rules_used(self) -> int:
        """TCAM slots consumed (one per enabled rule)."""
        return len(self.enabled_rules)


def generate_nips_manifests(
    problem: NIPSProblem, solution: NIPSSolution
) -> Dict[str, NIPSNodeManifest]:
    """Translate ``(e, d)`` into per-node NIPS manifests.

    For each (rule, path), the responsible nodes' fractions are laid
    end to end over ``[0, 1]`` in path order — Eq. 11 guarantees they
    sum to at most 1, so the ranges are disjoint and no flow is
    inspected twice (which is also what makes the conservative load
    model of Eqs. 9-10 exact; see :mod:`repro.nips.enforcement`).
    """
    per_path: Dict[Tuple[int, Pair], Dict[str, float]] = {}
    for (i, pair, node), fraction in solution.d.items():
        if fraction > EPSILON:
            per_path.setdefault((i, pair), {})[node] = fraction

    manifests: Dict[str, NIPSNodeManifest] = {}
    for node in problem.topology.node_names:
        enabled = tuple(
            sorted(
                i
                for (i, n), value in solution.e.items()
                if n == node and value >= 0.5
            )
        )
        manifests[node] = NIPSNodeManifest(node=node, enabled_rules=enabled)

    for (i, pair), fractions in per_path.items():
        position = 0.0
        for node in problem.paths[pair].nodes:
            fraction = fractions.get(node, 0.0)
            if fraction <= EPSILON:
                continue
            piece = HashRange(position, min(1.0, position + fraction))
            manifests[node].ranges[(i, pair)] = (piece,)
            position += fraction
        if position > 1.0 + 1e-6:
            raise ValueError(
                f"rule {i} on path {pair}: sampling fractions sum to {position}"
            )
    return manifests


def verify_nips_manifests(
    problem: NIPSProblem,
    solution: NIPSSolution,
    manifests: Mapping[str, NIPSNodeManifest],
) -> None:
    """Check manifest invariants; raise ``ValueError`` when broken.

    (1) A node samples for a rule only if the rule is in its TCAM.
    (2) Per (rule, path), ranges across nodes are disjoint and their
    total measure equals the solution's sampled fraction.
    """
    per_path_pieces: Dict[Tuple[int, Pair], List[HashRange]] = {}
    for node, manifest in manifests.items():
        for (i, pair), pieces in manifest.ranges.items():
            if i not in manifest.enabled_rules:
                raise ValueError(
                    f"node {node} samples rule {i} without enabling it"
                )
            per_path_pieces.setdefault((i, pair), []).extend(pieces)
    for (i, pair), pieces in per_path_pieces.items():
        if not are_disjoint(pieces):
            raise ValueError(f"overlapping ranges for rule {i} on {pair}")
        total = sum(p.length for p in pieces)
        expected = sum(
            fraction
            for (rule, p, _node), fraction in solution.d.items()
            if rule == i and p == pair and fraction > EPSILON
        )
        if abs(total - expected) > 1e-6:
            raise ValueError(
                f"rule {i} on {pair}: ranges cover {total}, solution says {expected}"
            )


class NIPSDispatcher:
    """Per-packet filtering decision at one NIPS node.

    Flow-level sampling over the unidirectional 5-tuple (NIPS rules
    operate per packet/flow — Section 3.1); the path is recovered from
    the host identifiers' home PoPs.
    """

    def __init__(
        self,
        manifest: NIPSNodeManifest,
        node_names: Sequence[str],
        hash_seed: int = 0,
    ):
        self.manifest = manifest
        self.node_names = list(node_names)
        self.hash_seed = hash_seed

    def _pair_of(self, packet: Packet) -> Pair:
        src_home = self.node_names[home_node_index(packet.tuple.src)]
        dst_home = self.node_names[home_node_index(packet.tuple.dst)]
        return (src_home, dst_home)

    def rules_to_apply(self, packet: Packet) -> List[int]:
        """Rule indices this node applies to *packet*."""
        pair = self._pair_of(packet)
        t = packet.tuple
        hash_value = hash_unit(
            key_for(Aggregation.FLOW, t.src, t.dst, t.sport, t.dport, t.proto),
            self.hash_seed,
        )
        return [
            i
            for i in self.manifest.enabled_rules
            if self.manifest.contains(i, pair, hash_value)
        ]
