"""Sampling-manifest generation (paper Fig. 2 and Section 2.5).

``GenerateNIDSManifest`` converts the LP's optimal ``d*`` fractions
into hash ranges: for each coordination unit the eligible nodes' ranges
are laid end to end over ``[0, coverage]``, guaranteeing that the
ranges are non-overlapping and exactly cover the space.  With the
redundancy extension (coverage ``r`` > 1) positions beyond 1 wrap
around modulo 1; because every ``d_ikj <= 1``, a node's arc never
overlaps itself, so every point of the hash space is covered by ``r``
*distinct* nodes.

:func:`verify_manifests` re-checks both invariants numerically and is
used by the test suite and as an operational safety net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..hashing.ranges import (
    EPSILON,
    HashRange,
    WrappedRange,
    are_disjoint,
    covers_unit_interval,
)
from .nids_lp import NIDSAssignment
from .units import CoordinationUnit, UnitKey

EntryKey = Tuple[str, UnitKey]  # (class name, unit key)


@dataclass
class NodeManifest:
    """The sampling manifest for one node ``R_j``.

    Maps each (class, coordination unit) this node participates in to
    the hash ranges it is responsible for.  ``full=True`` builds the
    degenerate standalone manifest in which the node analyzes all
    traffic for every class — the configuration used for the paper's
    single-node microbenchmarks.
    """

    node: str
    entries: Dict[EntryKey, Tuple[HashRange, ...]] = field(default_factory=dict)
    full: bool = False

    def ranges(self, class_name: str, key: UnitKey) -> Tuple[HashRange, ...]:
        """Hash ranges held for (class, unit key)."""
        if self.full:
            return (HashRange(0.0, 1.0),)
        return self.entries.get((class_name, key), ())

    def responsible(self, class_name: str, key: UnitKey) -> bool:
        """Whether this node has any positive range for the unit."""
        if self.full:
            return True
        return any(not r.empty for r in self.entries.get((class_name, key), ()))

    def contains(self, class_name: str, key: UnitKey, hash_value: float) -> bool:
        """The Fig. 3 check: does *hash_value* fall in this node's range?"""
        if self.full:
            return True
        return any(r.contains(hash_value) for r in self.entries.get((class_name, key), ()))

    def assigned_fraction(self, class_name: str, key: UnitKey) -> float:
        """Total hash-space share held for the unit (equals ``d_ikj``)."""
        if self.full:
            return 1.0
        return sum(r.length for r in self.entries.get((class_name, key), ()))

    @property
    def num_entries(self) -> int:
        """Number of (class, unit) entries in the manifest."""
        return len(self.entries)


def full_manifest(node: str) -> NodeManifest:
    """Standalone manifest: *node* processes all traffic for all classes."""
    return NodeManifest(node=node, full=True)


def generate_manifests(
    units: Sequence[CoordinationUnit],
    assignment: NIDSAssignment,
    node_names: Iterable[str],
) -> Dict[str, NodeManifest]:
    """Translate ``d*`` into per-node sampling manifests (Fig. 2).

    The order of nodes within a unit does not matter (Fig. 2 comment);
    we use the unit's eligible-node order, which is deterministic.
    Coverage per unit comes from the assignment (1 for the base
    formulation, up to ``r`` under redundancy); ranges past 1.0 wrap.
    """
    manifests: Dict[str, NodeManifest] = {
        name: NodeManifest(node=name) for name in node_names
    }
    for unit in units:
        position = 0.0
        for node in unit.eligible:
            fraction = assignment.fraction(unit.class_name, unit.key, node)
            if fraction <= EPSILON:
                continue
            arc = WrappedRange(start=position % 1.0, length=min(1.0, fraction))
            pieces = tuple(arc.pieces())
            if pieces:
                manifests[node].entries[(unit.class_name, unit.key)] = pieces
            position += fraction
        expected = assignment.coverage.get(unit.ident, 1.0)
        if abs(position - expected) > 1e-6:
            raise ValueError(
                f"unit {unit.ident} fractions sum to {position}, expected {expected}"
            )
    return manifests


def verify_manifests(
    units: Sequence[CoordinationUnit],
    manifests: Mapping[str, NodeManifest],
) -> None:
    """Check the two manifest invariants; raise ``ValueError`` if broken.

    (1) For every unit, the union of all nodes' ranges covers the unit
    hash space exactly ``coverage`` times.  (2) No node's own ranges
    for a unit overlap (a node never analyzes the same traffic twice).
    """
    for unit in units:
        all_pieces: List[HashRange] = []
        coverage_total = 0.0
        for node in unit.eligible:
            pieces = list(manifests[node].ranges(unit.class_name, unit.key))
            if not are_disjoint(pieces):
                raise ValueError(
                    f"node {node} has self-overlapping ranges for {unit.ident}"
                )
            all_pieces.extend(pieces)
            coverage_total += sum(p.length for p in pieces)
        fold = int(round(coverage_total))
        if abs(coverage_total - fold) > 1e-6 or fold < 1:
            raise ValueError(
                f"unit {unit.ident} total coverage {coverage_total} is not a"
                " positive integer"
            )
        if not covers_unit_interval(all_pieces, fold=fold):
            raise ValueError(f"unit {unit.ident} does not cover [0,1] {fold}-fold")


def sampled_node(
    unit: CoordinationUnit,
    manifests: Mapping[str, NodeManifest],
    hash_value: float,
) -> List[str]:
    """All nodes whose range for *unit* contains *hash_value*.

    Length 1 in the base formulation, ``r`` under redundancy level r.
    """
    return [
        node
        for node in unit.eligible
        if manifests[node].contains(unit.class_name, unit.key, hash_value)
    ]
