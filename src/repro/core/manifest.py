"""Sampling-manifest generation (paper Fig. 2 and Section 2.5).

``GenerateNIDSManifest`` converts the LP's optimal ``d*`` fractions
into hash ranges: for each coordination unit the eligible nodes' ranges
are laid end to end over ``[0, coverage]``, guaranteeing that the
ranges are non-overlapping and exactly cover the space.  With the
redundancy extension (coverage ``r`` > 1) positions beyond 1 wrap
around modulo 1; because every ``d_ikj <= 1``, a node's arc never
overlaps itself, so every point of the hash space is covered by ``r``
*distinct* nodes.

:func:`verify_manifests` re-checks both invariants numerically and is
used by the test suite and as an operational safety net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..hashing.ranges import (
    EPSILON,
    HashRange,
    WrappedRange,
    are_disjoint,
    covers_unit_interval,
)
from ..obs import COUNT_BUCKETS, get_registry
from .nids_lp import NIDSAssignment
from .units import CoordinationUnit, UnitKey

EntryKey = Tuple[str, UnitKey]  # (class name, unit key)


@dataclass
class NodeManifest:
    """The sampling manifest for one node ``R_j``.

    Maps each (class, coordination unit) this node participates in to
    the hash ranges it is responsible for.  ``full=True`` builds the
    degenerate standalone manifest in which the node analyzes all
    traffic for every class — the configuration used for the paper's
    single-node microbenchmarks.
    """

    node: str
    entries: Dict[EntryKey, Tuple[HashRange, ...]] = field(default_factory=dict)
    full: bool = False

    def ranges(self, class_name: str, key: UnitKey) -> Tuple[HashRange, ...]:
        """Hash ranges held for (class, unit key)."""
        if self.full:
            return (HashRange(0.0, 1.0),)
        return self.entries.get((class_name, key), ())

    def responsible(self, class_name: str, key: UnitKey) -> bool:
        """Whether this node has any positive range for the unit."""
        if self.full:
            return True
        return any(not r.empty for r in self.entries.get((class_name, key), ()))

    def contains(self, class_name: str, key: UnitKey, hash_value: float) -> bool:
        """The Fig. 3 check: does *hash_value* fall in this node's range?"""
        if self.full:
            return True
        return any(r.contains(hash_value) for r in self.entries.get((class_name, key), ()))

    def assigned_fraction(self, class_name: str, key: UnitKey) -> float:
        """Total hash-space share held for the unit (equals ``d_ikj``)."""
        if self.full:
            return 1.0
        return sum(r.length for r in self.entries.get((class_name, key), ()))

    def same_ranges(self, other: "NodeManifest") -> bool:
        """Whether both manifests assign identical ranges everywhere.

        Content equality only — the owning node name is not compared.
        Used by the agent to skip the §5 dual-manifest window when a
        push changes the version but not the responsibilities.
        """
        if self.full or other.full:
            return self.full == other.full
        mine = {k: v for k, v in self.entries.items() if v}
        theirs = {k: v for k, v in other.entries.items() if v}
        return mine == theirs

    @property
    def num_entries(self) -> int:
        """Number of (class, unit) entries in the manifest."""
        return len(self.entries)


def full_manifest(node: str) -> NodeManifest:
    """Standalone manifest: *node* processes all traffic for all classes."""
    return NodeManifest(node=node, full=True)


def generate_manifests(
    units: Sequence[CoordinationUnit],
    assignment: NIDSAssignment,
    node_names: Iterable[str],
) -> Dict[str, NodeManifest]:
    """Translate ``d*`` into per-node sampling manifests (Fig. 2).

    The order of nodes within a unit does not matter (Fig. 2 comment);
    we use the unit's eligible-node order, which is deterministic.
    Coverage per unit comes from the assignment (1 for the base
    formulation, up to ``r`` under redundancy); ranges past 1.0 wrap.
    """
    manifests: Dict[str, NodeManifest] = {
        name: NodeManifest(node=name) for name in node_names
    }
    for unit in units:
        position = 0.0
        # Track the wrapped layout position incrementally instead of
        # recomputing ``position % 1.0``: ``(lo % 1) + f`` and
        # ``(lo + f) % 1`` can differ by an ulp, and a boundary float
        # mismatch between consecutive ranges would open an
        # ulp-wide sliver that no node's half-open range contains.
        # Chaining the cursor makes each range's lo bit-identical to
        # its predecessor's hi.
        cursor = 0.0
        last_entry: Optional[Tuple[str, EntryKey]] = None
        for node in unit.eligible:
            fraction = assignment.fraction(unit.class_name, unit.key, node)
            if fraction <= EPSILON:
                continue
            arc = WrappedRange(start=cursor, length=min(1.0, fraction))
            pieces = tuple(_snap_top(piece) for piece in arc.pieces())
            if pieces:
                manifests[node].entries[(unit.class_name, unit.key)] = pieces
                last_entry = (node, (unit.class_name, unit.key))
            position += fraction
            cursor += fraction
            if cursor >= 1.0:
                cursor -= 1.0
            elif cursor >= 1.0 - EPSILON:
                # The lap boundary landed within EPSILON of the top, so
                # the piece just laid was snapped to end at exactly 1.0
                # (closed top).  The next range must start at the
                # bottom, or it would lay a sliver under the snapped
                # band and cover it fold+1 times.
                cursor = 0.0
        expected = assignment.coverage.get(unit.ident, 1.0)
        if abs(position - expected) > 1e-6:
            raise ValueError(
                f"unit {unit.ident} fractions sum to {position}, expected {expected}"
            )
        # The layout must end exactly at the top of the hash space.
        # Accumulated float error (up to the solver tolerance checked
        # above) can leave the final piece short of 1.0, which would
        # otherwise leak an uncovered sliver into dispatch; snap it.
        if last_entry is not None:
            node, key = last_entry
            entry = manifests[node].entries[key]
            tail = entry[-1]
            if 1.0 - 1e-6 < tail.hi < 1.0:
                manifests[node].entries[key] = entry[:-1] + (
                    HashRange(tail.lo, 1.0),
                )
    registry = get_registry()
    registry.counter(
        "manifest_generations_total", "Fig. 2 manifest-generation runs"
    ).inc()
    registry.histogram(
        "manifest_entries_per_generation",
        "(node, unit) entries produced per generation run",
        buckets=COUNT_BUCKETS,
    ).observe(sum(m.num_entries for m in manifests.values()))
    return manifests


def _snap_top(piece: HashRange) -> HashRange:
    """Snap a laid range ending within ``EPSILON`` of 1.0 to exactly 1.0.

    Wrapped arcs split at the top of the hash space; float error in the
    split position must not leave a piece at ``1.0 - epsilon`` where the
    generator intended exactly 1.0.
    """
    if 1.0 - EPSILON <= piece.hi < 1.0:
        return HashRange(piece.lo, 1.0)
    return piece


def verify_manifests(
    units: Sequence[CoordinationUnit],
    manifests: Mapping[str, NodeManifest],
) -> None:
    """Check the two manifest invariants; raise ``ValueError`` if broken.

    (1) For every unit, the union of all nodes' ranges covers the unit
    hash space exactly ``coverage`` times.  (2) No node's own ranges
    for a unit overlap (a node never analyzes the same traffic twice).
    """
    for unit in units:
        all_pieces: List[HashRange] = []
        coverage_total = 0.0
        for node in unit.eligible:
            pieces = list(manifests[node].ranges(unit.class_name, unit.key))
            if not are_disjoint(pieces):
                raise ValueError(
                    f"node {node} has self-overlapping ranges for {unit.ident}"
                )
            all_pieces.extend(pieces)
            coverage_total += sum(p.length for p in pieces)
        fold = int(round(coverage_total))
        if abs(coverage_total - fold) > 1e-6 or fold < 1:
            raise ValueError(
                f"unit {unit.ident} total coverage {coverage_total} is not a"
                " positive integer"
            )
        if not covers_unit_interval(all_pieces, fold=fold):
            raise ValueError(f"unit {unit.ident} does not cover [0,1] {fold}-fold")
        # The coverage sweep tolerates an EPSILON shortfall at the top;
        # generated manifests must reach 1.0 *exactly* (generate
        # snaps), so solver-epsilon gaps can never reach dispatch.
        top = max(p.hi for p in all_pieces if not p.empty)
        if top != 1.0:  # repnoqa: REP001 -- exactness is the invariant
            raise ValueError(
                f"unit {unit.ident} union tops out at {top!r}, not exactly 1.0"
            )


def sampled_node(
    unit: CoordinationUnit,
    manifests: Mapping[str, NodeManifest],
    hash_value: float,
) -> List[str]:
    """All nodes whose range for *unit* contains *hash_value*.

    Length 1 in the base formulation, ``r`` under redundancy level r.
    """
    return [
        node
        for node in unit.eligible
        if manifests[node].contains(unit.class_name, unit.key, hash_value)
    ]
