"""What-if provisioning analysis (paper Section 5).

"We can also extend the formulations ... to describe what-if
provisioning scenarios: where should an administrator add more
resources or augment existing deployments with more powerful
hardware."  Because both formulations are solved from explicit
capacity inputs, a what-if is simply a re-solve under hypothetical
capacities; this module packages the two analyses administrators ask
for:

* :func:`rank_nids_upgrades` — which single node's CPU/memory upgrade
  lowers the NIDS max-load objective the most;
* :func:`nips_tcam_sweep` — the footprint-reduction return curve of
  provisioning more TCAM per node (diminishing returns locate the
  knee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..topology.graph import Topology
from .nips_milp import NIPSProblem, solve_relaxation
from .nids_lp import solve_nids_lp
from .units import CoordinationUnit


@dataclass
class UpgradeOutcome:
    """Effect of one hypothetical node upgrade on the NIDS objective."""

    node: str
    baseline_objective: float
    upgraded_objective: float

    @property
    def improvement(self) -> float:
        """Fractional objective reduction the upgrade buys."""
        if self.baseline_objective <= 0:
            return 0.0
        return 1.0 - self.upgraded_objective / self.baseline_objective


def rank_nids_upgrades(
    units: Sequence[CoordinationUnit],
    topology: Topology,
    cpu_factor: float = 2.0,
    mem_factor: float = 2.0,
    coverage: float = 1.0,
) -> List[UpgradeOutcome]:
    """Rank single-node upgrades by max-load improvement.

    Re-solves the Section 2.2 LP once per candidate node with that
    node's capacities scaled; the ranking tells the administrator where
    added hardware actually moves the bottleneck.
    """
    baseline = solve_nids_lp(units, topology, coverage).objective
    outcomes: List[UpgradeOutcome] = []
    for name in topology.node_names:
        candidate = topology.copy()
        candidate.scale_capacity(name, cpu_factor=cpu_factor, mem_factor=mem_factor)
        upgraded = solve_nids_lp(units, candidate, coverage).objective
        outcomes.append(
            UpgradeOutcome(
                node=name,
                baseline_objective=baseline,
                upgraded_objective=upgraded,
            )
        )
    outcomes.sort(key=lambda o: o.upgraded_objective)
    return outcomes


@dataclass
class BottleneckReport:
    """Dual-value sensitivity of the NIDS objective to each node."""

    objective: float
    #: Per node: how much of the objective's pressure comes from this
    #: node's CPU / memory max-constraints (LP duals; they sum to ~1).
    cpu_pressure: Dict[str, float]
    mem_pressure: Dict[str, float]

    def binding_nodes(self, threshold: float = 1e-6) -> List[str]:
        """Nodes whose constraints actually shape the optimum."""
        return sorted(
            {
                node
                for node, value in self.cpu_pressure.items()
                if value > threshold
            }
            | {
                node
                for node, value in self.mem_pressure.items()
                if value > threshold
            }
        )


def bottleneck_analysis(
    units: Sequence[CoordinationUnit],
    topology: Topology,
    coverage: float = 1.0,
) -> BottleneckReport:
    """Locate the binding nodes from one LP solve's dual values.

    Where :func:`rank_nids_upgrades` re-solves the LP per candidate,
    this reads the answer off the duals of the per-node max-load
    constraints: only nodes with positive dual pressure constrain the
    objective, so only their upgrades can improve it.  One solve
    instead of ``N+1``.
    """
    from ..lp.solver import solve_or_raise
    from .nids_lp import build_nids_lp

    built = build_nids_lp(units, topology, coverage)
    solution = solve_or_raise(built.program)
    cpu_pressure = {}
    mem_pressure = {}
    for name in topology.node_names:
        cpu_pressure[name] = abs(solution.dual_by_name(f"cpu-max[{name}]"))
        mem_pressure[name] = abs(solution.dual_by_name(f"mem-max[{name}]"))
    return BottleneckReport(
        objective=solution.objective,
        cpu_pressure=cpu_pressure,
        mem_pressure=mem_pressure,
    )


@dataclass
class TCAMSweepPoint:
    """OptLP at one uniform TCAM capacity level."""

    cam_capacity: float
    objective: float


def nips_tcam_sweep(
    problem: NIPSProblem,
    cam_capacities: Sequence[float],
) -> List[TCAMSweepPoint]:
    """Footprint-reduction upper bound as TCAM capacity grows.

    Solves the LP relaxation for each uniform per-node ``CamCap``
    level.  Capacities are restored afterwards; the input problem is
    not left mutated.
    """
    saved = {
        name: problem.topology.node(name).cam_capacity
        for name in problem.topology.node_names
    }
    points: List[TCAMSweepPoint] = []
    try:
        for cap in cam_capacities:
            problem.topology.set_uniform_capacities(cam=cap)
            relaxed = solve_relaxation(problem)
            points.append(TCAMSweepPoint(cam_capacity=cap, objective=relaxed.objective))
    finally:
        for name, cap in saved.items():
            problem.topology.node(name).cam_capacity = cap
    return points
