"""The coordinated-NIDS decision procedure (paper Fig. 3).

On node ``R_j``, for each arriving packet:

1. ``GET_CLASS`` — find the modules whose traffic specification the
   packet matches (a packet may be analyzed by several modules);
2. ``GET_COORD_UNIT`` — find the packet's coordination unit for each
   such module;
3. ``HASH`` — hash the class-appropriate header fields into ``[0, 1)``;
4. analyze with module ``C_i`` iff the hash falls in this node's
   assigned range for the unit.

:class:`CoordinatedDispatcher` implements this against a node's
:class:`~repro.core.manifest.NodeManifest`.  Unit resolution uses the
host-to-home-PoP mapping embedded in host identifiers, standing in for
the paper's prefix-to-ingress configuration files.

Session-level dispatch (:meth:`decide_session`) is exact for every
scope.  Packet-level dispatch (:meth:`decide_packet`) is exact for
path-scoped classes (the unordered location pair is direction
independent); for ingress/egress-scoped classes it orients the
connection like Bro does — by connection record, here approximated by
the canonical tuple — and is used by the per-packet engine tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hashing.keys import Aggregation, key_hash_unit
from ..hashing.vectorized import key_hash_unit_batch
from ..nids.modules.base import ModuleSpec, Scope
from ..traffic.batch import SessionBatch
from ..traffic.generator import home_node_index
from ..traffic.packet import Packet
from ..traffic.session import Session
from .manifest import NodeManifest
from .manifest_index import ManifestIndex
from .units import UnitKey, unit_key_for_session

#: Raw 5-tuple fields, the per-aggregation hash-cache key.
FieldKey = Tuple[int, int, int, int, int]


class UnitResolver:
    """``GET_COORD_UNIT``: map traffic to coordination-unit keys.

    Holds the node-name table needed to translate a host identifier's
    home-PoP index back to a node name.
    """

    def __init__(self, node_names: Sequence[str]):
        self._node_names = list(node_names)

    def home_of(self, host: int) -> str:
        """Node name of the host's home PoP."""
        return self._node_names[home_node_index(host)]

    def session_unit(self, spec: ModuleSpec, session: Session) -> UnitKey:
        """Unit key for *session* under *spec* (GET_COORD_UNIT)."""
        return unit_key_for_session(spec, session)

    def packet_unit(self, spec: ModuleSpec, packet: Packet) -> UnitKey:
        """Unit key for a bare packet.

        Path scope is direction-independent.  For ingress/egress scope
        the initiator is taken from the canonical orientation (in the
        engine, the connection record supplies the true initiator).
        """
        src_home = self.home_of(packet.tuple.src)
        dst_home = self.home_of(packet.tuple.dst)
        if spec.scope is Scope.PATH:
            return tuple(sorted((src_home, dst_home)))
        oriented = packet.tuple.canonical()
        initiator_home = self.home_of(oriented.src)
        responder_home = self.home_of(oriented.dst)
        if spec.scope is Scope.INGRESS:
            return (initiator_home,)
        return (responder_home,)


@dataclass
class DispatchDecision:
    """Outcome of the Fig. 3 procedure for one module on one packet."""

    module: ModuleSpec
    unit: UnitKey
    hash_value: float
    analyze: bool


@dataclass
class ModuleBatchDecision:
    """Per-module full-length masks over one :class:`SessionBatch`.

    ``match`` is the traffic-filter predicate, ``analyze`` the Fig. 3
    sampling verdict, and ``responsible`` whether this node holds any
    range for the session's coordination unit (regardless of where the
    hash lands) — the three per-(module, session) booleans the engine
    consumes.
    """

    spec: ModuleSpec
    match: np.ndarray
    analyze: np.ndarray
    responsible: np.ndarray


class CoordinatedDispatcher:
    """Per-node implementation of the coordinated-NIDS algorithm."""

    def __init__(
        self,
        node: str,
        manifest: NodeManifest,
        modules: Sequence[ModuleSpec],
        resolver: UnitResolver,
        hash_seed: int = 0,
        hash_cache: Optional[Dict[Aggregation, Dict[FieldKey, float]]] = None,
    ):
        if manifest.node != node:
            raise ValueError(
                f"manifest belongs to {manifest.node!r}, dispatcher is {node!r}"
            )
        self.node = node
        self.manifest = manifest
        self.modules = list(modules)
        self.resolver = resolver
        self.hash_seed = hash_seed
        # Hash values depend only on (aggregation, key fields); cache
        # them per canonical tuple the way the Bro extension caches
        # hashes in the connection record (Section 2.3).  The cache may
        # be shared across nodes — values are node independent — and is
        # nested per aggregation so batch lookups probe one sub-dict.
        self._hash_cache: Dict[Aggregation, Dict[FieldKey, float]] = (
            hash_cache if hash_cache is not None else {}
        )
        self._manifest_index: Optional[ManifestIndex] = None
        # Plain ints, not registry metrics: _hash runs once per
        # (session, aggregation) and a registry call there would blow
        # the telemetry overhead budget.  The engine reads these as
        # deltas at end of trace and folds them into its registry.
        self.cache_hits = 0
        self.cache_misses = 0
        self.batch_hashes = 0

    @property
    def index(self) -> ManifestIndex:
        """The manifest compiled for searchsorted checks (built lazily)."""
        if self._manifest_index is None:
            self._manifest_index = ManifestIndex(self.manifest)
        return self._manifest_index

    # -- hashing ------------------------------------------------------------
    def _hash(self, aggregation: Aggregation, src: int, dst: int, sport: int,
              dport: int, proto: int) -> float:
        from ..hashing.keys import key_for
        from ..hashing.bobhash import hash_unit

        # Cache on the raw fields: serializing the key bytes is itself
        # the dominant cost on cache hits, which dominate in network-
        # wide emulation (the same session is checked at every node on
        # its path).
        sub = self._hash_cache.get(aggregation)
        if sub is None:
            sub = self._hash_cache.setdefault(aggregation, {})
        cache_key = (src, dst, sport, dport, proto)
        cached = sub.get(cache_key)
        if cached is None:
            key = key_for(aggregation, src, dst, sport, dport, proto)
            cached = hash_unit(key, self.hash_seed)
            sub[cache_key] = cached
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        return cached

    def _hash_batch(
        self,
        aggregation: Aggregation,
        tuples: List,
        src: np.ndarray,
        dst: np.ndarray,
        sport: np.ndarray,
        dport: np.ndarray,
        proto: np.ndarray,
    ) -> np.ndarray:
        """Vectorized HASH over all sessions of a batch.

        The vector sweep recomputes every hash: one NumPy pass is
        cheaper than per-element probes of the shared cache (measured —
        the probe loop, not hashing, dominated a cache-aware variant).
        Values are bit-identical to :meth:`_hash` either way.  A cold
        shared cache is warmed from the sweep so the scalar path (and
        single-session traces) still benefit from batch work.
        """
        values = key_hash_unit_batch(
            aggregation, src, dst, sport, dport, proto, self.hash_seed
        )
        self.batch_hashes += len(values)
        sub = self._hash_cache.setdefault(aggregation, {})
        if not sub:
            for t, value in zip(tuples, values.tolist()):
                sub[(t.src, t.dst, t.sport, t.dport, t.proto)] = value
        return values

    def session_hash(self, spec: ModuleSpec, session: Session) -> float:
        """HASH over the session's class-appropriate key fields."""
        t = session.tuple
        return self._hash(spec.aggregation, t.src, t.dst, t.sport, t.dport, t.proto)

    def packet_hash(self, spec: ModuleSpec, packet: Packet) -> float:
        """HASH over the packet's class-appropriate key fields."""
        t = packet.tuple
        return self._hash(spec.aggregation, t.src, t.dst, t.sport, t.dport, t.proto)

    # -- decisions ------------------------------------------------------------
    def decide_session(self, session: Session) -> List[DispatchDecision]:
        """Fig. 3 at connection granularity (the engine's fast path)."""
        decisions = []
        for spec in self.modules:
            if not spec.traffic_filter.matches_session(session):
                continue
            unit = self.resolver.session_unit(spec, session)
            hash_value = self.session_hash(spec, session)
            decisions.append(
                DispatchDecision(
                    module=spec,
                    unit=unit,
                    hash_value=hash_value,
                    analyze=self.manifest.contains(spec.name, unit, hash_value),
                )
            )
        return decisions

    def decide_packet(self, packet: Packet) -> List[DispatchDecision]:
        """Fig. 3 at packet granularity."""
        decisions = []
        for spec in self.modules:
            if not spec.traffic_filter.matches_packet(packet):
                continue
            unit = self.resolver.packet_unit(spec, packet)
            hash_value = self.packet_hash(spec, packet)
            decisions.append(
                DispatchDecision(
                    module=spec,
                    unit=unit,
                    hash_value=hash_value,
                    analyze=self.manifest.contains(spec.name, unit, hash_value),
                )
            )
        return decisions

    # -- batch decisions -----------------------------------------------------
    def _units_by_scope(self, batch: SessionBatch) -> Dict[Scope, List[UnitKey]]:
        """Per-scope gid-to-unit-key tables for the batch's pair groups.

        Unit keys depend only on the routing pair and the module scope,
        so resolving once per distinct pair (instead of once per
        (module, session)) collapses GET_COORD_UNIT to a table lookup.
        """
        pairs = batch.pairs
        return {
            Scope.PATH: [tuple(sorted(pair)) for pair in pairs],
            Scope.INGRESS: [(pair[0],) for pair in pairs],
            Scope.EGRESS: [(pair[1],) for pair in pairs],
        }

    def _as_batch(self, sessions) -> SessionBatch:
        if isinstance(sessions, SessionBatch):
            return sessions
        return SessionBatch(sessions)

    def _decide_batch_raw(
        self, sessions
    ) -> List[
        Tuple[np.ndarray, np.ndarray, np.ndarray, List[UnitKey], np.ndarray, np.ndarray]
    ]:
        """Vectorized Fig. 3 over a session batch (or :class:`SessionBatch`).

        Returns, per module (in module order): the full-length match
        mask, the matched session indices, their unit-group ids, the
        scope's gid-to-unit-key table, their hash values, and the
        analyze flags.  Semantics are identical to running
        :meth:`decide_session` per session.
        """
        batch = self._as_batch(sessions)
        n = len(batch)
        if n == 0:
            return [
                (
                    np.empty(0, dtype=bool),
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.intp),
                    [],
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=bool),
                )
                for _ in self.modules
            ]
        group_ids = batch.group_ids
        units_by_scope = self._units_by_scope(batch)
        index = self.index

        hashes_by_aggregation: Dict[Aggregation, np.ndarray] = {}
        results = []
        for spec in self.modules:
            all_hashes = hashes_by_aggregation.get(spec.aggregation)
            if all_hashes is None:
                all_hashes = self._hash_batch(
                    spec.aggregation,
                    batch.tuples,
                    batch.src,
                    batch.dst,
                    batch.sport,
                    batch.dport,
                    batch.proto,
                )
                hashes_by_aggregation[spec.aggregation] = all_hashes
            mask = spec.traffic_filter.matches_sessions_batch(
                batch.proto, batch.dport
            )
            matched = np.flatnonzero(mask)
            unit_table = units_by_scope[spec.scope]
            matched_gids = group_ids[matched]
            matched_hashes = all_hashes[matched]
            flags = np.zeros(len(matched), dtype=bool)
            if len(matched):
                # One searchsorted per (unit, batch) instead of one
                # linear range scan per (unit, session).
                order = np.argsort(matched_gids, kind="stable")
                sorted_gids = matched_gids[order]
                cuts = np.flatnonzero(np.diff(sorted_gids)) + 1
                for group in np.split(order, cuts):
                    unit = unit_table[matched_gids[group[0]]]
                    flags[group] = index.contains_batch(
                        spec.name, unit, matched_hashes[group]
                    )
            results.append(
                (mask, matched, matched_gids, unit_table, matched_hashes, flags)
            )
        return results

    def decide_batch(
        self, sessions: Sequence[Session]
    ) -> List[List[DispatchDecision]]:
        """Fig. 3 over a batch: per-session decision lists.

        Produces exactly ``[self.decide_session(s) for s in sessions]``
        (same modules, units, bit-identical hash values, same analyze
        verdicts) via the vectorized fast path.
        """
        decisions: List[List[DispatchDecision]] = [[] for _ in sessions]
        for spec, (_mask, matched, gids, unit_table, hashes, flags) in zip(
            self.modules, self._decide_batch_raw(sessions)
        ):
            for j, i in enumerate(matched):
                decisions[i].append(
                    DispatchDecision(
                        module=spec,
                        unit=unit_table[gids[j]],
                        hash_value=float(hashes[j]),
                        analyze=bool(flags[j]),
                    )
                )
        return decisions

    def sampled_modules_batch(
        self, sessions: Sequence[Session]
    ) -> List[List[ModuleSpec]]:
        """Lean batch path: per session, the modules that sample it.

        Equivalent to ``[[spec for spec in self.modules if
        self.should_analyze(spec, s)] for s in sessions]`` — the per-
        session inner loop of the emulation engine — without building
        decision objects.
        """
        sampled: List[List[ModuleSpec]] = [[] for _ in sessions]
        for spec, (_mask, matched, _gids, _units, _hashes, flags) in zip(
            self.modules, self._decide_batch_raw(sessions)
        ):
            for i in matched[flags]:
                sampled[i].append(spec)
        return sampled

    def batch_decisions(self, batch: SessionBatch) -> List["ModuleBatchDecision"]:
        """Full-length per-module masks for the vectorized engine.

        For each module (in module order): the traffic-filter match
        mask, the Fig. 3 analyze mask (match AND hash-in-range), and
        the responsibility mask (this node holds *some* range for the
        session's unit — the engine's ``_responsible`` check).  All
        element-wise identical to the scalar predicates.
        """
        raw = self._decide_batch_raw(batch)
        n = len(batch)
        out: List[ModuleBatchDecision] = []
        for spec, (mask, matched, _gids, unit_table, _hashes, flags) in zip(
            self.modules, raw
        ):
            analyze = np.zeros(n, dtype=bool)
            if len(matched):
                analyze[matched[flags]] = True
            if unit_table:
                table = np.fromiter(
                    (self.manifest.responsible(spec.name, unit) for unit in unit_table),
                    dtype=bool,
                    count=len(unit_table),
                )
                responsible = table[batch.group_ids]
            else:
                responsible = np.zeros(n, dtype=bool)
            out.append(ModuleBatchDecision(spec, mask, analyze, responsible))
        return out

    def should_analyze(self, spec: ModuleSpec, session: Session) -> bool:
        """Single-module convenience wrapper over :meth:`decide_session`."""
        if not spec.traffic_filter.matches_session(session):
            return False
        unit = self.resolver.session_unit(spec, session)
        return self.manifest.contains(
            spec.name, unit, self.session_hash(spec, session)
        )
