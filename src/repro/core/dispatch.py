"""The coordinated-NIDS decision procedure (paper Fig. 3).

On node ``R_j``, for each arriving packet:

1. ``GET_CLASS`` — find the modules whose traffic specification the
   packet matches (a packet may be analyzed by several modules);
2. ``GET_COORD_UNIT`` — find the packet's coordination unit for each
   such module;
3. ``HASH`` — hash the class-appropriate header fields into ``[0, 1)``;
4. analyze with module ``C_i`` iff the hash falls in this node's
   assigned range for the unit.

:class:`CoordinatedDispatcher` implements this against a node's
:class:`~repro.core.manifest.NodeManifest`.  Unit resolution uses the
host-to-home-PoP mapping embedded in host identifiers, standing in for
the paper's prefix-to-ingress configuration files.

Session-level dispatch (:meth:`decide_session`) is exact for every
scope.  Packet-level dispatch (:meth:`decide_packet`) is exact for
path-scoped classes (the unordered location pair is direction
independent); for ingress/egress-scoped classes it orients the
connection like Bro does — by connection record, here approximated by
the canonical tuple — and is used by the per-packet engine tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hashing.keys import Aggregation, key_hash_unit
from ..nids.modules.base import ModuleSpec, Scope
from ..traffic.generator import home_node_index
from ..traffic.packet import Packet
from ..traffic.session import Session
from .manifest import NodeManifest
from .units import UnitKey, unit_key_for_session


class UnitResolver:
    """``GET_COORD_UNIT``: map traffic to coordination-unit keys.

    Holds the node-name table needed to translate a host identifier's
    home-PoP index back to a node name.
    """

    def __init__(self, node_names: Sequence[str]):
        self._node_names = list(node_names)

    def home_of(self, host: int) -> str:
        """Node name of the host's home PoP."""
        return self._node_names[home_node_index(host)]

    def session_unit(self, spec: ModuleSpec, session: Session) -> UnitKey:
        """Unit key for *session* under *spec* (GET_COORD_UNIT)."""
        return unit_key_for_session(spec, session)

    def packet_unit(self, spec: ModuleSpec, packet: Packet) -> UnitKey:
        """Unit key for a bare packet.

        Path scope is direction-independent.  For ingress/egress scope
        the initiator is taken from the canonical orientation (in the
        engine, the connection record supplies the true initiator).
        """
        src_home = self.home_of(packet.tuple.src)
        dst_home = self.home_of(packet.tuple.dst)
        if spec.scope is Scope.PATH:
            return tuple(sorted((src_home, dst_home)))
        oriented = packet.tuple.canonical()
        initiator_home = self.home_of(oriented.src)
        responder_home = self.home_of(oriented.dst)
        if spec.scope is Scope.INGRESS:
            return (initiator_home,)
        return (responder_home,)


@dataclass
class DispatchDecision:
    """Outcome of the Fig. 3 procedure for one module on one packet."""

    module: ModuleSpec
    unit: UnitKey
    hash_value: float
    analyze: bool


class CoordinatedDispatcher:
    """Per-node implementation of the coordinated-NIDS algorithm."""

    def __init__(
        self,
        node: str,
        manifest: NodeManifest,
        modules: Sequence[ModuleSpec],
        resolver: UnitResolver,
        hash_seed: int = 0,
        hash_cache: Optional[Dict[Tuple[Aggregation, bytes], float]] = None,
    ):
        if manifest.node != node:
            raise ValueError(
                f"manifest belongs to {manifest.node!r}, dispatcher is {node!r}"
            )
        self.node = node
        self.manifest = manifest
        self.modules = list(modules)
        self.resolver = resolver
        self.hash_seed = hash_seed
        # Hash values depend only on (aggregation, key fields); cache
        # them per canonical tuple the way the Bro extension caches
        # hashes in the connection record (Section 2.3).  The cache may
        # be shared across nodes — values are node independent.
        self._hash_cache: Dict[Tuple[Aggregation, bytes], float] = (
            hash_cache if hash_cache is not None else {}
        )

    # -- hashing ------------------------------------------------------------
    def _hash(self, aggregation: Aggregation, src: int, dst: int, sport: int,
              dport: int, proto: int) -> float:
        from ..hashing.keys import key_for
        from ..hashing.bobhash import hash_unit

        # Cache on the raw fields: serializing the key bytes is itself
        # the dominant cost on cache hits, which dominate in network-
        # wide emulation (the same session is checked at every node on
        # its path).
        cache_key = (aggregation, src, dst, sport, dport, proto)
        cached = self._hash_cache.get(cache_key)
        if cached is None:
            key = key_for(aggregation, src, dst, sport, dport, proto)
            cached = hash_unit(key, self.hash_seed)
            self._hash_cache[cache_key] = cached
        return cached

    def session_hash(self, spec: ModuleSpec, session: Session) -> float:
        """HASH over the session's class-appropriate key fields."""
        t = session.tuple
        return self._hash(spec.aggregation, t.src, t.dst, t.sport, t.dport, t.proto)

    def packet_hash(self, spec: ModuleSpec, packet: Packet) -> float:
        """HASH over the packet's class-appropriate key fields."""
        t = packet.tuple
        return self._hash(spec.aggregation, t.src, t.dst, t.sport, t.dport, t.proto)

    # -- decisions ------------------------------------------------------------
    def decide_session(self, session: Session) -> List[DispatchDecision]:
        """Fig. 3 at connection granularity (the engine's fast path)."""
        decisions = []
        for spec in self.modules:
            if not spec.traffic_filter.matches_session(session):
                continue
            unit = self.resolver.session_unit(spec, session)
            hash_value = self.session_hash(spec, session)
            decisions.append(
                DispatchDecision(
                    module=spec,
                    unit=unit,
                    hash_value=hash_value,
                    analyze=self.manifest.contains(spec.name, unit, hash_value),
                )
            )
        return decisions

    def decide_packet(self, packet: Packet) -> List[DispatchDecision]:
        """Fig. 3 at packet granularity."""
        decisions = []
        for spec in self.modules:
            if not spec.traffic_filter.matches_packet(packet):
                continue
            unit = self.resolver.packet_unit(spec, packet)
            hash_value = self.packet_hash(spec, packet)
            decisions.append(
                DispatchDecision(
                    module=spec,
                    unit=unit,
                    hash_value=hash_value,
                    analyze=self.manifest.contains(spec.name, unit, hash_value),
                )
            )
        return decisions

    def should_analyze(self, spec: ModuleSpec, session: Session) -> bool:
        """Single-module convenience wrapper over :meth:`decide_session`."""
        if not spec.traffic_filter.matches_session(session):
            return False
        unit = self.resolver.session_unit(spec, session)
        return self.manifest.contains(
            spec.name, unit, self.session_hash(spec, session)
        )
