"""Exact, order-independent float accumulation.

The engine's resource accounting sums millions of per-session CPU
charges.  Plain left-to-right ``+=`` makes the total depend on session
order and on how the trace was chunked — two runs over the same
sessions can differ in the last ulps, which breaks the repo's
bit-identical-report discipline the moment traces are streamed in
chunks, sharded per node, or vectorized (NumPy reductions use pairwise
summation, not sequential).

:class:`ExactSum` removes ordering from the semantics entirely.  Every
IEEE-754 double is an integer multiple of ``2**-_SHIFT`` (``_SHIFT``
clears the smallest subnormal), so a sum of doubles is represented
*exactly* as a single arbitrary-precision integer numerator over the
fixed denominator ``2**_SHIFT``.  Adding a value, adding a whole NumPy
array, and merging two accumulators are all exact integer additions —
associative and commutative — and :meth:`value` performs one correctly
rounded conversion at the end.  Consequences:

* scalar and vectorized paths that charge the same multiset of
  per-session costs produce bit-identical totals;
* chunked/streamed runs merge to exactly the one-shot total, for any
  chunk size and any merge order.

The representation is also loss-free to serialize (hex numerator), so
partial reports can cross process boundaries and still merge exactly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List

#: Fixed binary scale: ``value == _num * 2**-_SHIFT``.  ``frexp`` maps a
#: double to ``m * 2**e`` with ``m`` in [0.5, 1); the smallest exponent
#: it can return is -1073 (the minimum subnormal), so ``e - 53 + _SHIFT``
#: is never negative and every double lands on the grid exactly.
_SHIFT = 1126

_TWO53 = float(1 << 53)

#: Per-call block bound for :meth:`ExactSum.add_array`: mantissa halves
#: are 27-bit, so int64 partial sums stay overflow-free for any block
#: of fewer than 2**36 elements; 2**20 keeps peak temporaries small.
_BLOCK = 1 << 20


class ExactSum:
    """An exact running sum of IEEE-754 doubles.

    Supports scalar :meth:`add`, vectorized :meth:`add_array`, and
    exact :meth:`merge` of two accumulators.  Equality compares the
    exact sums, not their rounded float renderings.
    """

    __slots__ = ("_num",)

    def __init__(self, _num: int = 0):
        self._num = _num

    # -- accumulation -----------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one float into the exact sum."""
        mantissa, exponent = math.frexp(value)
        self._num += int(mantissa * _TWO53) << (exponent - 53 + _SHIFT)

    def add_array(self, values) -> None:
        """Fold a NumPy float64 array into the exact sum.

        Equivalent to ``for v in values: self.add(v)`` but vectorized:
        mantissas are extracted in bulk and summed per distinct
        exponent with overflow-safe 27-bit splits.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if not np.isfinite(values).all():
            raise ValueError("ExactSum requires finite values")
        for start in range(0, len(values), _BLOCK):
            block = values[start : start + _BLOCK]
            mantissa, exponent = np.frexp(block)
            digits = (mantissa * _TWO53).astype(np.int64)
            shifts = exponent.astype(np.int64) - 53 + _SHIFT
            for shift in np.unique(shifts):
                chosen = digits[shifts == shift]
                high = int((chosen >> 27).sum(dtype=np.int64))
                low = int((chosen & 0x7FFFFFF).sum(dtype=np.int64))
                self._num += ((high << 27) + low) << int(shift)

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in — exact, order-independent."""
        self._num += other._num

    # -- rendering --------------------------------------------------------
    def value(self) -> float:
        """The correctly rounded float of the exact sum."""
        if self._num == 0:
            return 0.0
        return float(Fraction(self._num, 1 << _SHIFT))

    # -- identity / transport ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactSum):
            return NotImplemented
        return self._num == other._num

    def __hash__(self) -> int:  # pragma: no cover - not used as key
        return hash(self._num)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactSum({self.value()!r})"

    def __getstate__(self) -> int:
        return self._num

    def __setstate__(self, state: int) -> None:
        self._num = state

    def __reduce__(self):
        return (ExactSum, (self._num,))

    def to_hex(self) -> str:
        """Loss-free string form for JSON transport."""
        return hex(self._num)

    @classmethod
    def from_hex(cls, text: str) -> "ExactSum":
        """Rebuild from :meth:`to_hex` output."""
        return cls(int(text, 16))

    @classmethod
    def of(cls, values: Iterable[float]) -> "ExactSum":
        """Accumulator over an iterable of floats."""
        acc = cls()
        for value in values:
            acc.add(value)
        return acc


def exact_total(partials: List[ExactSum]) -> float:
    """Correctly rounded sum across accumulators (merge + render)."""
    merged = ExactSum()
    for partial in partials:
        merged.merge(partial)
    return merged.value()
