"""Handling traffic and routing changes (paper Section 5).

The operations center periodically re-solves the assignment LP as
traffic reports arrive.  Two concerns arise:

* **Traffic changes** — short-term bursts are absorbed by planning
  against conservative (e.g. 95th-percentile) volumes, trading some
  optimality for robustness; :func:`conservative_units` inflates unit
  volumes accordingly.

* **Routing/assignment changes** — when the optimal solution moves, a
  node holding connection state for some hash range may no longer be
  responsible for it.  "To ensure correctness ... nodes temporarily
  retain the old responsibilities until existing connections in these
  assignments expire.  That is, each node picks up new assignments
  immediately but takes on no new connections in the old assignments."
  :class:`TransitionPlan` implements exactly that dual-manifest window:
  per node, *new* connections follow the new manifest while
  *pre-existing* connections continue under the old one, and the plan
  reports the duplication this temporarily costs.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..hashing.ranges import EPSILON, HashRange
from .manifest import NodeManifest
from .nids_deployment import NIDSDeployment
from .units import CoordinationUnit, UnitKey


#: Every measured resource field of a :class:`CoordinationUnit` that a
#: headroom factor must scale.  Kept in one place so a new resource
#: dimension cannot be silently missed by :func:`conservative_units`.
RESOURCE_FIELDS = ("pkts", "items", "cpu_work", "mem_bytes")


def conservative_units(
    units: Sequence[CoordinationUnit], headroom: float = 1.3
) -> List[CoordinationUnit]:
    """Inflate unit volumes by *headroom* (e.g. 95th-percentile ≈ 1.3×
    the mean for bursty traffic) before solving the LP.

    The resulting assignment is feasible for bursts up to the headroom
    at the cost of a proportionally higher planned max load.  All
    resource fields (``pkts``, ``items``, ``cpu_work``, ``mem_bytes``)
    scale together; identity fields (class, key, eligible set) are
    preserved.  A headroom within EPSILON of 1.0 is a no-op fast path
    returning the units unscaled (the controller's default per-epoch
    path) — callers computing headroom as e.g. ``p95 / mean`` land a
    solver-epsilon below 1.0 and must not be rejected.
    """
    if not math.isfinite(headroom):
        raise ValueError(f"headroom must be finite, got {headroom!r}")
    if headroom < 1.0 - EPSILON:
        raise ValueError("headroom must be >= 1")
    if abs(headroom - 1.0) <= EPSILON:
        return list(units)
    return [
        dataclasses.replace(
            unit,
            **{name: getattr(unit, name) * headroom for name in RESOURCE_FIELDS},
        )
        for unit in units
    ]


@dataclass
class TransitionPlan:
    """The dual-manifest window between two deployments.

    During the transition, node ``j`` must:

    * sample *new* connections per ``new.manifests[j]``;
    * keep analyzing *existing* connections that fall in
      ``old.manifests[j]`` until they expire.

    :meth:`responsible_for_new` / :meth:`responsible_for_existing`
    answer the two questions a node asks per connection, and
    :meth:`duplicated_fraction` quantifies the temporary extra coverage
    (hash-space mass analyzed at more than one node) the paper accepts
    for correctness.
    """

    old: NIDSDeployment
    new: NIDSDeployment

    def responsible_for_new(
        self, node: str, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should *node* take on a NEW connection for this traffic?"""
        return self.new.manifests[node].contains(class_name, key, hash_value)

    def responsible_for_existing(
        self, node: str, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should *node* keep analyzing an EXISTING connection?

        Old responsibilities are retained, and new responsibilities
        begin immediately, so during the window the node answers yes
        for the union of both manifests.
        """
        return self.old.manifests[node].contains(
            class_name, key, hash_value
        ) or self.new.manifests[node].contains(class_name, key, hash_value)

    def duplicated_fraction(self, class_name: str, key: UnitKey) -> float:
        """Hash-space mass of the unit analyzed at >1 node mid-window.

        A point is duplicated when the old and new manifests place it
        at different nodes; mass where both agree transitions with no
        duplication.
        """
        duplicated = 0.0
        nodes = set(self.old.manifests) | set(self.new.manifests)
        # Sorted: the float fold below must not depend on set order.
        for node in sorted(nodes):
            old_ranges = self.old.manifests[node].ranges(class_name, key)
            new_ranges = self.new.manifests[node].ranges(class_name, key)
            # Mass held under either manifest, minus the overlap the
            # node keeps under both (not duplicated anywhere else).
            old_mass = sum(r.length for r in old_ranges)
            overlap = sum(
                old_piece.intersection_length(new_piece)
                for old_piece in old_ranges
                for new_piece in new_ranges
            )
            duplicated += old_mass - overlap
        return duplicated

    def orphaned_fraction(self, class_name: str, key: UnitKey) -> float:
        """Mass whose old holder is off the new routing path entirely.

        For such ranges, packets of existing connections may no longer
        traverse the retaining node; the paper's remedy is to transfer
        the NIDS state to the new holder (Sommer & Paxson's independent
        state).  The planner surfaces the affected mass so operators
        can budget the transfer.
        """
        new_unit = next(
            (
                u
                for u in self.new.units
                if u.class_name == class_name and u.key == key
            ),
            None,
        )
        if new_unit is None:
            return 0.0
        reachable = set(new_unit.eligible)
        orphaned = 0.0
        for node, manifest in self.old.manifests.items():
            if node in reachable:
                continue
            orphaned += sum(
                r.length for r in manifest.ranges(class_name, key)
            )
        return orphaned

    def handoffs(self) -> List[Tuple[str, UnitKey, str, str, float]]:
        """All (class, unit, from-node, to-node, mass) state transfers
        the transition implies, largest first."""
        transfers: List[Tuple[str, UnitKey, str, str, float]] = []
        idents = {
            (u.class_name, u.key) for u in self.old.units
        } | {(u.class_name, u.key) for u in self.new.units}
        nodes = set(self.old.manifests) | set(self.new.manifests)
        for class_name, key in idents:
            for donor in nodes:
                old_ranges = self.old.manifests[donor].ranges(class_name, key)
                if not old_ranges:
                    continue
                for receiver in nodes:
                    if receiver == donor:
                        continue
                    new_ranges = self.new.manifests[receiver].ranges(class_name, key)
                    mass = sum(
                        o.intersection_length(n)
                        for o in old_ranges
                        for n in new_ranges
                    )
                    if mass > 1e-9:
                        transfers.append((class_name, key, donor, receiver, mass))
        transfers.sort(key=lambda t: -t[4])
        return transfers


def plan_transition(old: NIDSDeployment, new: NIDSDeployment) -> TransitionPlan:
    """Build the dual-manifest transition between two deployments.

    The deployments must cover the same topology (node sets equal);
    unit sets may differ — routing changes alter eligible sets, and
    traffic changes alter which units exist at all.
    """
    if set(old.manifests) != set(new.manifests):
        raise ValueError("transition requires identical node sets")
    return TransitionPlan(old=old, new=new)
