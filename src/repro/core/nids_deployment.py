"""End-to-end NIDS deployment planning.

Ties the pipeline together: measure coordination-unit volumes from a
session trace, solve the Section 2.2 LP, translate the optimum into
per-node sampling manifests (Fig. 2), and hand out per-node
dispatchers (Fig. 3).  This is the operations-center role the paper
envisions: "a centralized operations center periodically configures
the NIDS responsibilities of the different nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..nids.modules.base import ModuleSpec
from ..topology.graph import Topology
from ..topology.routing import PathSet
from ..traffic.session import Session
from .dispatch import CoordinatedDispatcher, UnitResolver
from .manifest import (
    NodeManifest,
    generate_manifests,
    verify_manifests,
)
from .nids_lp import NIDSAssignment, solve_nids_lp, uniform_assignment
from .units import CoordinationUnit, build_units


@dataclass
class NIDSDeployment:
    """A planned network-wide NIDS configuration."""

    topology: Topology
    paths: PathSet
    modules: List[ModuleSpec]
    units: List[CoordinationUnit]
    assignment: NIDSAssignment
    manifests: Dict[str, NodeManifest]
    resolver: UnitResolver
    hash_seed: int = 0
    _shared_hash_cache: dict = field(default_factory=dict, repr=False)

    def dispatcher(self, node: str) -> CoordinatedDispatcher:
        """The Fig. 3 dispatcher for *node*.

        Dispatchers share one hash cache: hash values depend only on
        header fields, so recomputing them per node would only slow the
        emulation down without changing any decision.
        """
        return CoordinatedDispatcher(
            node=node,
            manifest=self.manifests[node],
            modules=self.modules,
            resolver=self.resolver,
            hash_seed=self.hash_seed,
            hash_cache=self._shared_hash_cache,
        )

    @property
    def objective(self) -> float:
        """The planned max-load objective."""
        return self.assignment.objective


def plan_deployment(
    topology: Topology,
    paths: PathSet,
    modules: Sequence[ModuleSpec],
    sessions: Sequence[Session],
    coverage: float = 1.0,
    hash_seed: int = 0,
    use_lp: bool = True,
    verify: bool = True,
    units: Optional[Sequence[CoordinationUnit]] = None,
) -> NIDSDeployment:
    """Plan a coordinated deployment for *sessions* on *topology*.

    ``use_lp=False`` substitutes the naive uniform split (the ablation
    baseline); ``coverage`` > 1 plans r-fold redundant analysis
    (Section 2.5).  ``verify`` re-checks the manifest invariants, which
    is cheap relative to the LP solve.  ``units`` may supply
    pre-computed coordination-unit volumes (e.g. estimated from NetFlow
    by :func:`repro.measurement.estimate_units`) in place of measuring
    *sessions* directly.
    """
    modules = list(modules)
    units = list(units) if units is not None else build_units(modules, sessions, paths)
    if use_lp:
        assignment = solve_nids_lp(units, topology, coverage)
    else:
        assignment = uniform_assignment(units, topology, coverage)
    manifests = generate_manifests(units, assignment, topology.node_names)
    if verify:
        verify_manifests(units, manifests)
    return NIDSDeployment(
        topology=topology,
        paths=paths,
        modules=modules,
        units=units,
        assignment=assignment,
        manifests=manifests,
        resolver=UnitResolver(topology.node_names),
        hash_seed=hash_seed,
    )
