"""Online adaptation of NIPS deployments (paper Section 3.5).

Adversaries control the unwanted-traffic profile: the match rates
``M_ik`` change over time and are revealed only after each epoch's
deployment decision.  Following Kalai–Vempala, the *follow the
perturbed leader* (FPL) strategy feeds a perturbed sum of the observed
state vectors to the offline optimizer ``Λ`` and provably achieves
average regret ``sqrt(D R A / γ) / γ → 0`` against the best static
solution in hindsight.

The decision space here is the TCAM-free NIPS polytope (Eqs. 9–11 and
13, no ``e`` variables), exactly as the paper's preliminary evaluation;
``Λ`` is one LP solve.  State vectors have one component per
``(i, k, j)``: ``S_ikj = T_ik^items × M_ik × Dist_ikj``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..lp.model import LinearProgram, Sense, Variable, linear_sum
from ..lp.solver import solve_or_raise
from .nips_milp import DKey, NIPSProblem

MatchRates = Dict[Tuple[int, Tuple[str, str]], float]
Decision = Dict[DKey, float]


def state_vector(problem: NIPSProblem, rates: Mapping) -> Dict[DKey, float]:
    """``S_t``: per-component value of filtering under match rates."""
    state: Dict[DKey, float] = {}
    for pair in problem.pairs:
        items = problem.items[pair]
        for rule in problem.rules:
            rate = rates.get((rule.index, pair), 0.0)
            if rate <= 0.0:
                continue
            for node in problem.paths[pair].nodes:
                state[(rule.index, pair, node)] = (
                    items * rate * problem.dist[pair][node]
                )
    return state


def decision_value(state: Mapping[DKey, float], decision: Mapping[DKey, float]) -> float:
    """``O · S``: footprint reduction achieved by *decision* under *state*."""
    return sum(weight * decision.get(key, 0.0) for key, weight in state.items())


def solve_best_response(
    problem: NIPSProblem, weights: Mapping[DKey, float]
) -> Decision:
    """``Λ``: the offline optimizer over the TCAM-free polytope.

    Maximizes ``sum(weights * d)`` subject to the node memory/CPU
    capacities (Eqs. 9–10) and the per-(rule, path) sampling bound
    (Eq. 11).  Components with non-positive weight are fixed to zero —
    they can only consume capacity.
    """
    lp = LinearProgram("nips-online")
    d_vars: Dict[DKey, Variable] = {}
    mem_terms: Dict[str, List] = {n: [] for n in problem.topology.node_names}
    cpu_terms: Dict[str, List] = {n: [] for n in problem.topology.node_names}
    path_terms: Dict[Tuple[int, Tuple[str, str]], List[Variable]] = {}
    objective_terms = []

    for key, weight in weights.items():
        if weight <= 0.0:
            continue
        i, pair, node = key
        var = lp.add_variable(f"d[{i}|{pair[0]}-{pair[1]}|{node}]", lb=0.0, ub=1.0)
        d_vars[key] = var
        rule = problem.rules[i]
        objective_terms.append(var * weight)
        mem_terms[node].append(var * (problem.items[pair] * rule.mem_req))
        cpu_terms[node].append(var * (problem.pkts[pair] * rule.cpu_req))
        path_terms.setdefault((i, pair), []).append(var)

    if not d_vars:
        # Nothing is worth filtering (all weights non-positive).
        return {}

    for node_name in problem.topology.node_names:
        node = problem.topology.node(node_name)
        if mem_terms[node_name]:
            lp.add_constraint(linear_sum(mem_terms[node_name]) <= node.mem_capacity)
        if cpu_terms[node_name]:
            lp.add_constraint(linear_sum(cpu_terms[node_name]) <= node.cpu_capacity)
    for variables in path_terms.values():
        lp.add_constraint(linear_sum(variables) <= 1.0)

    lp.set_objective(linear_sum(objective_terms), Sense.MAXIMIZE)
    solution = solve_or_raise(lp)
    return {key: solution.value(var) for key, var in d_vars.items()}


@dataclass
class FPLConfig:
    """Follow-the-perturbed-leader parameters.

    ``epsilon=None`` applies the theorem's setting
    ``epsilon = sqrt(D / (R A γ))`` with the paper's constants
    ``D = M N L`` and ``R = A = sum_ik T^items × maxdrop``.  That
    theoretical epsilon is extremely conservative (the perturbation
    dominates the signal for small γ); the evaluation driver uses
    ``perturbation_scale`` to shrink it, as recorded in EXPERIMENTS.md.
    """

    epochs: int = 1000
    epsilon: Optional[float] = None
    maxdrop: float = 0.5
    perturbation_scale: float = 1.0
    seed: int = 0


def theoretical_epsilon(problem: NIPSProblem, config: FPLConfig) -> float:
    """``sqrt(D / (R A γ))`` with the paper's constant choices."""
    num_pairs = len(problem.pairs)
    dimension = num_pairs * problem.num_nodes * problem.num_rules
    total_items = sum(problem.items.values()) * problem.num_rules
    bound = total_items * config.maxdrop
    return math.sqrt(dimension / max(1e-12, bound * bound * config.epochs))


class FPLAdapter:
    """The online decision procedure.

    Each epoch: perturb the historical average of observed match rates
    (the paper's ``M_ik = avg(M_obs) + p_t / (t · T^items_ik)``
    estimate), call ``Λ`` on the resulting weights, and deploy.  The
    true rates are revealed afterwards via :meth:`observe`.
    """

    def __init__(self, problem: NIPSProblem, config: FPLConfig):
        self.problem = problem
        self.config = config
        # Larger perturbation_scale => larger epsilon => *smaller*
        # perturbation amplitude 1/epsilon.
        self.epsilon = (
            config.epsilon
            if config.epsilon is not None
            else theoretical_epsilon(problem, config) * config.perturbation_scale
        )
        self._rng = random.Random(config.seed)
        self._observed_sum: MatchRates = {}
        self.t = 0

    def decide(self) -> Decision:
        """Choose this epoch's deployment (Kalai–Vempala step 2)."""
        self.t += 1
        weights: Dict[DKey, float] = {}
        amplitude = 1.0 / self.epsilon
        for pair in self.problem.pairs:
            items = self.problem.items[pair]
            for rule in self.problem.rules:
                mean_rate = (
                    self._observed_sum.get((rule.index, pair), 0.0) / (self.t - 1)
                    if self.t > 1
                    else 0.0
                )
                for node in self.problem.paths[pair].nodes:
                    perturbation = self._rng.random() * amplitude
                    rate_estimate = mean_rate + perturbation / (self.t * items)
                    weights[(rule.index, pair, node)] = (
                        items * rate_estimate * self.problem.dist[pair][node]
                    )
        return solve_best_response(self.problem, weights)

    def observe(self, rates: Mapping) -> None:
        """Reveal the epoch's true match rates (end of epoch t)."""
        for key, rate in rates.items():
            self._observed_sum[key] = self._observed_sum.get(key, 0.0) + rate


@dataclass
class RegretPoint:
    """Cumulative performance up to epoch ``t``."""

    epoch: int
    fpl_total: float
    static_total: float

    @property
    def normalized_regret(self) -> float:
        """``(static - fpl) / static`` — the Fig. 11 y-axis."""
        if self.static_total <= 0:
            return 0.0
        return (self.static_total - self.fpl_total) / self.static_total


@dataclass
class OnlineRunResult:
    """Full trajectory of one online-adaptation run."""

    points: List[RegretPoint]
    final_regret: float


def run_online_adaptation(
    problem: NIPSProblem,
    rate_process: Callable[[int, Optional[Decision]], MatchRates],
    config: FPLConfig,
    report_every: int = 25,
) -> OnlineRunResult:
    """Run FPL against *rate_process* for ``config.epochs`` epochs.

    *rate_process(t, last_decision)* returns epoch ``t``'s true match
    rates; passing the previous decision lets adaptive adversaries
    react.  At each reporting epoch the best *static* solution in
    hindsight is recomputed (one LP on the summed states) and the
    normalized cumulative regret recorded.
    """
    adapter = FPLAdapter(problem, config)
    fpl_total = 0.0
    state_sum: Dict[DKey, float] = {}
    points: List[RegretPoint] = []
    last_decision: Optional[Decision] = None

    for epoch in range(1, config.epochs + 1):
        decision = adapter.decide()
        rates = rate_process(epoch, last_decision)
        state = state_vector(problem, rates)
        fpl_total += decision_value(state, decision)
        for key, value in state.items():
            state_sum[key] = state_sum.get(key, 0.0) + value
        adapter.observe(rates)
        last_decision = decision

        if epoch % report_every == 0 or epoch == config.epochs:
            static = solve_best_response(problem, state_sum)
            static_total = decision_value(state_sum, static)
            points.append(
                RegretPoint(
                    epoch=epoch, fpl_total=fpl_total, static_total=static_total
                )
            )

    return OnlineRunResult(
        points=points,
        final_regret=points[-1].normalized_regret if points else 0.0,
    )
