"""The NIPS deployment MILP (paper Section 3.2, Eqs. 7–14).

Decision variables: binary ``e_ij`` (rule ``C_i`` enabled on node
``R_j``) and fractional ``d_ikj`` (fraction of path ``P_ik``'s traffic
node ``R_j`` filters with rule ``C_i``).  The objective maximizes the
network-footprint reduction of dropped unwanted traffic:

    max  sum_ikj  T_ik^items * M_ik * Dist_ikj * d_ikj          (Eq. 7)
    s.t. sum_i CamReq_i * e_ij            <= CamCap_j           (Eq. 8)
         sum_ik T_ik^items * MemReq_i * d_ikj <= MemCap_j       (Eq. 9)
         sum_ik T_ik^pkts  * CpuReq_i * d_ikj <= CpuCap_j       (Eq. 10)
         sum_j d_ikj <= 1                                       (Eq. 11)
         d_ikj <= e_ij                                          (Eq. 12)
         d >= 0, e binary                                       (Eq. 13-14)

The discrete ``e`` variables make the problem NP-hard (reduction from
MAX-CUT in the paper's technical report); this module provides the
exact formulation, its LP relaxation (``OptLP``, the upper bound used
throughout the Fig. 10 evaluation), restricted LPs with ``e`` fixed
(used by the improved rounding variants), and an exact branch-and-bound
solve for small instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..lp.milp import MILPSolution, solve_milp
from ..lp.model import LinearProgram, LinExpr, Sense, Variable, linear_sum
from ..lp.solver import LPSolution, solve_or_raise
from ..nips.rules import MatchRateMatrix, NIPSRule
from ..topology.graph import Topology
from ..topology.routing import DistanceMetric, Path, PathSet

Pair = Tuple[str, str]
EKey = Tuple[int, str]  # (rule index, node)
DKey = Tuple[int, Pair, str]  # (rule index, path pair, node)

#: Paper Section 3.4 baseline volumes for Internet2 (per 5-minute
#: interval), scaled linearly with network size for other topologies.
INTERNET2_BASE_FLOWS = 8_000_000.0
INTERNET2_BASE_PACKETS = 40_000_000.0
INTERNET2_SIZE = 11

#: Paper Section 3.4 per-node capacities (per 5-minute interval).
DEFAULT_MEM_CAP_FLOWS = 400_000.0
DEFAULT_CPU_CAP_PACKETS = 2_000_000.0


@dataclass
class NIPSProblem:
    """A complete NIPS deployment instance."""

    topology: Topology
    paths: Dict[Pair, Path]
    pkts: Dict[Pair, float]
    items: Dict[Pair, float]
    dist: Dict[Pair, Dict[str, float]]
    rules: List[NIPSRule]
    match: MatchRateMatrix

    @property
    def pairs(self) -> List[Pair]:
        """All ordered (ingress, egress) pairs with paths."""
        return list(self.paths)

    @property
    def num_rules(self) -> int:
        """Number of NIPS rules in the instance."""
        return len(self.rules)

    @property
    def num_nodes(self) -> int:
        """Number of candidate NIPS nodes."""
        return len(self.topology)

    def log_n(self) -> float:
        """``log N`` with ``N = max(#nodes, #rules)`` (rounding analysis)."""
        import math

        return math.log(max(self.num_nodes, self.num_rules, 2))

    # -- solution evaluation ---------------------------------------------------
    def objective(self, d: Mapping[DKey, float]) -> float:
        """Eq. 7 evaluated at a fractional filtering assignment."""
        total = 0.0
        for (i, pair, node), fraction in d.items():
            if fraction <= 0.0:
                continue
            total += (
                self.items[pair]
                * self.match.rate(i, pair)
                * self.dist[pair][node]
                * fraction
            )
        return total

    def check_feasible(
        self,
        e: Mapping[EKey, float],
        d: Mapping[DKey, float],
        tol: float = 1e-6,
    ) -> List[str]:
        """All constraint violations of (e, d), empty when feasible."""
        violations: List[str] = []
        cam_used: Dict[str, float] = {}
        mem_used: Dict[str, float] = {}
        cpu_used: Dict[str, float] = {}
        path_sum: Dict[Tuple[int, Pair], float] = {}
        for (i, node), enabled in e.items():
            if enabled > tol:
                cam_used[node] = cam_used.get(node, 0.0) + self.rules[i].cam_req * enabled
        for (i, pair, node), fraction in d.items():
            if fraction < -tol:
                violations.append(f"d[{i},{pair},{node}] negative")
            if fraction > e.get((i, node), 0.0) + tol:
                violations.append(f"d[{i},{pair},{node}] exceeds e[{i},{node}]")
            mem_used[node] = mem_used.get(node, 0.0) + (
                self.items[pair] * self.rules[i].mem_req * fraction
            )
            cpu_used[node] = cpu_used.get(node, 0.0) + (
                self.pkts[pair] * self.rules[i].cpu_req * fraction
            )
            path_sum[(i, pair)] = path_sum.get((i, pair), 0.0) + fraction
        for node_name in self.topology.node_names:
            node = self.topology.node(node_name)
            if cam_used.get(node_name, 0.0) > node.cam_capacity + tol:
                violations.append(f"TCAM capacity exceeded at {node_name}")
            if mem_used.get(node_name, 0.0) > node.mem_capacity * (1 + tol) + tol:
                violations.append(f"memory capacity exceeded at {node_name}")
            if cpu_used.get(node_name, 0.0) > node.cpu_capacity * (1 + tol) + tol:
                violations.append(f"CPU capacity exceeded at {node_name}")
        for key, total in path_sum.items():
            if total > 1.0 + tol:
                violations.append(f"sampling fractions for {key} sum to {total:.4f} > 1")
        return violations


def build_nips_problem(
    topology: Topology,
    rules: Sequence[NIPSRule],
    match: MatchRateMatrix,
    path_set: Optional[PathSet] = None,
    metric: DistanceMetric = DistanceMetric.HOPS,
    total_flows: Optional[float] = None,
    total_packets: Optional[float] = None,
) -> NIPSProblem:
    """Assemble a :class:`NIPSProblem` with the paper's volume model.

    Volumes default to the Internet2 baseline (8M flows / 40M packets
    per 5-minute interval) scaled linearly with network size, split
    across ordered node pairs by the gravity model.
    """
    from ..topology.gravity import gravity_fractions

    size_factor = len(topology) / INTERNET2_SIZE
    if total_flows is None:
        total_flows = INTERNET2_BASE_FLOWS * size_factor
    if total_packets is None:
        total_packets = INTERNET2_BASE_PACKETS * size_factor

    path_set = path_set or PathSet(topology)
    fractions = gravity_fractions(topology.populations)
    paths: Dict[Pair, Path] = {}
    pkts: Dict[Pair, float] = {}
    items: Dict[Pair, float] = {}
    dist: Dict[Pair, Dict[str, float]] = {}
    for pair, fraction in fractions.items():
        path = path_set.path(*pair)
        paths[pair] = path
        pkts[pair] = fraction * total_packets
        items[pair] = fraction * total_flows
        dist[pair] = {
            node: path_set.downstream_distance(path, node, metric)
            for node in path.nodes
        }
    return NIPSProblem(
        topology=topology,
        paths=paths,
        pkts=pkts,
        items=items,
        dist=dist,
        rules=list(rules),
        match=match,
    )


@dataclass
class BuiltNIPSLP:
    """Constructed program plus variable maps."""

    program: LinearProgram
    e_vars: Dict[EKey, Variable]
    d_vars: Dict[DKey, Variable]


@dataclass
class NIPSSolution:
    """A (possibly fractional) NIPS deployment."""

    e: Dict[EKey, float]
    d: Dict[DKey, float]
    objective: float
    solve_seconds: float

    def enabled_rules(self, node: str, threshold: float = 0.5) -> List[int]:
        """Rule indices enabled on *node* (binary solutions only)."""
        return sorted(
            i for (i, n), value in self.e.items() if n == node and value >= threshold
        )


def build_nips_lp(
    problem: NIPSProblem,
    integral: bool = False,
    fixed_e: Optional[Mapping[EKey, int]] = None,
) -> BuiltNIPSLP:
    """Construct Eqs. 7–14.

    ``integral=False`` builds the LP relaxation (``0 <= e <= 1``).
    ``fixed_e`` pins the enablement variables to given binary values,
    yielding the restricted d-only LP used after rounding; disabled
    (rule, node) combinations are omitted entirely, which keeps the
    restricted program small.
    """
    lp = LinearProgram("nips-deployment")
    e_vars: Dict[EKey, Variable] = {}
    d_vars: Dict[DKey, Variable] = {}

    def enabled_value(i: int, node: str) -> Optional[float]:
        if fixed_e is None:
            return None
        return float(fixed_e.get((i, node), 0))

    for rule in problem.rules:
        for node in problem.topology.node_names:
            fixed = enabled_value(rule.index, node)
            if fixed is None:
                e_vars[(rule.index, node)] = lp.add_variable(
                    f"e[{rule.index}|{node}]", binary=integral, lb=0.0, ub=1.0
                )
            # fixed e needs no variable; Eq. 12 becomes a bound on d.

    objective_terms: List[LinExpr] = []
    path_terms: Dict[Tuple[int, Pair], List[Variable]] = {}
    mem_terms: Dict[str, List[LinExpr]] = {n: [] for n in problem.topology.node_names}
    cpu_terms: Dict[str, List[LinExpr]] = {n: [] for n in problem.topology.node_names}

    for rule in problem.rules:
        i = rule.index
        for pair in problem.pairs:
            rate = problem.match.rate(i, pair)
            for node in problem.paths[pair].nodes:
                fixed = enabled_value(i, node)
                if fixed is not None and fixed <= 0.0:
                    continue  # rule disabled here: d forced to 0, omit
                var = lp.add_variable(f"d[{i}|{pair[0]}-{pair[1]}|{node}]", lb=0.0, ub=1.0)
                d_vars[(i, pair, node)] = var
                weight = problem.items[pair] * rate * problem.dist[pair][node]
                if weight > 0.0:
                    objective_terms.append(var * weight)
                path_terms.setdefault((i, pair), []).append(var)
                mem_terms[node].append(var * (problem.items[pair] * rule.mem_req))
                cpu_terms[node].append(var * (problem.pkts[pair] * rule.cpu_req))
                if fixed is None:
                    lp.add_constraint(
                        var <= e_vars[(i, node)], name=f"link[{i}|{pair}|{node}]"
                    )

    # Eq. 8: TCAM capacity (only over free e variables; fixed assignments
    # are validated by the caller via check_feasible).
    if fixed_e is None:
        for node_name in problem.topology.node_names:
            node = problem.topology.node(node_name)
            terms = [
                e_vars[(rule.index, node_name)] * rule.cam_req
                for rule in problem.rules
            ]
            lp.add_constraint(
                linear_sum(terms) <= node.cam_capacity, name=f"cam[{node_name}]"
            )

    # Eqs. 9-10: node memory and CPU capacity.
    for node_name in problem.topology.node_names:
        node = problem.topology.node(node_name)
        if mem_terms[node_name]:
            lp.add_constraint(
                linear_sum(mem_terms[node_name]) <= node.mem_capacity,
                name=f"mem[{node_name}]",
            )
        if cpu_terms[node_name]:
            lp.add_constraint(
                linear_sum(cpu_terms[node_name]) <= node.cpu_capacity,
                name=f"cpu[{node_name}]",
            )

    # Eq. 11: at most the whole path's traffic is sampled.
    for (i, pair), variables in path_terms.items():
        lp.add_constraint(
            linear_sum(variables) <= 1.0, name=f"sample[{i}|{pair[0]}-{pair[1]}]"
        )

    lp.set_objective(linear_sum(objective_terms), Sense.MAXIMIZE)
    return BuiltNIPSLP(program=lp, e_vars=e_vars, d_vars=d_vars)


def solve_relaxation(problem: NIPSProblem) -> NIPSSolution:
    """Solve the LP relaxation; its objective is ``OptLP >= OptNIPS``."""
    started = time.perf_counter()
    built = build_nips_lp(problem, integral=False)
    solution = solve_or_raise(built.program)
    elapsed = time.perf_counter() - started
    return NIPSSolution(
        e={key: solution.value(var) for key, var in built.e_vars.items()},
        d={key: solution.value(var) for key, var in built.d_vars.items()},
        objective=solution.objective,
        solve_seconds=elapsed,
    )


def solve_with_fixed_rules(
    problem: NIPSProblem, fixed_e: Mapping[EKey, int]
) -> NIPSSolution:
    """Solve the d-only LP given a binary rule placement (the
    "solve a second LP" improvement of Section 3.3).

    A placement that enables nothing (possible when the TCAM budget is
    below one rule slot) filters nothing: the restricted program is
    empty and the zero deployment is returned directly.
    """
    started = time.perf_counter()
    built = build_nips_lp(problem, fixed_e=fixed_e)
    if built.program.num_variables == 0:
        return NIPSSolution(
            e={key: float(value) for key, value in fixed_e.items()},
            d={},
            objective=0.0,
            solve_seconds=time.perf_counter() - started,
        )
    solution = solve_or_raise(built.program)
    elapsed = time.perf_counter() - started
    return NIPSSolution(
        e={key: float(value) for key, value in fixed_e.items()},
        d={key: solution.value(var) for key, var in built.d_vars.items()},
        objective=solution.objective,
        solve_seconds=elapsed,
    )


def solve_exact(problem: NIPSProblem, max_nodes: int = 2000) -> MILPSolution:
    """Exact branch-and-bound solve (small instances / test baselines)."""
    built = build_nips_lp(problem, integral=True)
    return solve_milp(built.program, max_nodes=max_nodes)
