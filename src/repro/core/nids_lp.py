"""The NIDS assignment LP (paper Section 2.2).

Decision variables ``d_ikj`` give the fraction of coordination unit
``P_ik``'s traffic that node ``R_j`` analyzes for class ``C_i``.  The
program minimizes the maximum per-node CPU/memory load while covering
every unit:

    min  max{CpuLoad, MemLoad}
    s.t. sum_j d_ikj = coverage           for all i, k        (Eq. 1)
         MemLoad_j = sum_ik mem_ik d_ikj / MemCap_j           (Eq. 2)
         CpuLoad_j = sum_ik cpu_ik d_ikj / CpuCap_j           (Eq. 3)
         CpuLoad >= CpuLoad_j, MemLoad >= MemLoad_j           (Eq. 4-5)
         0 <= d_ikj <= 1                                      (Eq. 6)

``coverage`` is 1 in the base formulation; the Section 2.5 redundancy
extension sets it to ``r`` so the hash space ``[0, r]`` is covered and
each point is analyzed by ``r`` distinct nodes (``d_ikj <= 1`` keeps a
node from covering the same point twice).  Units whose eligible set is
smaller than ``r`` are capped at their set size, which preserves
feasibility (a singleton unit simply cannot be replicated).

The per-unit coefficients ``cpu_ik`` / ``mem_ik`` are the measured
``CpuReq_i * T_ik^pkts`` and ``MemReq_i * T_ik^items`` products,
precomputed by :mod:`repro.core.units` from the trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..lp.model import LinearProgram, Sense, Variable, linear_sum
from ..lp.solver import LPSolution, solve_or_raise
from ..topology.graph import Topology
from .units import CoordinationUnit, UnitKey

FractionKey = Tuple[str, UnitKey, str]  # (class, unit key, node)


@dataclass
class NIDSAssignment:
    """Optimal ``d*`` fractions plus the per-node load profile."""

    fractions: Dict[FractionKey, float]
    cpu_load: Dict[str, float]
    mem_load: Dict[str, float]
    objective: float
    coverage: Dict[Tuple[str, UnitKey], float]
    solve_seconds: float

    def fraction(self, class_name: str, key: UnitKey, node: str) -> float:
        """``d*`` for (class, unit, node); 0 when absent."""
        return self.fractions.get((class_name, key, node), 0.0)

    @property
    def max_cpu_load(self) -> float:
        """Largest per-node CPU load."""
        return max(self.cpu_load.values()) if self.cpu_load else 0.0

    @property
    def max_mem_load(self) -> float:
        """Largest per-node memory load."""
        return max(self.mem_load.values()) if self.mem_load else 0.0

    def responsible_nodes(self, class_name: str, key: UnitKey) -> List[Tuple[str, float]]:
        """Nodes with positive responsibility for a unit, with fractions."""
        return [
            (node, value)
            for (c, k, node), value in self.fractions.items()
            if c == class_name and k == key and value > 1e-9
        ]


@dataclass
class BuiltNIDSLP:
    """The constructed LP plus the variable maps needed to read it back."""

    program: LinearProgram
    d_vars: Dict[FractionKey, Variable]
    cpu_load_vars: Dict[str, Variable]
    mem_load_vars: Dict[str, Variable]
    coverage: Dict[Tuple[str, UnitKey], float]


def build_nids_lp(
    units: Sequence[CoordinationUnit],
    topology: Topology,
    coverage: float = 1.0,
    objective: str = "max",
    cpu_weight: float = 1.0,
    mem_weight: float = 1.0,
) -> BuiltNIDSLP:
    """Construct the Section 2.2 LP for *units* on *topology*.

    *coverage* > 1 activates the redundancy extension; each unit's
    effective coverage is ``min(coverage, |P_ik|)``.

    The paper notes the load should be balanced "for a suitable
    balancing function" and adopts min-max for concreteness.
    ``objective`` selects the balancing function:

    * ``"max"`` — the paper's ``min max{CpuLoad, MemLoad}``;
    * ``"sum"`` — ``min cpu_weight*CpuLoad + mem_weight*MemLoad``
      (both dimensions always exert pressure, not only the binding
      one; weights express the relative cost of CPU vs. memory
      headroom).
    """
    if objective not in ("max", "sum"):
        raise ValueError(f"unknown objective {objective!r}")
    if coverage < 1.0:
        raise ValueError("coverage must be >= 1")
    lp = LinearProgram("nids-assignment")

    d_vars: Dict[FractionKey, Variable] = {}
    per_unit_coverage: Dict[Tuple[str, UnitKey], float] = {}
    for unit in units:
        unit_coverage = min(coverage, float(len(unit.eligible)))
        per_unit_coverage[unit.ident] = unit_coverage
        unit_vars = []
        for node in unit.eligible:
            var = lp.add_variable(
                f"d[{unit.class_name}|{'/'.join(unit.key)}|{node}]", lb=0.0, ub=1.0
            )
            d_vars[(unit.class_name, unit.key, node)] = var
            unit_vars.append(var)
        lp.add_constraint(
            linear_sum(unit_vars).equals(unit_coverage),
            name=f"cover[{unit.class_name}|{'/'.join(unit.key)}]",
        )

    # Group load terms per node.
    cpu_terms: Dict[str, List] = {name: [] for name in topology.node_names}
    mem_terms: Dict[str, List] = {name: [] for name in topology.node_names}
    for unit in units:
        for node in unit.eligible:
            var = d_vars[(unit.class_name, unit.key, node)]
            cpu_terms[node].append(var * unit.cpu_work)
            mem_terms[node].append(var * unit.mem_bytes)

    cpu_load_vars: Dict[str, Variable] = {}
    mem_load_vars: Dict[str, Variable] = {}
    cpu_max = lp.add_variable("CpuLoad")
    mem_max = lp.add_variable("MemLoad")
    for name in topology.node_names:
        node = topology.node(name)
        cpu_j = lp.add_variable(f"CpuLoad[{name}]")
        mem_j = lp.add_variable(f"MemLoad[{name}]")
        cpu_load_vars[name] = cpu_j
        mem_load_vars[name] = mem_j
        lp.add_constraint(
            cpu_j.equals(linear_sum(cpu_terms[name]) / node.cpu_capacity),
            name=f"cpu-def[{name}]",
        )
        lp.add_constraint(
            mem_j.equals(linear_sum(mem_terms[name]) / node.mem_capacity),
            name=f"mem-def[{name}]",
        )
        lp.add_constraint(cpu_max >= cpu_j, name=f"cpu-max[{name}]")
        lp.add_constraint(mem_max >= mem_j, name=f"mem-max[{name}]")

    if objective == "max":
        target = lp.add_variable("MaxLoad")
        lp.add_constraint(target >= cpu_max, name="obj-cpu")
        lp.add_constraint(target >= mem_max, name="obj-mem")
        lp.set_objective(target, Sense.MINIMIZE)
    else:
        lp.set_objective(
            cpu_weight * cpu_max + mem_weight * mem_max, Sense.MINIMIZE
        )

    return BuiltNIDSLP(
        program=lp,
        d_vars=d_vars,
        cpu_load_vars=cpu_load_vars,
        mem_load_vars=mem_load_vars,
        coverage=per_unit_coverage,
    )


def solve_nids_lp(
    units: Sequence[CoordinationUnit],
    topology: Topology,
    coverage: float = 1.0,
    objective: str = "max",
    cpu_weight: float = 1.0,
    mem_weight: float = 1.0,
) -> NIDSAssignment:
    """Build and solve the assignment LP, returning the ``d*`` profile.

    The LP is always feasible: ``d_ikj = coverage / |P_ik|`` satisfies
    every constraint, so a solver failure indicates a bug and raises.
    """
    started = time.perf_counter()
    built = build_nids_lp(
        units,
        topology,
        coverage,
        objective=objective,
        cpu_weight=cpu_weight,
        mem_weight=mem_weight,
    )
    solution = solve_or_raise(built.program)
    elapsed = time.perf_counter() - started

    fractions = {
        key: max(0.0, min(1.0, solution.value(var)))
        for key, var in built.d_vars.items()
    }
    cpu_load = {
        name: solution.value(var) for name, var in built.cpu_load_vars.items()
    }
    mem_load = {
        name: solution.value(var) for name, var in built.mem_load_vars.items()
    }
    return NIDSAssignment(
        fractions=fractions,
        cpu_load=cpu_load,
        mem_load=mem_load,
        objective=solution.objective,
        coverage=built.coverage,
        solve_seconds=elapsed,
    )


def integral_assignment(
    units: Sequence[CoordinationUnit],
    topology: Topology,
) -> NIDSAssignment:
    """Whole-unit assignment (ablation for the fractional split).

    Assigns each coordination unit entirely to one eligible node —
    the least-loaded-first heuristic an operator without fractional
    hash-range splitting would use.  Quantifies what Eq. 6's
    "fractional split to provide more fine-grained opportunities for
    distributing the load" buys: with coarse units (one hot path can
    exceed a node's fair share) the integral max load is strictly
    worse than the LP optimum.
    """
    ordered = sorted(units, key=lambda u: -(u.cpu_work + u.mem_bytes))
    fractions: Dict[FractionKey, float] = {}
    per_unit_coverage: Dict[Tuple[str, UnitKey], float] = {}
    cpu_load = {name: 0.0 for name in topology.node_names}
    mem_load = {name: 0.0 for name in topology.node_names}
    for unit in ordered:
        per_unit_coverage[unit.ident] = 1.0
        best = min(
            unit.eligible,
            key=lambda node: max(
                cpu_load[node]
                + unit.cpu_work / topology.node(node).cpu_capacity,
                mem_load[node]
                + unit.mem_bytes / topology.node(node).mem_capacity,
            ),
        )
        fractions[(unit.class_name, unit.key, best)] = 1.0
        cpu_load[best] += unit.cpu_work / topology.node(best).cpu_capacity
        mem_load[best] += unit.mem_bytes / topology.node(best).mem_capacity
    objective = max(
        max(cpu_load.values(), default=0.0), max(mem_load.values(), default=0.0)
    )
    return NIDSAssignment(
        fractions=fractions,
        cpu_load=cpu_load,
        mem_load=mem_load,
        objective=objective,
        coverage=per_unit_coverage,
        solve_seconds=0.0,
    )


def uniform_assignment(
    units: Sequence[CoordinationUnit],
    topology: Topology,
    coverage: float = 1.0,
) -> NIDSAssignment:
    """The naive even split ``d_ikj = coverage/|P_ik|`` (ablation baseline).

    Ignores load: every eligible node takes an equal share.  Useful for
    quantifying what the LP's load-awareness buys.
    """
    fractions: Dict[FractionKey, float] = {}
    per_unit_coverage: Dict[Tuple[str, UnitKey], float] = {}
    cpu_load = {name: 0.0 for name in topology.node_names}
    mem_load = {name: 0.0 for name in topology.node_names}
    for unit in units:
        unit_coverage = min(coverage, float(len(unit.eligible)))
        per_unit_coverage[unit.ident] = unit_coverage
        share = unit_coverage / len(unit.eligible)
        for node in unit.eligible:
            fractions[(unit.class_name, unit.key, node)] = share
            spec = topology.node(node)
            cpu_load[node] += unit.cpu_work * share / spec.cpu_capacity
            mem_load[node] += unit.mem_bytes * share / spec.mem_capacity
    objective = max(
        max(cpu_load.values(), default=0.0), max(mem_load.values(), default=0.0)
    )
    return NIDSAssignment(
        fractions=fractions,
        cpu_load=cpu_load,
        mem_load=mem_load,
        objective=objective,
        coverage=per_unit_coverage,
        solve_seconds=0.0,
    )
