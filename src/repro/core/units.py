"""Coordination units (paper Section 2.1).

For each analysis class ``C_i``, the traffic ``T_i`` is partitioned into
components ``T_ik`` such that every packet matching ``T_ik`` can be
observed by each member of a node set ``P_ik`` — the *coordination
unit*.  The partition depends on the class's placement scope:

* ``PATH`` classes partition traffic by end-to-end route; the eligible
  set is every node on that route (the paper's Signature example).
* ``INGRESS`` classes partition by traffic source; only the source's
  ingress observes everything (the Scan example).
* ``EGRESS`` classes partition by destination; only the egress does.

Path-scoped units are keyed by the *unordered* location pair so both
directions of a session land in the same unit — required because
session-oriented analysis must see both directions at one node.  The
eligible set is the intersection of the two directed routes (identical
under symmetric shortest-path routing).

:func:`build_units` derives the units and their measured volumes —
``T_ik^pkts``, ``T_ik^items``, and the calibrated CPU/memory work the
LP balances — from a generated session trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..hashing.keys import Aggregation
from ..nids.modules.base import ModuleSpec, Scope
from ..topology.routing import PathSet
from ..traffic.session import Session

UnitKey = Tuple[str, ...]


@dataclass(frozen=True)
class CoordinationUnit:
    """One ``(C_i, T_ik, P_ik)`` triple with its measured volumes."""

    class_name: str
    key: UnitKey
    eligible: Tuple[str, ...]
    pkts: float
    items: float
    cpu_work: float
    mem_bytes: float

    @property
    def ident(self) -> Tuple[str, UnitKey]:
        """Dictionary identity: (class name, unit key)."""
        return (self.class_name, self.key)

    @property
    def singleton(self) -> bool:
        """Whether only one node can perform this analysis."""
        return len(self.eligible) == 1


def unit_key_for_session(spec: ModuleSpec, session: Session) -> UnitKey:
    """The coordination-unit key *session* belongs to under *spec*."""
    if spec.scope is Scope.PATH:
        return tuple(sorted((session.ingress, session.egress)))
    if spec.scope is Scope.INGRESS:
        return (session.ingress,)
    return (session.egress,)


def eligible_nodes(spec: ModuleSpec, key: UnitKey, paths: PathSet) -> Tuple[str, ...]:
    """``P_ik``: the nodes able to observe all of the unit's traffic."""
    if spec.scope is not Scope.PATH:
        return key
    a, b = key
    forward = paths.path(a, b)
    backward = set(paths.path(b, a).nodes)
    observers = tuple(node for node in forward.nodes if node in backward)
    # Symmetric shortest paths make this the full path; degenerate
    # asymmetric ties still leave the endpoints, which always qualify.
    return observers if observers else (a, b)


@dataclass
class _UnitAccumulator:
    pkts: float = 0.0
    cpu_work: float = 0.0
    sessions: int = 0
    distinct: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.distinct is None:
            self.distinct = set()


def build_units(
    modules: Sequence[ModuleSpec],
    sessions: Sequence[Session],
    paths: PathSet,
) -> List[CoordinationUnit]:
    """Derive coordination units and volumes from a session trace.

    Only units with traffic are emitted (a unit with no matching
    traffic imposes no load and needs no assignment).  ``items`` counts
    follow each class's aggregation: sessions for flow/session-level
    analyses, distinct hosts for per-source/per-destination analyses.
    """
    accumulators: Dict[Tuple[str, UnitKey], _UnitAccumulator] = {}
    for spec in modules:
        for session in sessions:
            if not spec.traffic_filter.matches_session(session):
                continue
            key = unit_key_for_session(spec, session)
            acc = accumulators.setdefault((spec.name, key), _UnitAccumulator())
            acc.pkts += session.num_packets
            acc.cpu_work += spec.session_cpu(session)
            acc.sessions += 1
            if spec.aggregation in (Aggregation.SOURCE, Aggregation.DESTINATION):
                acc.distinct.add(spec.item_key(session))

    by_name = {spec.name: spec for spec in modules}
    units: List[CoordinationUnit] = []
    for (class_name, key), acc in accumulators.items():
        spec = by_name[class_name]
        if spec.aggregation in (Aggregation.SOURCE, Aggregation.DESTINATION):
            items = float(len(acc.distinct))
        else:
            items = float(acc.sessions)
        units.append(
            CoordinationUnit(
                class_name=class_name,
                key=key,
                eligible=eligible_nodes(spec, key, paths),
                pkts=acc.pkts,
                items=items,
                cpu_work=acc.cpu_work,
                mem_bytes=items * spec.mem_req,
            )
        )
    units.sort(key=lambda u: (u.class_name, u.key))
    return units


def units_by_ident(units: Sequence[CoordinationUnit]) -> Dict[Tuple[str, UnitKey], CoordinationUnit]:
    """Index units by their (class, key) identity."""
    return {unit.ident: unit for unit in units}
