"""Wire format for sampling manifests and assignments.

The paper's operations center "periodically configures the NIDS
responsibilities of the different nodes": the artifact it ships to each
node is the sampling manifest.  This module defines a stable JSON
encoding for manifests and assignments so they can be distributed,
versioned, diffed, and reloaded — plus round-trip helpers used by the
CLI and the test suite.

Schema (version 1):

```json
{
  "version": 1,
  "node": "KSCY",
  "entries": [
    {"class": "http", "unit": ["NYCM", "STTL"],
     "ranges": [[0.25, 0.5], [0.75, 0.8]]}
  ]
}
```
"""

from __future__ import annotations

import json
from typing import Dict, Mapping

from ..hashing.ranges import HashRange
from ..obs import COUNT_BUCKETS, get_registry
from .manifest import NodeManifest
from .nids_lp import NIDSAssignment

SCHEMA_VERSION = 1


def manifest_to_dict(manifest: NodeManifest) -> dict:
    """Encode one node's manifest as a JSON-compatible dict."""
    entries = []
    for (class_name, key), ranges in sorted(manifest.entries.items()):
        entries.append(
            {
                "class": class_name,
                "unit": list(key),
                "ranges": [[r.lo, r.hi] for r in ranges],
            }
        )
    return {
        "version": SCHEMA_VERSION,
        "node": manifest.node,
        "full": manifest.full,
        "entries": entries,
    }


def manifest_from_dict(data: Mapping) -> NodeManifest:
    """Decode a manifest dict, validating the schema version."""
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported manifest schema version {version!r}")
    manifest = NodeManifest(node=data["node"], full=bool(data.get("full", False)))
    for entry in data.get("entries", []):
        key = tuple(entry["unit"])
        ranges = tuple(HashRange(lo, hi) for lo, hi in entry["ranges"])
        manifest.entries[(entry["class"], key)] = ranges
    return manifest


def manifest_diff(old: NodeManifest, new: NodeManifest) -> dict:
    """Delta that transforms *old* into *new* (same node).

    The delta is itself a schema-version-1 JSON-compatible dict:

    ```json
    {
      "version": 1,
      "kind": "delta",
      "node": "KSCY",
      "full": false,
      "changed": [{"class": ..., "unit": [...], "ranges": [[lo, hi], ...]}],
      "removed": [{"class": ..., "unit": [...]}]
    }
    ```

    ``changed`` carries every entry that is new or whose ranges differ
    (exact comparison — callers wanting churn suppression should
    stabilize the manifests *before* diffing, so all nodes of a unit
    stay mutually consistent); ``removed`` lists entry keys present in
    *old* but absent from *new*.  The controller pushes these deltas to
    agents on epochs where most of the manifest is unchanged, which is
    strictly cheaper on the wire than re-sending the full manifest.
    """
    if old.node != new.node:
        raise ValueError(
            f"cannot diff manifests of different nodes {old.node!r} vs {new.node!r}"
        )
    changed = []
    for (class_name, key), ranges in sorted(new.entries.items()):
        if old.entries.get((class_name, key)) == ranges:
            continue
        changed.append(
            {
                "class": class_name,
                "unit": list(key),
                "ranges": [[r.lo, r.hi] for r in ranges],
            }
        )
    removed = [
        {"class": class_name, "unit": list(key)}
        for (class_name, key) in sorted(old.entries)
        if (class_name, key) not in new.entries
    ]
    registry = get_registry()
    registry.counter(
        "manifest_deltas_total", "manifest deltas computed",
        labels=("empty",),
    ).inc(empty=str(not changed and not removed).lower())
    registry.histogram(
        "manifest_delta_entries",
        "changed+removed entries per computed delta",
        buckets=COUNT_BUCKETS,
    ).observe(len(changed) + len(removed))
    return {
        "version": SCHEMA_VERSION,
        "kind": "delta",
        "node": new.node,
        "full": new.full,
        "changed": changed,
        "removed": removed,
    }


def delta_is_empty(delta: Mapping) -> bool:
    """Whether a delta produced by :func:`manifest_diff` changes nothing."""
    return not delta.get("changed") and not delta.get("removed")


def apply_manifest_delta(base: NodeManifest, delta: Mapping) -> NodeManifest:
    """Apply a :func:`manifest_diff` delta to *base*, returning the result.

    Validates the schema version, kind, and node; *base* is left
    untouched.  ``apply_manifest_delta(old, manifest_diff(old, new))``
    reproduces *new* exactly.
    """
    if delta.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema version {delta.get('version')!r}"
        )
    if delta.get("kind") != "delta":
        raise ValueError(f"not a manifest delta: kind={delta.get('kind')!r}")
    if delta.get("node") != base.node:
        raise ValueError(
            f"delta for node {delta.get('node')!r} applied to {base.node!r}"
        )
    entries = dict(base.entries)
    for removal in delta.get("removed", []):
        entries.pop((removal["class"], tuple(removal["unit"])), None)
    for entry in delta.get("changed", []):
        entries[(entry["class"], tuple(entry["unit"]))] = tuple(
            HashRange(lo, hi) for lo, hi in entry["ranges"]
        )
    return NodeManifest(
        node=base.node, entries=entries, full=bool(delta.get("full", False))
    )


def dump_manifests(manifests: Mapping[str, NodeManifest]) -> str:
    """Serialize a full set of per-node manifests to JSON text."""
    return json.dumps(
        {
            "version": SCHEMA_VERSION,
            "manifests": [
                manifest_to_dict(manifests[node]) for node in sorted(manifests)
            ],
        },
        indent=2,
        sort_keys=True,
    )


def load_manifests(text: str) -> Dict[str, NodeManifest]:
    """Parse JSON text produced by :func:`dump_manifests`."""
    data = json.loads(text)
    if data.get("version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {data.get('version')!r}")
    manifests = {}
    for entry in data["manifests"]:
        manifest = manifest_from_dict(entry)
        manifests[manifest.node] = manifest
    return manifests


def assignment_to_dict(assignment: NIDSAssignment) -> dict:
    """Encode an LP assignment (the ``d*`` profile) as a dict."""
    fractions = [
        {
            "class": class_name,
            "unit": list(key),
            "node": node,
            "fraction": value,
        }
        for (class_name, key, node), value in sorted(assignment.fractions.items())
        if value > 1e-12
    ]
    return {
        "version": SCHEMA_VERSION,
        "objective": assignment.objective,
        "solve_seconds": assignment.solve_seconds,
        "cpu_load": dict(sorted(assignment.cpu_load.items())),
        "mem_load": dict(sorted(assignment.mem_load.items())),
        "coverage": [
            {"class": class_name, "unit": list(key), "coverage": value}
            for (class_name, key), value in sorted(assignment.coverage.items())
        ],
        "fractions": fractions,
    }


def assignment_from_dict(data: Mapping) -> NIDSAssignment:
    """Decode an assignment dict back into :class:`NIDSAssignment`."""
    if data.get("version") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {data.get('version')!r}")
    fractions = {
        (entry["class"], tuple(entry["unit"]), entry["node"]): entry["fraction"]
        for entry in data["fractions"]
    }
    coverage = {
        (entry["class"], tuple(entry["unit"])): entry["coverage"]
        for entry in data["coverage"]
    }
    return NIDSAssignment(
        fractions=fractions,
        cpu_load=dict(data["cpu_load"]),
        mem_load=dict(data["mem_load"]),
        objective=float(data["objective"]),
        coverage=coverage,
        solve_seconds=float(data.get("solve_seconds", 0.0)),
    )


def dump_assignment(assignment: NIDSAssignment) -> str:
    """Serialize an assignment to JSON text."""
    return json.dumps(assignment_to_dict(assignment), indent=2, sort_keys=True)


def load_assignment(text: str) -> NIDSAssignment:
    """Parse JSON text produced by :func:`dump_assignment`."""
    return assignment_from_dict(json.loads(text))
