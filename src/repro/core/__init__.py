"""The paper's primary contribution: network-wide NIDS/NIPS deployment.

* NIDS: coordination units, the max-load-minimizing assignment LP,
  hash-range sampling manifests, and the per-packet dispatch procedure.
* NIPS: the TCAM-constrained MILP, its LP relaxation, and the
  randomized-rounding approximation algorithms.
* Online adaptation via follow-the-perturbed-leader.
* What-if provisioning analyses.
"""

from .dispatch import (
    CoordinatedDispatcher,
    DispatchDecision,
    ModuleBatchDecision,
    UnitResolver,
)
from .exactsum import ExactSum, exact_total
from .manifest_index import ManifestIndex, compile_ranges, index_manifests
from .manifest import (
    NodeManifest,
    full_manifest,
    generate_manifests,
    sampled_node,
    verify_manifests,
)
from .manifest_io import (
    apply_manifest_delta,
    delta_is_empty,
    dump_assignment,
    dump_manifests,
    load_assignment,
    load_manifests,
    manifest_diff,
)
from .nids_deployment import NIDSDeployment, plan_deployment
from .nips_manifest import (
    NIPSDispatcher,
    NIPSNodeManifest,
    generate_nips_manifests,
    verify_nips_manifests,
)
from .online_tcam import (
    TCAMFPLConfig,
    TCAMOnlineAdapter,
    TCAMOnlineResult,
    run_tcam_online,
)
from .reconfigure import TransitionPlan, conservative_units, plan_transition
from .nids_lp import (
    BuiltNIDSLP,
    NIDSAssignment,
    build_nids_lp,
    integral_assignment,
    solve_nids_lp,
    uniform_assignment,
)
from .nips_milp import (
    BuiltNIPSLP,
    NIPSProblem,
    NIPSSolution,
    build_nips_lp,
    build_nips_problem,
    solve_exact,
    solve_relaxation,
    solve_with_fixed_rules,
)
from .online import (
    FPLAdapter,
    FPLConfig,
    OnlineRunResult,
    RegretPoint,
    decision_value,
    run_online_adaptation,
    solve_best_response,
    state_vector,
    theoretical_epsilon,
)
from .provisioning import (
    BottleneckReport,
    TCAMSweepPoint,
    UpgradeOutcome,
    bottleneck_analysis,
    nips_tcam_sweep,
    rank_nids_upgrades,
)
from .rounding import (
    RoundedSolution,
    RoundingVariant,
    best_of_roundings,
    finish_basic,
    greedy_fill,
    round_enablement,
    rounded_deployment,
)
from .units import (
    CoordinationUnit,
    build_units,
    eligible_nodes,
    unit_key_for_session,
    units_by_ident,
)

__all__ = [
    "BottleneckReport",
    "BuiltNIDSLP",
    "BuiltNIPSLP",
    "CoordinatedDispatcher",
    "ManifestIndex",
    "compile_ranges",
    "index_manifests",
    "CoordinationUnit",
    "DispatchDecision",
    "ExactSum",
    "exact_total",
    "ModuleBatchDecision",
    "FPLAdapter",
    "FPLConfig",
    "NIDSAssignment",
    "NIDSDeployment",
    "NIPSDispatcher",
    "NIPSNodeManifest",
    "NIPSProblem",
    "NIPSSolution",
    "NodeManifest",
    "OnlineRunResult",
    "RegretPoint",
    "RoundedSolution",
    "RoundingVariant",
    "TCAMFPLConfig",
    "TCAMOnlineAdapter",
    "TCAMOnlineResult",
    "TCAMSweepPoint",
    "TransitionPlan",
    "UnitResolver",
    "UpgradeOutcome",
    "apply_manifest_delta",
    "best_of_roundings",
    "bottleneck_analysis",
    "build_nids_lp",
    "build_nips_lp",
    "build_nips_problem",
    "build_units",
    "conservative_units",
    "decision_value",
    "delta_is_empty",
    "dump_assignment",
    "dump_manifests",
    "eligible_nodes",
    "finish_basic",
    "full_manifest",
    "generate_manifests",
    "generate_nips_manifests",
    "greedy_fill",
    "integral_assignment",
    "load_assignment",
    "load_manifests",
    "manifest_diff",
    "nips_tcam_sweep",
    "plan_transition",
    "plan_deployment",
    "rank_nids_upgrades",
    "round_enablement",
    "rounded_deployment",
    "run_online_adaptation",
    "run_tcam_online",
    "sampled_node",
    "solve_best_response",
    "solve_exact",
    "solve_nids_lp",
    "solve_relaxation",
    "solve_with_fixed_rules",
    "state_vector",
    "theoretical_epsilon",
    "uniform_assignment",
    "unit_key_for_session",
    "units_by_ident",
    "verify_manifests",
    "verify_nips_manifests",
]
