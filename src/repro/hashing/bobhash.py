"""Pure-Python implementation of Bob Jenkins' lookup3 hash ("Bob hash").

The paper selects the Bob hash for packet sampling following the
comparative study of Molina et al. (ITC 2005), which found it to have
near-ideal uniformity for flow-key inputs at low cost.  We implement the
``hashlittle`` variant of lookup3 (the canonical "Bob hash"), operating
on arbitrary byte strings and returning a 32-bit digest.

The implementation is deliberately byte-oriented (no alignment tricks)
so it is endian-independent and matches ``hashlittle`` on little-endian
machines, which is the reference behaviour checked by Jenkins'
self-test driver.

Functions
---------
bob_hash(data, initval=0)
    32-bit lookup3 ``hashlittle`` digest of *data*.
hash_unit(data, initval=0)
    The digest mapped to a float in ``[0, 1)`` — the form consumed by
    sampling-manifest range checks (paper Fig. 3, line 4).
"""

from __future__ import annotations

_MASK = 0xFFFFFFFF


def _rot(x: int, k: int) -> int:
    """Rotate the 32-bit value *x* left by *k* bits."""
    x &= _MASK
    return ((x << k) | (x >> (32 - k))) & _MASK


def _mix(a: int, b: int, c: int) -> "tuple[int, int, int]":
    """lookup3 mix(): reversibly mix three 32-bit values."""
    a = (a - c) & _MASK
    a ^= _rot(c, 4)
    c = (c + b) & _MASK
    b = (b - a) & _MASK
    b ^= _rot(a, 6)
    a = (a + c) & _MASK
    c = (c - b) & _MASK
    c ^= _rot(b, 8)
    b = (b + a) & _MASK
    a = (a - c) & _MASK
    a ^= _rot(c, 16)
    c = (c + b) & _MASK
    b = (b - a) & _MASK
    b ^= _rot(a, 19)
    a = (a + c) & _MASK
    c = (c - b) & _MASK
    c ^= _rot(b, 4)
    b = (b + a) & _MASK
    return a, b, c


def _final(a: int, b: int, c: int) -> int:
    """lookup3 final(): irreversibly mix a, b, c and return c."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK
    a ^= c
    a = (a - _rot(c, 11)) & _MASK
    b ^= a
    b = (b - _rot(a, 25)) & _MASK
    c ^= b
    c = (c - _rot(b, 16)) & _MASK
    a ^= c
    a = (a - _rot(c, 4)) & _MASK
    b ^= a
    b = (b - _rot(a, 14)) & _MASK
    c ^= b
    c = (c - _rot(b, 24)) & _MASK
    return c


def _word(data: bytes, offset: int, nbytes: int) -> int:
    """Little-endian load of up to 4 bytes starting at *offset*."""
    value = 0
    for i in range(nbytes):
        value |= data[offset + i] << (8 * i)
    return value


def bob_hash(data: bytes, initval: int = 0) -> int:
    """Return the 32-bit lookup3 ``hashlittle`` digest of *data*.

    Parameters
    ----------
    data:
        Byte string to hash.  ``str`` inputs are rejected; callers must
        encode explicitly so flow keys are unambiguous.
    initval:
        Previous hash value or arbitrary seed.  The paper recommends
        administrators use a *keyed* hash so adversaries cannot predict
        which node samples their traffic (Section 3.2); the key is
        supplied as ``initval``.
    """
    if isinstance(data, str):
        raise TypeError("bob_hash() requires bytes; encode str inputs explicitly")
    length = len(data)
    a = b = c = (0xDEADBEEF + length + initval) & _MASK

    offset = 0
    remaining = length
    while remaining > 12:
        a = (a + _word(data, offset, 4)) & _MASK
        b = (b + _word(data, offset + 4, 4)) & _MASK
        c = (c + _word(data, offset + 8, 4)) & _MASK
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining == 0:
        # Matches lookup3's "case 0: return c" — final() is skipped.
        return c

    # Tail of 1..12 bytes, accumulated exactly as lookup3's byte switch.
    tail = data[offset : offset + remaining]
    a = (a + _word(tail, 0, min(4, remaining))) & _MASK
    if remaining > 4:
        b = (b + _word(tail, 4, min(4, remaining - 4))) & _MASK
    if remaining > 8:
        c = (c + _word(tail, 8, remaining - 8)) & _MASK
    return _final(a, b, c)


def hash_unit(data: bytes, initval: int = 0) -> float:
    """Map *data* to a float in ``[0, 1)`` via :func:`bob_hash`.

    This is the ``HASH(pkt, i)`` primitive of the coordinated-NIDS
    algorithm (paper Fig. 3): the returned value is compared against the
    node's assigned hash range for the packet's coordination unit.
    """
    return bob_hash(data, initval) / 4294967296.0


def bob_hash_pair(data: bytes, initval: int = 0, initval2: int = 0) -> "tuple[int, int]":
    """Return two independent 32-bit digests (lookup3 ``hashlittle2``-style).

    Useful when 64 bits of hash material are needed, e.g. to derive both
    a sampling position and a secondary shard identifier from one key.
    This computes two seeded ``hashlittle`` passes, which preserves the
    independence property callers rely on without duplicating the
    two-accumulator entry point.
    """
    first = bob_hash(data, initval)
    second = bob_hash(data, (initval2 + first) & _MASK)
    return first, second
