"""NumPy-vectorized Bob hash and key packing for batch dispatch.

The Fig. 3 decision procedure hashes one 5-tuple key per (module,
packet).  At network-wide emulation scale (100k sessions, every session
checked at every node on its path) the pure-Python ``hashlittle`` in
:mod:`repro.hashing.bobhash` dominates the run.  This module computes
the same digests over *arrays* of keys with NumPy:

``bob_hash_batch(keys, initval)``
    Row-wise lookup3 ``hashlittle`` over an ``(N, L)`` uint8 key
    matrix, bit-for-bit identical to :func:`repro.hashing.bobhash.bob_hash`
    applied to each row.
``hash_unit_batch(keys, initval)``
    The digests mapped to ``[0, 1)`` floats exactly as
    :func:`repro.hashing.bobhash.hash_unit` does.
``pack_key_batch(aggregation, ...)``
    Vectorized equivalent of :func:`repro.hashing.keys.key_for`: packs
    5-tuple field arrays into the canonical key matrix for one
    aggregation (all keys of an aggregation share one length, which is
    what makes row-wise vectorization exact).
``key_hash_unit_batch(aggregation, ...)``
    ``HASH(pkt, i)`` over field arrays — the batch form of
    :func:`repro.hashing.keys.key_hash_unit`.

Vectorization preserves lookup3's wrapping 32-bit arithmetic by doing
all mixing on ``uint32`` arrays (NumPy unsigned arithmetic wraps mod
2**32, matching the scalar implementation's explicit masking).
"""

from __future__ import annotations

import numpy as np

from .keys import (
    _TAG_DESTINATION,
    _TAG_FLOW,
    _TAG_HOST_PAIR,
    _TAG_SESSION,
    _TAG_SOURCE,
    Aggregation,
)

_MASK = 0xFFFFFFFF
_U32 = np.uint32


def _rot(x: np.ndarray, k: int) -> np.ndarray:
    """Rotate each 32-bit lane of *x* left by *k* bits."""
    return (x << _U32(k)) | (x >> _U32(32 - k))


def _mix(a: np.ndarray, b: np.ndarray, c: np.ndarray):
    """Vector lookup3 mix() — same schedule as the scalar version."""
    a = a - c
    a ^= _rot(c, 4)
    c = c + b
    b = b - a
    b ^= _rot(a, 6)
    a = a + c
    c = c - b
    c ^= _rot(b, 8)
    b = b + a
    a = a - c
    a ^= _rot(c, 16)
    c = c + b
    b = b - a
    b ^= _rot(a, 19)
    a = a + c
    c = c - b
    c ^= _rot(b, 4)
    b = b + a
    return a, b, c


def _final(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Vector lookup3 final() — returns the c lanes."""
    c = c ^ b
    c = c - _rot(b, 14)
    a ^= c
    a = a - _rot(c, 11)
    b ^= a
    b = b - _rot(a, 25)
    c ^= b
    c = c - _rot(b, 16)
    a ^= c
    a = a - _rot(c, 4)
    b ^= a
    b = b - _rot(a, 14)
    c ^= b
    c = c - _rot(b, 24)
    return c


def _word(keys: np.ndarray, offset: int, nbytes: int) -> np.ndarray:
    """Little-endian load of up to 4 bytes per row starting at *offset*."""
    word = keys[:, offset].astype(_U32)
    for i in range(1, nbytes):
        word |= keys[:, offset + i].astype(_U32) << _U32(8 * i)
    return word


def bob_hash_batch(keys: np.ndarray, initval: int = 0) -> np.ndarray:
    """Row-wise 32-bit lookup3 ``hashlittle`` digests of a key matrix.

    *keys* is an ``(N, L)`` uint8 array; every row is hashed as an
    ``L``-byte string.  Returns an ``(N,)`` uint32 array equal
    element-wise to ``[bob_hash(bytes(row), initval) for row in keys]``.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if keys.ndim != 2:
        raise ValueError("bob_hash_batch() requires an (N, L) key matrix")
    n, length = keys.shape
    init = _U32((0xDEADBEEF + length + initval) & _MASK)
    a = np.full(n, init, dtype=_U32)
    b = a.copy()
    c = a.copy()

    offset = 0
    remaining = length
    while remaining > 12:
        a = a + _word(keys, offset, 4)
        b = b + _word(keys, offset + 4, 4)
        c = c + _word(keys, offset + 8, 4)
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining == 0:
        # Matches lookup3's "case 0: return c" — final() is skipped.
        return c

    a = a + _word(keys, offset, min(4, remaining))
    if remaining > 4:
        b = b + _word(keys, offset + 4, min(4, remaining - 4))
    if remaining > 8:
        c = c + _word(keys, offset + 8, remaining - 8)
    return _final(a, b, c)


def hash_unit_batch(keys: np.ndarray, initval: int = 0) -> np.ndarray:
    """Row-wise digests mapped to ``[0, 1)`` floats.

    Division by 2**32 in float64 is exact for 32-bit integers, so the
    results match :func:`repro.hashing.bobhash.hash_unit` bit for bit.
    """
    return bob_hash_batch(keys, initval).astype(np.float64) / 4294967296.0


def _be_columns(values: np.ndarray, dtype: str) -> np.ndarray:
    """Big-endian byte columns of *values* (one row per element)."""
    packed = np.ascontiguousarray(values.astype(dtype))
    return packed.view(np.uint8).reshape(len(values), -1)


def pack_key_batch(
    aggregation: Aggregation,
    src: np.ndarray,
    dst: np.ndarray,
    sport: np.ndarray,
    dport: np.ndarray,
    proto: np.ndarray,
) -> np.ndarray:
    """Pack 5-tuple field arrays into the aggregation's key matrix.

    Row ``i`` equals ``key_for(aggregation, src[i], dst[i], sport[i],
    dport[i], proto[i])`` byte for byte, including the session key's
    endpoint orientation and the host pair's unordered canonicalization.
    """
    src = np.asarray(src, dtype=np.uint64)
    dst = np.asarray(dst, dtype=np.uint64)
    n = len(src)

    if aggregation is Aggregation.SOURCE:
        matrix = np.empty((n, 9), dtype=np.uint8)
        matrix[:, 0] = _TAG_SOURCE
        matrix[:, 1:9] = _be_columns(src, ">u8")
        return matrix
    if aggregation is Aggregation.DESTINATION:
        matrix = np.empty((n, 9), dtype=np.uint8)
        matrix[:, 0] = _TAG_DESTINATION
        matrix[:, 1:9] = _be_columns(dst, ">u8")
        return matrix
    if aggregation is Aggregation.HOST_PAIR:
        matrix = np.empty((n, 17), dtype=np.uint8)
        matrix[:, 0] = _TAG_HOST_PAIR
        matrix[:, 1:9] = _be_columns(np.minimum(src, dst), ">u8")
        matrix[:, 9:17] = _be_columns(np.maximum(src, dst), ">u8")
        return matrix

    sport = np.asarray(sport, dtype=np.uint64)
    dport = np.asarray(dport, dtype=np.uint64)
    if aggregation is Aggregation.SESSION:
        # Orient so the numerically smaller (addr, port) endpoint comes
        # first — the scalar session_key's bidirectional canonical form.
        # The scalar compares *raw* port values and masks only when
        # packing, so the swap must happen before masking.
        swap = (src > dst) | ((src == dst) & (sport > dport))
        src, dst = np.where(swap, dst, src), np.where(swap, src, dst)
        sport, dport = np.where(swap, dport, sport), np.where(swap, sport, dport)
        tag = _TAG_SESSION
    elif aggregation is Aggregation.FLOW:
        tag = _TAG_FLOW
    else:
        raise ValueError(f"unknown aggregation {aggregation!r}")

    matrix = np.empty((n, 22), dtype=np.uint8)
    matrix[:, 0] = tag
    matrix[:, 1:9] = _be_columns(src, ">u8")
    matrix[:, 9:17] = _be_columns(dst, ">u8")
    matrix[:, 17:19] = _be_columns(sport & np.uint64(0xFFFF), ">u2")
    matrix[:, 19:21] = _be_columns(dport & np.uint64(0xFFFF), ">u2")
    matrix[:, 21] = (np.asarray(proto, dtype=np.uint64) & np.uint64(0xFF)).astype(
        np.uint8
    )
    return matrix


def key_hash_unit_batch(
    aggregation: Aggregation,
    src: np.ndarray,
    dst: np.ndarray,
    sport: np.ndarray,
    dport: np.ndarray,
    proto: np.ndarray,
    seed: int = 0,
) -> np.ndarray:
    """Batch ``HASH(pkt, i)``: field arrays to ``[0, 1)`` hash values."""
    return hash_unit_batch(pack_key_batch(aggregation, src, dst, sport, dport, proto), seed)
