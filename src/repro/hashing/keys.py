"""Hash-key extraction for the coordinated-NIDS sampling checks.

The hash in the per-packet check (paper Fig. 3) "may be computed over
different fields in the packet header depending on the analysis":

* flow-based analysis hashes the unidirectional 5-tuple;
* session-based analysis hashes a bidirectional 5-tuple "such that the
  src/dst IP are consistent in both directions";
* per-source analysis (e.g. scan detection) hashes the source address;
* per-destination analysis (e.g. SYN-flood detection) hashes the
  destination address.

Each extractor serializes the relevant fields into a canonical byte
string; :func:`key_hash_unit` then maps it into ``[0, 1)`` with the Bob
hash.  Addresses are modeled as opaque integers (host identifiers), so
the substrate works equally for IPv4 addresses and synthetic host ids.
"""

from __future__ import annotations

import enum
import struct
from typing import Tuple

from .bobhash import hash_unit

_FLOW_STRUCT = struct.Struct(">BQQHHB")
_ADDR_STRUCT = struct.Struct(">BQ")
_PAIR_STRUCT = struct.Struct(">BQQ")

# Domain-separation tags: keys of different aggregations must never
# collide byte-wise, so each key is prefixed with its aggregation tag.
_TAG_FLOW = 1
_TAG_SESSION = 2
_TAG_SOURCE = 3
_TAG_DESTINATION = 4
_TAG_HOST_PAIR = 5


class Aggregation(enum.Enum):
    """Unit of traffic aggregation an analysis class operates on.

    Determines both which fields are hashed for sampling decisions and
    which item count (``T^items``) drives the memory-load model.
    """

    FLOW = "flow"
    SESSION = "session"
    SOURCE = "source"
    DESTINATION = "destination"
    HOST_PAIR = "host_pair"


def flow_key(src: int, dst: int, sport: int, dport: int, proto: int) -> bytes:
    """Canonical bytes for the unidirectional 5-tuple."""
    return _FLOW_STRUCT.pack(
        _TAG_FLOW, src, dst, sport & 0xFFFF, dport & 0xFFFF, proto & 0xFF
    )


def session_key(src: int, dst: int, sport: int, dport: int, proto: int) -> bytes:
    """Canonical bytes for the bidirectional 5-tuple.

    Both directions of a connection must hash identically so that the
    same node analyzes the full session.  We orient the tuple so the
    numerically smaller ``(addr, port)`` endpoint comes first.
    """
    if (src, sport) <= (dst, dport):
        lo_addr, lo_port, hi_addr, hi_port = src, sport, dst, dport
    else:
        lo_addr, lo_port, hi_addr, hi_port = dst, dport, src, sport
    return _FLOW_STRUCT.pack(
        _TAG_SESSION, lo_addr, hi_addr, lo_port & 0xFFFF, hi_port & 0xFFFF, proto & 0xFF
    )


def source_key(src: int) -> bytes:
    """Canonical bytes for per-source aggregation (scan detection)."""
    return _ADDR_STRUCT.pack(_TAG_SOURCE, src)


def destination_key(dst: int) -> bytes:
    """Canonical bytes for per-destination aggregation (flood detection)."""
    return _ADDR_STRUCT.pack(_TAG_DESTINATION, dst)


def host_pair_key(src: int, dst: int) -> bytes:
    """Canonical bytes for the unordered host pair."""
    lo, hi = (src, dst) if src <= dst else (dst, src)
    return _PAIR_STRUCT.pack(_TAG_HOST_PAIR, lo, hi)


def key_for(
    aggregation: Aggregation,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    proto: int,
) -> bytes:
    """Extract the canonical hash key for *aggregation* from 5-tuple fields."""
    if aggregation is Aggregation.FLOW:
        return flow_key(src, dst, sport, dport, proto)
    if aggregation is Aggregation.SESSION:
        return session_key(src, dst, sport, dport, proto)
    if aggregation is Aggregation.SOURCE:
        return source_key(src)
    if aggregation is Aggregation.DESTINATION:
        return destination_key(dst)
    if aggregation is Aggregation.HOST_PAIR:
        return host_pair_key(src, dst)
    raise ValueError(f"unknown aggregation {aggregation!r}")


def key_hash_unit(
    aggregation: Aggregation,
    src: int,
    dst: int,
    sport: int,
    dport: int,
    proto: int,
    seed: int = 0,
) -> float:
    """``HASH(pkt, i)`` — map the class-appropriate key into ``[0, 1)``.

    *seed* is the administrator's private hash key (Section 3.2's
    defense against adversaries crafting traffic to evade sampling).
    """
    return hash_unit(key_for(aggregation, src, dst, sport, dport, proto), seed)


#: The connection-record hash fields our Bro extension precomputes
#: (Section 2.3): one per aggregation the policy scripts consult, so a
#: policy-stage check is a table lookup instead of a recomputation.
RECORD_HASH_FIELDS: Tuple[Aggregation, ...] = (
    Aggregation.FLOW,
    Aggregation.SESSION,
    Aggregation.SOURCE,
    Aggregation.DESTINATION,
)
