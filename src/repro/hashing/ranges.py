"""Hash-range algebra for sampling manifests.

The LP solution assigns node ``R_j`` a fraction ``d_ikj`` of each
coordination unit's hash space.  ``GenerateNIDSManifest`` (paper Fig. 2)
lays those fractions end to end over ``[0, 1]`` so assignments are
non-overlapping, and the redundancy extension (Section 2.5) lays them
over ``[0, r]`` with wraparound modulo 1 so every point is covered by
``r`` *distinct* nodes.

This module provides the interval types both schemes rest on:

``HashRange``
    A half-open interval ``[lo, hi)`` within ``[0, 1]``.
``WrappedRange``
    An arc on the unit circle that may wrap past 1.0, materializing as
    one or two :class:`HashRange` pieces.  Because each ``d_ikj <= 1``,
    an arc never overlaps itself, which is what guarantees clause (2)
    of the redundancy requirement (no node covers a point twice).

plus coverage/disjointness predicates used by tests and by the manifest
verifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Tolerance for floating-point interval arithmetic.  LP solvers return
#: values that sum to 1 only to within solver tolerance; all coverage
#: checks honour this epsilon.
EPSILON = 1e-9


@dataclass(frozen=True)
class HashRange:
    """Half-open interval ``[lo, hi)`` of the unit hash space."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 - EPSILON <= self.lo <= self.hi <= 1.0 + EPSILON):
            raise ValueError(f"invalid hash range [{self.lo}, {self.hi})")

    @property
    def length(self) -> float:
        """Measure of the interval."""
        return max(0.0, self.hi - self.lo)

    @property
    def empty(self) -> bool:
        """True if the interval has (numerically) zero measure."""
        return self.length <= EPSILON

    def contains(self, value: float) -> bool:
        """Whether *value* falls inside ``[lo, hi)``.

        A range that tops out within ``EPSILON`` of 1.0 is treated as
        closed at exactly 1.0.  This covers two cases: a hash value of
        1.0 itself (impossible for the 32-bit Bob hash, but permitted by
        the float interface), and — critically — values in ``(hi, 1.0)``
        when a solver-epsilon shortfall left ``hi`` just below 1.0.
        Without the closed top, such values would be analyzed by *no*
        node even though :func:`covers_unit_interval` accepts the
        manifest (the shortfall is within its tolerance).
        """
        if self.hi >= 1.0 - EPSILON:
            return self.lo <= value <= 1.0
        return self.lo <= value < self.hi

    def overlaps(self, other: "HashRange") -> bool:
        """Whether two ranges share a set of positive measure."""
        return min(self.hi, other.hi) - max(self.lo, other.lo) > EPSILON

    def intersection_length(self, other: "HashRange") -> float:
        """Measure of the overlap between two ranges."""
        return max(0.0, min(self.hi, other.hi) - max(self.lo, other.lo))


@dataclass(frozen=True)
class WrappedRange:
    """An arc ``[start, start + length)`` on the unit circle.

    ``length`` must be at most 1 (as guaranteed by ``d_ikj <= 1``);
    arcs of length exactly 1 cover the full circle.
    """

    start: float
    length: float

    def __post_init__(self) -> None:
        if self.length < -EPSILON or self.length > 1.0 + EPSILON:
            raise ValueError(f"arc length {self.length} outside [0, 1]")
        if self.start < -EPSILON:
            raise ValueError(f"arc start {self.start} negative")

    def pieces(self) -> List[HashRange]:
        """Materialize the arc as one or two disjoint unit-space ranges."""
        lo = self.start % 1.0
        length = min(max(self.length, 0.0), 1.0)
        if length <= EPSILON:
            return []
        if length >= 1.0 - EPSILON:
            return [HashRange(0.0, 1.0)]
        hi = lo + length
        if hi <= 1.0 + EPSILON:
            return [HashRange(lo, min(hi, 1.0))]
        return [HashRange(lo, 1.0), HashRange(0.0, hi - 1.0)]

    def contains(self, value: float) -> bool:
        """Whether *value* (in ``[0, 1)``) lies on the arc."""
        return any(piece.contains(value) for piece in self.pieces())


def total_length(ranges: Iterable[HashRange]) -> float:
    """Sum of the measures of *ranges* (which need not be disjoint)."""
    return sum(r.length for r in ranges)


def are_disjoint(ranges: Sequence[HashRange]) -> bool:
    """Whether no two ranges in *ranges* overlap with positive measure."""
    ordered = sorted((r for r in ranges if not r.empty), key=lambda r: r.lo)
    for left, right in zip(ordered, ordered[1:]):
        if left.hi - right.lo > EPSILON:
            return False
    return True


def covers_unit_interval(ranges: Sequence[HashRange], fold: int = 1) -> bool:
    """Whether *ranges* cover ``[0, 1]`` exactly *fold* times.

    This is the invariant established by manifest generation: for
    redundancy level ``r``, every point of the hash space must be
    covered by exactly ``r`` ranges.  Implemented as a sweep over the
    sorted interval endpoints.
    """
    events: List[Tuple[float, int]] = []
    for r in ranges:
        if r.empty:
            continue
        events.append((r.lo, +1))
        events.append((r.hi, -1))
    if not events:
        return fold == 0
    events.sort(key=lambda e: (e[0], -e[1]))
    depth = 0
    cursor = 0.0
    for position, delta in events:
        if position - cursor > EPSILON and depth != fold:
            return False
        depth += delta
        cursor = max(cursor, position)
    if 1.0 - cursor > EPSILON:
        return False
    return True


def coverage_depth(ranges: Sequence[HashRange], value: float) -> int:
    """Number of ranges in *ranges* containing *value*."""
    return sum(1 for r in ranges if r.contains(value))
