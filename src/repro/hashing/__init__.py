"""Hash-based packet-selection substrate.

Provides the Bob (Jenkins lookup3) hash used for sampling decisions,
interval algebra over the unit hash space, and canonical hash-key
extraction per aggregation level.
"""

from .bobhash import bob_hash, bob_hash_pair, hash_unit
from .keys import (
    Aggregation,
    RECORD_HASH_FIELDS,
    destination_key,
    flow_key,
    host_pair_key,
    key_for,
    key_hash_unit,
    session_key,
    source_key,
)
from .vectorized import (
    bob_hash_batch,
    hash_unit_batch,
    key_hash_unit_batch,
    pack_key_batch,
)
from .ranges import (
    EPSILON,
    HashRange,
    WrappedRange,
    are_disjoint,
    coverage_depth,
    covers_unit_interval,
    total_length,
)

__all__ = [
    "Aggregation",
    "EPSILON",
    "HashRange",
    "RECORD_HASH_FIELDS",
    "WrappedRange",
    "are_disjoint",
    "bob_hash",
    "bob_hash_batch",
    "bob_hash_pair",
    "hash_unit_batch",
    "key_hash_unit_batch",
    "pack_key_batch",
    "coverage_depth",
    "covers_unit_interval",
    "destination_key",
    "flow_key",
    "hash_unit",
    "host_pair_key",
    "key_for",
    "key_hash_unit",
    "session_key",
    "source_key",
    "total_length",
]
