"""Path-level NIPS enforcement simulation.

Validates a deployment ``(e, d)`` operationally: lays the per-path
sampling fractions out as hash ranges along each path (exactly like the
NIDS manifests of Fig. 2), simulates the flows traversing the network,
and measures the footprint actually removed and the load each node
actually bears.

Two sampling layouts are supported:

* ``disjoint=True`` (the system's real behaviour): each node on a path
  gets a non-overlapping hash range, so no flow is inspected twice and
  the realized footprint reduction equals the optimization objective.
* ``disjoint=False`` (independent sampling, the strawman the paper's
  conservative load model corresponds to): nodes sample independently,
  duplicating inspection work and dropping less per unit of load.

In both cases realized node loads never exceed the conservative model
(Eqs. 9–10), which is the safety property the formulation relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..core.nips_milp import DKey, EKey, NIPSProblem, NIPSSolution

Pair = Tuple[str, str]


@dataclass
class EnforcementReport:
    """Outcome of simulating a deployment."""

    footprint_removed: float
    modeled_objective: float
    flows_dropped: float
    total_unwanted_flows: float
    node_cpu_load: Dict[str, float]
    node_mem_load: Dict[str, float]
    modeled_cpu_load: Dict[str, float]
    modeled_mem_load: Dict[str, float]

    @property
    def drop_rate(self) -> float:
        """Fraction of unwanted flows removed network-wide."""
        if self.total_unwanted_flows <= 0:
            return 0.0
        return self.flows_dropped / self.total_unwanted_flows

    def load_within_model(self, tol: float = 1e-6) -> bool:
        """Realized loads never exceed the conservative LP model."""
        for node, load in self.node_cpu_load.items():
            if load > self.modeled_cpu_load.get(node, 0.0) + tol:
                return False
        for node, load in self.node_mem_load.items():
            if load > self.modeled_mem_load.get(node, 0.0) + tol:
                return False
        return True


def _disjoint_ranges(
    path_nodes: Tuple[str, ...], fractions: Mapping[str, float]
) -> Dict[str, Tuple[float, float]]:
    """Lay per-node fractions as consecutive ranges over [0, 1]."""
    ranges = {}
    position = 0.0
    for node in path_nodes:
        fraction = fractions.get(node, 0.0)
        if fraction > 0.0:
            ranges[node] = (position, min(1.0, position + fraction))
            position += fraction
    return ranges


def enforce(
    problem: NIPSProblem,
    solution: NIPSSolution,
    disjoint: bool = True,
    seed: int = 0,
) -> EnforcementReport:
    """Simulate *solution* over the problem's traffic.

    Flow populations are treated fluidly (fractions of ``T^items``),
    which is exact for the hash-uniformity assumption the paper makes;
    *seed* only matters for the independent-sampling strawman.
    """
    rng = random.Random(seed)
    footprint = 0.0
    dropped = 0.0
    total_unwanted = 0.0
    cpu_load: Dict[str, float] = {}
    mem_load: Dict[str, float] = {}
    modeled_cpu: Dict[str, float] = {}
    modeled_mem: Dict[str, float] = {}

    per_path: Dict[Tuple[int, Pair], Dict[str, float]] = {}
    for (i, pair, node), fraction in solution.d.items():
        if fraction > 0.0:
            per_path.setdefault((i, pair), {})[node] = fraction

    for pair in problem.pairs:
        path = problem.paths[pair]
        items = problem.items[pair]
        pkts = problem.pkts[pair]
        for rule in problem.rules:
            rate = problem.match.rate(rule.index, pair)
            unwanted = items * rate
            total_unwanted += unwanted
            fractions = per_path.get((rule.index, pair), {})
            if not fractions:
                continue

            # Modeled (conservative) load: full T * d at every node.
            for node, fraction in fractions.items():
                modeled_mem[node] = modeled_mem.get(node, 0.0) + (
                    items * rule.mem_req * fraction
                )
                modeled_cpu[node] = modeled_cpu.get(node, 0.0) + (
                    pkts * rule.cpu_req * fraction
                )

            if disjoint:
                ranges = _disjoint_ranges(path.nodes, fractions)
                for node, (lo, hi) in ranges.items():
                    share = hi - lo
                    # Disjoint ranges: flows in this node's range were
                    # never dropped upstream, so realized load = model.
                    cpu_load[node] = cpu_load.get(node, 0.0) + pkts * rule.cpu_req * share
                    mem_load[node] = mem_load.get(node, 0.0) + items * rule.mem_req * share
                    removed = unwanted * share
                    dropped += removed
                    footprint += removed * problem.dist[pair][node]
            else:
                # Independent sampling: each node samples its fraction
                # of whatever unwanted traffic survives upstream.
                surviving = 1.0
                for node in path.nodes:
                    fraction = fractions.get(node, 0.0)
                    if fraction <= 0.0:
                        continue
                    # Unmatched traffic always arrives; matched only if
                    # it survived upstream drops.
                    arriving_matched = surviving
                    cpu_load[node] = cpu_load.get(node, 0.0) + (
                        pkts * rule.cpu_req * fraction
                        * (1.0 - rate + rate * arriving_matched)
                    )
                    mem_load[node] = mem_load.get(node, 0.0) + (
                        items * rule.mem_req * fraction
                        * (1.0 - rate + rate * arriving_matched)
                    )
                    removed = unwanted * arriving_matched * fraction
                    dropped += removed
                    footprint += removed * problem.dist[pair][node]
                    surviving *= 1.0 - fraction

    return EnforcementReport(
        footprint_removed=footprint,
        modeled_objective=problem.objective(solution.d),
        flows_dropped=dropped,
        total_unwanted_flows=total_unwanted,
        node_cpu_load=cpu_load,
        node_mem_load=mem_load,
        modeled_cpu_load=modeled_cpu,
        modeled_mem_load=modeled_mem,
    )
