"""NIPS rule model and match-rate matrices (paper Section 3.1/3.4).

Each NIPS rule (class) ``C_i`` carries three resource requirements:
CPU per packet processed, memory per flow held, and — unlike NIDS
classes — a *per-rule* TCAM footprint ``CamReq_i`` that is consumed on
a node merely by enabling the rule there.

``M_ik`` is the fraction of traffic on path ``P_ik`` that rule ``C_i``
matches (and would drop).  The paper's evaluation draws the ``M_ik``
uniformly from ``[0, 0.01]`` and notes results hold for other
distributions; :class:`MatchRateMatrix` provides the uniform draw plus
exponential and hotspot alternatives used by the ablation benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

Pair = Tuple[str, str]


@dataclass(frozen=True)
class NIPSRule:
    """One filtering rule with its resource requirements."""

    index: int
    name: str
    cpu_req: float = 1.0  # CPU units per packet
    mem_req: float = 1.0  # memory units per flow
    cam_req: float = 1.0  # TCAM slots per rule


def unit_rules(count: int = 100) -> List[NIPSRule]:
    """The paper's evaluation ruleset: *count* rules with unit
    CPU/memory/TCAM requirements (``CamReq_i = CpuReq_i = MemReq_i = 1``)."""
    return [NIPSRule(index=i, name=f"rule-{i:03d}") for i in range(count)]


class MatchRateMatrix:
    """``M_ik`` values for every (rule, path) combination."""

    def __init__(self, rates: Dict[Tuple[int, Pair], float]):
        for key, rate in rates.items():
            if rate < 0.0 or rate > 1.0:
                raise ValueError(f"match rate {rate} for {key} outside [0, 1]")
        self._rates = dict(rates)

    def rate(self, rule_index: int, pair: Pair) -> float:
        """``M_ik`` for (rule, path pair); 0 when absent."""
        return self._rates.get((rule_index, pair), 0.0)

    def items(self):
        """Iterate ((rule index, pair), rate) entries."""
        return self._rates.items()

    def total_matched_fraction(self, pair: Pair, num_rules: int) -> float:
        """Total fraction of the pair's traffic matched by any rule
        (rules are non-redundant by assumption, so fractions add)."""
        return sum(self.rate(i, pair) for i in range(num_rules))

    # -- generators -----------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        rules: Sequence[NIPSRule],
        pairs: Sequence[Pair],
        rng: random.Random,
        high: float = 0.01,
    ) -> "MatchRateMatrix":
        """The paper's default: ``M_ik ~ U[0, high]`` independently."""
        return cls(
            {
                (rule.index, pair): rng.uniform(0.0, high)
                for rule in rules
                for pair in pairs
            }
        )

    @classmethod
    def exponential(
        cls,
        rules: Sequence[NIPSRule],
        pairs: Sequence[Pair],
        rng: random.Random,
        mean: float = 0.005,
        cap: float = 0.05,
    ) -> "MatchRateMatrix":
        """Heavy-tailed rates: a few rule/path combinations dominate."""
        return cls(
            {
                (rule.index, pair): min(cap, rng.expovariate(1.0 / mean))
                for rule in rules
                for pair in pairs
            }
        )

    @classmethod
    def hotspot(
        cls,
        rules: Sequence[NIPSRule],
        pairs: Sequence[Pair],
        rng: random.Random,
        hot_fraction: float = 0.1,
        hot_rate: float = 0.02,
        cold_rate: float = 0.001,
    ) -> "MatchRateMatrix":
        """A small set of hot (rule, path) combinations carries most of
        the unwanted traffic — an attack concentrated on a few targets."""
        rates = {}
        for rule in rules:
            for pair in pairs:
                hot = rng.random() < hot_fraction
                rates[(rule.index, pair)] = (
                    rng.uniform(0.5 * hot_rate, hot_rate)
                    if hot
                    else rng.uniform(0.0, cold_rate)
                )
        return cls(rates)
