"""NIPS substrate: rules, match rates, enforcement, adversaries.

Enforcement and adversary symbols are loaded lazily (PEP 562): they
depend on :mod:`repro.core`, which itself depends on the rule model
defined here, and the lazy indirection keeps the import graph acyclic.
"""

from .rules import MatchRateMatrix, NIPSRule, unit_rules

_LAZY_EXPORTS = {
    "EnforcementReport": ("repro.nips.enforcement", "EnforcementReport"),
    "enforce": ("repro.nips.enforcement", "enforce"),
    "EvasiveAdversary": ("repro.nips.adversary", "EvasiveAdversary"),
    "ShiftingHotspotProcess": ("repro.nips.adversary", "ShiftingHotspotProcess"),
    "UniformProcess": ("repro.nips.adversary", "UniformProcess"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "EnforcementReport",
    "EvasiveAdversary",
    "MatchRateMatrix",
    "NIPSRule",
    "ShiftingHotspotProcess",
    "UniformProcess",
    "enforce",
    "unit_rules",
]
