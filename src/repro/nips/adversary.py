"""Dynamic match-rate processes for the online evaluation.

Each process is a callable ``(epoch, last_decision) -> match rates``
compatible with :func:`repro.core.online.run_online_adaptation`.  The
paper's Fig. 11 uses i.i.d. uniform draws revealed at the end of each
epoch; the shifting and adaptive processes exercise the "strategic
adversaries" direction the paper flags as future work.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.nips_milp import DKey, NIPSProblem

Pair = Tuple[str, str]
MatchRates = Dict[Tuple[int, Pair], float]
Decision = Dict[DKey, float]


class UniformProcess:
    """The paper's setting: ``M_ik ~ U[0, high]`` fresh every epoch."""

    def __init__(self, problem: NIPSProblem, seed: int = 0, high: float = 0.01):
        self.problem = problem
        self.high = high
        self._rng = random.Random(seed)

    def __call__(self, epoch: int, last_decision: Optional[Decision]) -> MatchRates:
        return {
            (rule.index, pair): self._rng.uniform(0.0, self.high)
            for rule in self.problem.rules
            for pair in self.problem.pairs
        }


class ShiftingHotspotProcess:
    """An attack whose hot (rule, path) set moves every ``period`` epochs.

    Models a botnet re-aiming at new victims: a static deployment tuned
    to one phase performs poorly in the next, so adaptation matters.
    """

    def __init__(
        self,
        problem: NIPSProblem,
        seed: int = 0,
        period: int = 50,
        hot_count: int = 5,
        hot_rate: float = 0.02,
        base_rate: float = 0.001,
    ):
        self.problem = problem
        self.period = period
        self.hot_count = hot_count
        self.hot_rate = hot_rate
        self.base_rate = base_rate
        self._rng = random.Random(seed)
        self._hot: List[Tuple[int, Pair]] = []
        self._phase = -1

    def _reshuffle(self) -> None:
        combos = [
            (rule.index, pair)
            for rule in self.problem.rules
            for pair in self.problem.pairs
        ]
        self._hot = self._rng.sample(combos, min(self.hot_count, len(combos)))

    def __call__(self, epoch: int, last_decision: Optional[Decision]) -> MatchRates:
        phase = epoch // self.period
        if phase != self._phase:
            self._phase = phase
            self._reshuffle()
        hot = set(self._hot)
        return {
            (rule.index, pair): (
                self.hot_rate if (rule.index, pair) in hot else self.base_rate
            )
            for rule in self.problem.rules
            for pair in self.problem.pairs
        }


class EvasiveAdversary:
    """Reactive attacker: concentrates unwanted traffic where the
    defender's previous deployment filtered the least.

    Exactly the adversary FPL's perturbation guards against — a
    deterministic follow-the-leader defender is exploited indefinitely,
    while FPL's randomization keeps the achievable evasion bounded.
    """

    def __init__(
        self,
        problem: NIPSProblem,
        seed: int = 0,
        budget_rate: float = 0.01,
    ):
        self.problem = problem
        self.budget_rate = budget_rate
        self._rng = random.Random(seed)

    def _coverage(self, decision: Decision) -> Dict[Tuple[int, Pair], float]:
        covered: Dict[Tuple[int, Pair], float] = {}
        for (i, pair, _node), fraction in decision.items():
            covered[(i, pair)] = covered.get((i, pair), 0.0) + fraction
        return covered

    def __call__(self, epoch: int, last_decision: Optional[Decision]) -> MatchRates:
        combos = [
            (rule.index, pair)
            for rule in self.problem.rules
            for pair in self.problem.pairs
        ]
        if last_decision is None:
            target = self._rng.choice(combos)
            return {
                combo: (self.budget_rate if combo == target else 0.0)
                for combo in combos
            }
        covered = self._coverage(last_decision)
        # Attack the least-covered combination, budget concentrated there.
        target = min(combos, key=lambda combo: covered.get(combo, 0.0))
        return {
            combo: (self.budget_rate if combo == target else 0.0)
            for combo in combos
        }
