"""Consolidation of per-cell sweep results into one report.

:func:`consolidate` folds the cells of a :class:`~.executor.SweepRun`
into a single JSON-compatible report: per-cell verdict rows, per-axis
aggregates (how did each topology / plan / dynamics preset /
redundancy level / seed fare across the rest of the grid), worst-cell
highlighting, a violation summary, and the spec-order fold of every
cell's metric snapshot.

The report is **deterministic by construction** so that the
sequential and parallel executors produce byte-identical output:

* cells are folded and listed in spec order, never completion order;
* wall-clock fields (``duration_seconds``) and timing metric families
  (names ending ``_seconds`` / ``_per_second``) are excluded — they
  are the only nondeterministic values a run produces;
* runner-side ``sweep_*`` telemetry is excluded too, since cache
  hit/miss counts legitimately differ between a cold run and a warm
  re-run that must still render the same report;
* the JSON writer sorts keys.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..obs import MetricsRegistry
from .executor import SweepRun
from .worker import CellResult

#: Metric-family name suffixes excluded from the consolidated report
#: (wall-clock derived, so nondeterministic across runs/executors).
NONDETERMINISTIC_SUFFIXES: Tuple[str, ...] = ("_seconds", "_per_second")

#: How many lowest-coverage cells the report highlights.
WORST_CELLS = 3


def _deterministic_metrics(snapshots: List[dict]) -> dict:
    """Fold cell snapshots (in the given order) and drop timing families."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            registry.merge_from(snapshot)
    merged = registry.snapshot()
    metrics = {
        name: family
        for name, family in merged.get("metrics", {}).items()
        if not name.endswith(NONDETERMINISTIC_SUFFIXES)
        and not name.startswith("sweep_")
    }
    return {"version": merged.get("version", 1), "metrics": metrics}


def _cell_row(result: CellResult) -> dict:
    """The report row for one cell (no wall-clock fields)."""
    cell = result.cell
    return {
        "cell_id": cell.cell_id,
        "topology": cell.topology,
        "plan": cell.plan,
        "dynamics": cell.dynamics,
        "redundancy": cell.redundancy,
        "seed": cell.seed,
        "derived_seed": result.derived_seed,
        "kind": result.kind,
        "ok": result.ok,
        "violations": list(result.violations),
        "epochs_run": result.epochs_run,
        "coverage_mean": result.coverage_mean,
        "coverage_min": result.coverage_min,
        "push_bytes": result.push_bytes,
        "full_equivalent_bytes": result.full_equivalent_bytes,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "detection_epoch": dict(result.detection_epoch),
        "redistribution_epoch": dict(result.redistribution_epoch),
        "first_degraded_epoch": result.first_degraded_epoch,
        "reconverged_epoch": result.reconverged_epoch,
    }


def _axis_aggregates(results: List[CellResult]) -> dict:
    """Per-axis marginals: how each axis value fared across the grid."""
    axes = {
        "topology": lambda cell: cell.topology,
        "plan": lambda cell: cell.plan,
        "dynamics": lambda cell: cell.dynamics,
        "redundancy": lambda cell: f"{cell.redundancy:g}",
        "seed": lambda cell: str(cell.seed),
    }
    aggregates: Dict[str, dict] = {}
    for axis, keyer in axes.items():
        groups: Dict[str, List[CellResult]] = {}
        for result in results:
            groups.setdefault(keyer(result.cell), []).append(result)
        aggregates[axis] = {
            value: {
                "cells": len(group),
                "ok": sum(1 for r in group if r.ok),
                "violations": sum(len(r.violations) for r in group),
                "coverage_min": min(r.coverage_min for r in group),
                "coverage_mean": (
                    # repnoqa: REP203 -- display-only mean, folded over
                    # cells in spec order (deterministic); the exact
                    # per-cell values live in the rows themselves.
                    sum(r.coverage_mean for r in group) / len(group)  # repnoqa: REP203
                ),
            }
            for value, group in sorted(groups.items())
        }
    return aggregates


def consolidate(run: SweepRun) -> dict:
    """The consolidated report for *run* (JSON-compatible dict)."""
    results = run.results
    rows = [_cell_row(result) for result in results]
    worst = sorted(
        results, key=lambda r: (r.coverage_min, r.cell.cell_id)
    )[:WORST_CELLS]
    return {
        "name": run.spec.name,
        "spec": run.spec.to_dict(),
        "cells": rows,
        "summary": {
            "cells": len(results),
            "ok": sum(1 for r in results if r.ok),
            "violating_cells": sum(1 for r in results if not r.ok),
            "violations_total": sum(len(r.violations) for r in results),
            "coverage_min": min(
                (r.coverage_min for r in results), default=1.0
            ),
        },
        "axes": _axis_aggregates(results),
        "worst_cells": [
            {
                "cell_id": r.cell.cell_id,
                "coverage_min": r.coverage_min,
                "ok": r.ok,
            }
            for r in worst
        ],
        "violations": [
            {"cell_id": cell_id, "violation": violation}
            for cell_id, violation in run.violations
        ],
        "metrics": _deterministic_metrics([r.metrics for r in results]),
    }


def render_report(report: dict) -> str:
    """Canonical byte-stable JSON text for *report*."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(report: dict, path: str) -> None:
    """Write the canonical JSON text of *report* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report(report))


def format_summary(run: SweepRun, report: Optional[dict] = None) -> str:
    """Human-readable digest of a sweep for terminal output."""
    report = report if report is not None else consolidate(run)
    summary = report["summary"]
    lines = [
        f"sweep {report['name']}: {summary['cells']} cells"
        f" ({len(run.executed)} executed, {len(run.cached)} cached,"
        f" jobs={run.jobs})",
        f"  ok: {summary['ok']}/{summary['cells']}"
        f"  violations: {summary['violations_total']}"
        f"  coverage min: {summary['coverage_min']:.4f}",
    ]
    for entry in report["worst_cells"]:
        flag = "ok" if entry["ok"] else "VIOLATING"
        lines.append(
            f"  worst: {entry['cell_id']}"
            f" coverage_min={entry['coverage_min']:.4f} [{flag}]"
        )
    for item in report["violations"]:
        lines.append(f"  violation: {item['cell_id']}: {item['violation']}")
    return "\n".join(lines)
