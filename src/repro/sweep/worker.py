"""Shared-nothing execution of one sweep cell.

This module is the process-pool entry point, so everything here must
be **spawn-safe**: :func:`run_cell_payload` is a module-level function
taking and returning plain JSON-compatible dicts, importable by a
freshly spawned interpreter with no inherited state.  Each cell builds
its own topology, bus, controller, and agents from the cell's derived
seed — no sharing, no ordering dependence — which is what makes the
grid embarrassingly parallel and the parallel/sequential consolidated
reports bit-identical.

A cell maps to one of the two existing end-to-end drivers:

* ``plan == "none"`` — the scripted steady → shift → failure →
  recovery scenario (:func:`~repro.control.scenarios.run_scenario`),
  with the event schedule scaled to the cell's epoch count and the
  failed node chosen deterministically from the cell seed;
* any other plan — a chaos run
  (:func:`~repro.control.chaos.run_chaos`) under the named (or
  seeded-``random``) fault plan, judged by the
  :class:`~repro.control.chaos.InvariantMonitor`.

The cell's full telemetry snapshot rides along in the result, so the
parent can fold every worker's metrics into one registry with
:meth:`~repro.obs.MetricsRegistry.merge_from`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..control.chaos import ChaosConfig, build_plan, run_chaos
from ..control.scenarios import (
    ScenarioConfig,
    ScenarioEvent,
    run_scenario,
)
from ..obs import MetricsRegistry
from ..topology import by_label
from .spec import DYNAMICS_PRESETS, SweepCell

#: Minimum epochs for the scripted event schedule; shorter cells run
#: the steady-state scenario (no shift/failure/recovery events).
MIN_EVENT_EPOCHS = 12


@dataclass
class CellResult:
    """Everything the merge layer needs from one executed cell.

    Wall-clock ``duration_seconds`` is recorded for ``status`` output
    and benchmarking but deliberately **excluded** from the
    consolidated report, which must be bit-identical across executors
    and runs.
    """

    cell: SweepCell
    derived_seed: int
    kind: str  # "scenario" | "chaos"
    ok: bool
    violations: Tuple[str, ...]
    epochs_run: int
    coverage_mean: float
    coverage_min: float
    push_bytes: int
    full_equivalent_bytes: int
    messages_sent: int
    bytes_sent: int
    #: Scenario verdicts (empty for chaos cells).
    detection_epoch: Dict[str, int]
    redistribution_epoch: Dict[str, int]
    #: Chaos verdicts (``None`` for scenario cells).
    first_degraded_epoch: Optional[int]
    reconverged_epoch: Optional[int]
    #: Full per-cell telemetry snapshot (repro.obs format).
    metrics: dict
    duration_seconds: float

    def to_dict(self) -> dict:
        """JSON-compatible dict (the cache artifact payload)."""
        return {
            "cell": self.cell.to_dict(),
            "derived_seed": self.derived_seed,
            "kind": self.kind,
            "ok": self.ok,
            "violations": list(self.violations),
            "epochs_run": self.epochs_run,
            "coverage_mean": self.coverage_mean,
            "coverage_min": self.coverage_min,
            "push_bytes": self.push_bytes,
            "full_equivalent_bytes": self.full_equivalent_bytes,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "detection_epoch": dict(self.detection_epoch),
            "redistribution_epoch": dict(self.redistribution_epoch),
            "first_degraded_epoch": self.first_degraded_epoch,
            "reconverged_epoch": self.reconverged_epoch,
            "metrics": self.metrics,
            "duration_seconds": self.duration_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            cell=SweepCell.from_dict(data["cell"]),
            derived_seed=data["derived_seed"],
            kind=data["kind"],
            ok=data["ok"],
            violations=tuple(data.get("violations", ())),
            epochs_run=data["epochs_run"],
            coverage_mean=data["coverage_mean"],
            coverage_min=data["coverage_min"],
            push_bytes=data["push_bytes"],
            full_equivalent_bytes=data["full_equivalent_bytes"],
            messages_sent=data["messages_sent"],
            bytes_sent=data["bytes_sent"],
            detection_epoch=dict(data.get("detection_epoch", {})),
            redistribution_epoch=dict(data.get("redistribution_epoch", {})),
            first_degraded_epoch=data.get("first_degraded_epoch"),
            reconverged_epoch=data.get("reconverged_epoch"),
            metrics=data.get("metrics", {}),
            duration_seconds=data.get("duration_seconds", 0.0),
        )


def scenario_events(
    cell: SweepCell, node_names: Tuple[str, ...]
) -> Tuple[ScenarioEvent, ...]:
    """The scripted schedule for a ``plan == "none"`` cell.

    The canonical 16-epoch shift@5 / fail@8 / recover@12 schedule,
    scaled proportionally to the cell's epoch count; the failed node
    and the shift profile come deterministically from the derived
    seed, so different seeds genuinely exercise different failure
    positions.  Cells shorter than :data:`MIN_EVENT_EPOCHS` epochs run
    steady-state (no events) — there is no room to judge recovery.
    """
    if cell.epochs < MIN_EVENT_EPOCHS:
        return ()
    shift_epoch = max(2, round(cell.epochs * 5 / 16))
    fail_epoch = max(shift_epoch + 2, round(cell.epochs * 8 / 16))
    recover_epoch = max(fail_epoch + 3, round(cell.epochs * 12 / 16))
    if recover_epoch >= cell.epochs - 1:
        return ()
    ordered = tuple(sorted(node_names))
    fail_node = ordered[cell.derived_seed % len(ordered)]
    base_profile = DYNAMICS_PRESETS[cell.dynamics]["profile"]
    shift_profile = "web_heavy" if base_profile != "web_heavy" else "mixed"
    return (
        ScenarioEvent(epoch=shift_epoch, kind="shift", profile=shift_profile),
        ScenarioEvent(epoch=fail_epoch, kind="fail", node=fail_node),
        ScenarioEvent(epoch=recover_epoch, kind="recover", node=fail_node),
    )


def build_cell_config(cell: SweepCell):
    """The cell's run config: ``ScenarioConfig`` or ``ChaosConfig``."""
    preset = DYNAMICS_PRESETS[cell.dynamics]
    derived = cell.derived_seed
    if cell.plan == "none":
        node_names = tuple(by_label(cell.topology).node_names)
        return ScenarioConfig(
            topology=cell.topology,
            epochs=cell.epochs,
            base_sessions=cell.base_sessions,
            profile=str(preset["profile"]),
            seed=derived,
            diurnal_amplitude=float(preset["diurnal_amplitude"]),
            burst_probability=float(preset["burst_probability"]),
            coverage=cell.redundancy,
            events=scenario_events(cell, node_names),
        )
    node_names = tuple(by_label(cell.topology).node_names)
    plan = build_plan(cell.plan, derived, cell.epochs, node_names)
    return ChaosConfig(
        plan=plan,
        topology=cell.topology,
        epochs=cell.epochs,
        base_sessions=cell.base_sessions,
        profile=str(preset["profile"]),
        seed=derived,
        coverage=cell.redundancy,
    )


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one cell in-process and grade it.

    Every cell gets a fresh :class:`~repro.obs.MetricsRegistry`; the
    snapshot ships in the result so the parent can merge telemetry
    across workers deterministically.
    """
    started = time.perf_counter()
    registry = MetricsRegistry()
    config = build_cell_config(cell)
    if isinstance(config, ScenarioConfig):
        result = run_scenario(config, registry=registry)
        violations = tuple(result.check_acceptance())
        records = result.records
        coverages = [record.coverage for record in records]
        stats = result.controller_stats
        return CellResult(
            cell=cell,
            derived_seed=cell.derived_seed,
            kind="scenario",
            ok=not violations,
            violations=violations,
            epochs_run=len(records),
            coverage_mean=(
                sum(coverages) / len(coverages) if coverages else 1.0
            ),
            coverage_min=min(coverages, default=1.0),
            push_bytes=stats.push_bytes if stats else 0,
            full_equivalent_bytes=(
                stats.full_equivalent_bytes if stats else 0
            ),
            messages_sent=result.bus_stats.sent if result.bus_stats else 0,
            bytes_sent=(
                result.bus_stats.bytes_sent if result.bus_stats else 0
            ),
            detection_epoch=dict(result.detection_epoch),
            redistribution_epoch=dict(result.redistribution_epoch),
            first_degraded_epoch=None,
            reconverged_epoch=None,
            metrics=registry.snapshot(),
            duration_seconds=time.perf_counter() - started,
        )
    chaos = run_chaos(config, registry=registry)
    violations = tuple(chaos.check_acceptance())
    coverages = [record.record.coverage for record in chaos.records]
    stats = chaos.controller_stats
    return CellResult(
        cell=cell,
        derived_seed=cell.derived_seed,
        kind="chaos",
        ok=not violations,
        violations=violations,
        epochs_run=len(chaos.records),
        coverage_mean=sum(coverages) / len(coverages) if coverages else 1.0,
        coverage_min=min(coverages, default=1.0),
        push_bytes=stats.push_bytes if stats else 0,
        full_equivalent_bytes=stats.full_equivalent_bytes if stats else 0,
        messages_sent=chaos.bus_stats.sent if chaos.bus_stats else 0,
        bytes_sent=chaos.bus_stats.bytes_sent if chaos.bus_stats else 0,
        detection_epoch={},
        redistribution_epoch={},
        first_degraded_epoch=chaos.first_degraded_epoch,
        reconverged_epoch=chaos.reconverged_epoch,
        metrics=registry.snapshot(),
        duration_seconds=time.perf_counter() - started,
    )


def run_cell_payload(payload: dict) -> dict:
    """Process-pool entry point: dict in, dict out.

    Dict transport (rather than pickled result objects) keeps the
    worker boundary identical to the artifact-cache format, so a
    cached cell and a freshly executed one are indistinguishable to
    the merge layer.
    """
    return run_cell(SweepCell.from_dict(payload)).to_dict()
