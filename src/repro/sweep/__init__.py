"""repro.sweep — sharded scenario sweeps with cached artifacts.

The paper's evaluation is a grid, not a run: topologies × fault
conditions × traffic/adversary dynamics × redundancy levels × seeds
(§6).  This package executes that grid as a declarative sweep:

* :mod:`~repro.sweep.spec` — :class:`SweepSpec` / :class:`SweepCell`
  declare the matrix; :func:`derive_seed` gives every cell a stable,
  independent RNG stream; :func:`load_spec` reads TOML/JSON files;
* :mod:`~repro.sweep.executor` — :func:`run_sweep` shards the grid
  over shared-nothing worker processes (spawn-safe), with a
  sequential fallback and a content-addressed artifact cache
  (:class:`~repro.sweep.cache.ArtifactCache`) so grown grids only
  execute their new cells;
* :mod:`~repro.sweep.report` — :func:`consolidate` folds per-cell
  verdicts and telemetry into one deterministic report whose bytes do
  not depend on worker count or cache state.

CLI: ``repro sweep run|status|report``.
"""

from .cache import ArtifactCache, CACHE_FORMAT_VERSION, cache_key
from .executor import DEFAULT_CACHE_DIR, SweepRun, run_sweep
from .report import consolidate, format_summary, render_report, write_report
from .spec import (
    DYNAMICS_PRESETS,
    PLAN_AXIS_VALUES,
    SweepCell,
    SweepSpec,
    derive_seed,
    load_spec,
)
from .worker import CellResult, run_cell

__all__ = [
    "ArtifactCache",
    "CACHE_FORMAT_VERSION",
    "CellResult",
    "DEFAULT_CACHE_DIR",
    "DYNAMICS_PRESETS",
    "PLAN_AXIS_VALUES",
    "SweepCell",
    "SweepRun",
    "SweepSpec",
    "cache_key",
    "consolidate",
    "derive_seed",
    "format_summary",
    "load_spec",
    "render_report",
    "run_cell",
    "run_sweep",
    "write_report",
]
