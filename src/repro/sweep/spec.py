"""Declarative scenario-grid specification for the sweep runner.

The paper's headline results come from a *matrix* of runs —
topologies × traffic dynamics × redundancy levels × failure
conditions (§6) — not from any single emulation.  A
:class:`SweepSpec` names that matrix declaratively: each axis is a
tuple of values and the grid is their Cartesian product, one
:class:`SweepCell` per combination, enumerated in a deterministic
order (axes vary right-to-left, like an odometer).

Two properties make the grid growable and cache-friendly:

* **stable cell identity** — :attr:`SweepCell.cell_id` is a pure
  function of the cell's axis values, so adding a topology or a seed
  to the spec never renames existing cells;
* **stable seed derivation** — :func:`derive_seed` hashes the base
  seed together with the cell's axis values (SHA-256, not Python's
  randomized ``hash``), so every cell gets an independent,
  reproducible RNG stream that does not shift when the grid grows.

Specs load from TOML (Python 3.11+) or JSON sweep files via
:func:`load_spec` and round-trip through ``to_dict``/``from_dict``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Sequence, Tuple

from ..control.chaos import NAMED_PLANS
from ..control.scenarios import PROFILES

#: The fault-condition axis: ``none`` runs the scripted
#: steady → shift → failure → recovery scenario; every other value is
#: a chaos fault plan (the named plans plus seeded ``random``).
PLAN_AXIS_VALUES: Tuple[str, ...] = ("none",) + tuple(sorted(NAMED_PLANS)) + (
    "random",
)

#: The traffic/adversary-dynamics axis: named presets mapping to a
#: traffic profile plus :class:`~repro.traffic.dynamics.DiurnalBurstModel`
#: parameters.  ``adversarial`` drives the attack-heavy profile with
#: bursts — the NIPS adversaries' traffic shape.
DYNAMICS_PRESETS: Dict[str, Dict[str, object]] = {
    "steady": {
        "profile": "mixed",
        "diurnal_amplitude": 0.0,
        "burst_probability": 0.0,
    },
    "diurnal": {
        "profile": "mixed",
        "diurnal_amplitude": 0.08,
        "burst_probability": 0.0,
    },
    "bursty": {
        "profile": "mixed",
        "diurnal_amplitude": 0.08,
        "burst_probability": 0.25,
    },
    "adversarial": {
        "profile": "attack_heavy",
        "diurnal_amplitude": 0.08,
        "burst_probability": 0.25,
    },
}


def derive_seed(base: int, *axis_values: object) -> int:
    """A stable 32-bit seed for one cell of the grid.

    SHA-256 over the canonical JSON of ``[base, *axis_values]`` —
    deterministic across processes and Python versions (unlike
    ``hash``), independent per cell, and insensitive to grid growth:
    a cell's seed depends only on its own coordinates.
    """
    payload = json.dumps([base, *axis_values], sort_keys=True)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class SweepCell:
    """One point of the evaluation matrix.

    A cell is pure data — it names *what* to run, not *how*; the
    worker (:mod:`repro.sweep.worker`) translates it into a
    :class:`~repro.control.scenarios.ScenarioConfig` (``plan ==
    "none"``) or a :class:`~repro.control.chaos.ChaosConfig` (any
    other plan) with the cell's derived seed.
    """

    topology: str = "internet2"
    plan: str = "none"
    dynamics: str = "diurnal"
    redundancy: float = 1.0
    seed: int = 0
    epochs: int = 16
    base_sessions: int = 300
    #: Base seed the per-cell seed is derived from (copied off the
    #: spec so a cell is self-contained and content-addressable).
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.plan not in PLAN_AXIS_VALUES:
            raise ValueError(
                f"unknown plan axis value {self.plan!r};"
                f" choose from {PLAN_AXIS_VALUES}"
            )
        if self.dynamics not in DYNAMICS_PRESETS:
            raise ValueError(
                f"unknown dynamics preset {self.dynamics!r};"
                f" choose from {tuple(sorted(DYNAMICS_PRESETS))}"
            )
        if self.redundancy < 1.0:
            raise ValueError(
                f"redundancy must be >= 1, got {self.redundancy}"
            )
        if self.epochs < 14 and self.plan != "none":
            raise ValueError(
                f"plan {self.plan!r} needs >= 14 epochs, got {self.epochs}"
            )
        profile = DYNAMICS_PRESETS[self.dynamics]["profile"]
        if profile not in PROFILES:
            raise ValueError(f"dynamics preset maps to unknown profile {profile!r}")

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity, usable as a filename stem."""
        return (
            f"{self.topology.lower()}+{self.plan}+{self.dynamics}"
            f"+r{self.redundancy:g}+s{self.seed}"
        )

    @property
    def derived_seed(self) -> int:
        """The cell's independent RNG seed (see :func:`derive_seed`)."""
        return derive_seed(
            self.base_seed,
            self.topology.lower(),
            self.plan,
            self.dynamics,
            self.redundancy,
            self.seed,
        )

    def to_dict(self) -> dict:
        """JSON-compatible dict (the cache-key payload)."""
        return {
            "topology": self.topology,
            "plan": self.plan,
            "dynamics": self.dynamics,
            "redundancy": self.redundancy,
            "seed": self.seed,
            "epochs": self.epochs,
            "base_sessions": self.base_sessions,
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """The declarative grid: axis value tuples plus shared run shape."""

    name: str = "sweep"
    topologies: Tuple[str, ...] = ("internet2",)
    plans: Tuple[str, ...] = ("none",)
    dynamics: Tuple[str, ...] = ("diurnal",)
    redundancy: Tuple[float, ...] = (1.0,)
    seeds: Tuple[int, ...] = (0,)
    epochs: int = 16
    base_sessions: int = 300
    #: Base seed mixed into every cell's derived seed.
    seed: int = 0

    def __post_init__(self) -> None:
        for axis_name in ("topologies", "plans", "dynamics", "redundancy", "seeds"):
            if not getattr(self, axis_name):
                raise ValueError(f"sweep axis {axis_name!r} must be non-empty")
            values = getattr(self, axis_name)
            if len(set(values)) != len(values):
                raise ValueError(
                    f"sweep axis {axis_name!r} has duplicate values: {values}"
                )

    def cells(self) -> List[SweepCell]:
        """The grid, enumerated in deterministic odometer order."""
        return [
            SweepCell(
                topology=topology,
                plan=plan,
                dynamics=dynamics,
                redundancy=redundancy,
                seed=seed,
                epochs=self.epochs,
                base_sessions=self.base_sessions,
                base_seed=self.seed,
            )
            for topology, plan, dynamics, redundancy, seed in itertools.product(
                self.topologies,
                self.plans,
                self.dynamics,
                self.redundancy,
                self.seeds,
            )
        ]

    def __len__(self) -> int:
        return (
            len(self.topologies)
            * len(self.plans)
            * len(self.dynamics)
            * len(self.redundancy)
            * len(self.seeds)
        )

    def to_dict(self) -> dict:
        """JSON-compatible dict (axis tuples become lists)."""
        return {
            "name": self.name,
            "topologies": list(self.topologies),
            "plans": list(self.plans),
            "dynamics": list(self.dynamics),
            "redundancy": list(self.redundancy),
            "seeds": list(self.seeds),
            "epochs": self.epochs,
            "base_sessions": self.base_sessions,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` / sweep-file content."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown sweep spec keys {sorted(unknown)};"
                f" expected a subset of {sorted(known)}"
            )
        converted = dict(data)
        for axis_name in ("topologies", "plans", "dynamics", "seeds"):
            if axis_name in converted:
                converted[axis_name] = tuple(converted[axis_name])
        if "redundancy" in converted:
            converted["redundancy"] = tuple(
                float(value) for value in converted["redundancy"]
            )
        return cls(**converted)


def load_spec(path: str) -> SweepSpec:
    """Load a sweep file: TOML for ``.toml``, JSON otherwise.

    The file holds the :meth:`SweepSpec.to_dict` keys at top level, or
    nested under a ``[sweep]`` table (TOML convention)::

        [sweep]
        name = "nightly"
        topologies = ["internet2", "geant"]
        plans = ["none", "controller-outage"]
        seeds = [0, 1]
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ModuleNotFoundError as error:  # Python < 3.11
            raise ValueError(
                f"cannot load {path!r}: TOML sweep files need Python 3.11+"
                " (tomllib); use the JSON form on older interpreters"
            ) from error

        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    if "sweep" in data and isinstance(data["sweep"], dict):
        data = data["sweep"]
    return SweepSpec.from_dict(data)
