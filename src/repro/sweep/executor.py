"""Sharded sweep execution over a process pool, with artifact cache.

:func:`run_sweep` drives the grid three ways, all producing the same
results in the same (spec) order:

* ``jobs > 1`` — a ``concurrent.futures.ProcessPoolExecutor`` with the
  **spawn** start method (safe on every platform, no forked locks or
  inherited RNG state), one shared-nothing worker process per cell;
* ``jobs == 1`` — a plain in-process loop, the sequential fallback;
  its consolidated report is bit-identical to the parallel one
  (test-verified) because cells share nothing and results are folded
  in spec order regardless of completion order;
* any cell already present in the artifact cache is served from disk
  and never re-executed, so a grown grid only runs its new cells.

The parent registry receives ``sweep_*`` runner telemetry plus the
fold of every cell's own metric snapshot (via
:meth:`~repro.obs.MetricsRegistry.merge_from`, in spec order).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import MetricsRegistry, NULL_REGISTRY
from .cache import ArtifactCache
from .spec import SweepCell, SweepSpec
from .worker import CellResult, run_cell_payload

#: Default artifact-cache directory (relative to the working dir).
DEFAULT_CACHE_DIR = ".sweep-cache"


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` invocation."""

    spec: SweepSpec
    #: Cell results in spec (odometer) order, cached and executed alike.
    results: List[CellResult]
    #: ``cell_id`` of every cell actually executed this invocation.
    executed: Tuple[str, ...]
    #: ``cell_id`` of every cell served from the artifact cache.
    cached: Tuple[str, ...]
    jobs: int
    duration_seconds: float = 0.0
    #: Violations across all cells, in spec order.
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell passed its acceptance/invariant checks."""
        return not self.violations


def _execute(
    cells: List[SweepCell], jobs: int, mp_context: Optional[str]
) -> Dict[str, dict]:
    """Run *cells*, returning result dicts keyed by ``cell_id``.

    ``executor.map`` yields in submission order, but results are keyed
    (not positional) so the caller's fold order never depends on the
    pool's scheduling.
    """
    if not cells:
        return {}
    payloads = [cell.to_dict() for cell in cells]
    if jobs <= 1 or len(cells) == 1:
        produced = [run_cell_payload(payload) for payload in payloads]
    else:
        context = multiprocessing.get_context(mp_context or "spawn")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)), mp_context=context
        ) as pool:
            produced = list(pool.map(run_cell_payload, payloads, chunksize=1))
    return {
        cell.cell_id: result for cell, result in zip(cells, produced)
    }


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    registry: Optional[MetricsRegistry] = None,
    force: bool = False,
    mp_context: Optional[str] = None,
) -> SweepRun:
    """Execute the grid named by *spec* and return its results.

    ``cache_dir=None`` disables the artifact cache entirely;
    ``force=True`` keeps the cache but re-executes (and re-stores)
    every cell.  ``registry`` receives runner telemetry and the merged
    per-cell snapshots.
    """
    registry = registry if registry is not None else NULL_REGISTRY
    started = time.perf_counter()
    cells = spec.cells()
    cache = ArtifactCache(cache_dir) if cache_dir else None
    if cache is not None and not force:
        hits, missing = cache.partition(cells)
    else:
        hits, missing = {}, list(cells)
    registry.counter(
        "sweep_cache_hits_total",
        "sweep cells served from the artifact cache",
    ).inc(len(hits))
    registry.counter(
        "sweep_cache_misses_total",
        "sweep cells not found in the artifact cache",
    ).inc(len(missing))

    executed = _execute(missing, jobs, mp_context)
    if cache is not None:
        for cell in missing:
            cache.put(cell, executed[cell.cell_id])

    cells_counter = registry.counter(
        "sweep_cells_total",
        "sweep cells graded, by result source",
        labels=("source",),
    )
    cells_counter.inc(len(hits), source="cached")
    cells_counter.inc(len(missing), source="executed")
    cell_seconds = registry.histogram(
        "sweep_cell_seconds",
        "wall-clock seconds per executed sweep cell",
        buckets=(0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0),
    )
    violations_counter = registry.counter(
        "sweep_violations_total",
        "acceptance/invariant violations across sweep cells",
    )

    results: List[CellResult] = []
    violations: List[Tuple[str, str]] = []
    for cell in cells:
        if cell.cell_id in hits:
            payload = hits[cell.cell_id]
        else:
            payload = executed[cell.cell_id]
        result = CellResult.from_dict(payload)
        results.append(result)
        registry.merge_from(result.metrics)
        for violation in result.violations:
            violations.append((cell.cell_id, violation))
        violations_counter.inc(len(result.violations))
        if cell.cell_id in executed:
            cell_seconds.observe(result.duration_seconds)

    registry.gauge(
        "sweep_workers", "worker processes used by the last sweep"
    ).set(jobs)
    return SweepRun(
        spec=spec,
        results=results,
        executed=tuple(cell.cell_id for cell in missing),
        cached=tuple(sorted(hits)),
        jobs=jobs,
        duration_seconds=time.perf_counter() - started,
        violations=violations,
    )
