"""Command-line front end for the sweep runner.

Three subcommands under ``repro sweep`` (also reachable via
``python -m repro.sweep``):

* ``run`` — execute a grid (spec file or axis flags) across worker
  processes, consolidate, and optionally write the report/metrics;
* ``status`` — audit the artifact cache for a grid without executing
  anything: which cells are cached, which would run;
* ``report`` — re-render the consolidated report purely from cached
  artifacts (errors if any cell is missing).

Exit codes: 0 clean, 1 cell violations (``run``) or incomplete cache
(``report``), 2 usage/load errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cache import ArtifactCache
from .executor import DEFAULT_CACHE_DIR, SweepRun, run_sweep
from .report import consolidate, format_summary, write_report
from .spec import (
    DYNAMICS_PRESETS,
    PLAN_AXIS_VALUES,
    SweepSpec,
    load_spec,
)
from .worker import CellResult


def _spec_from_args(args) -> SweepSpec:
    """Build the grid spec: from ``--spec FILE`` or the axis flags."""
    if args.spec:
        return load_spec(args.spec)
    return SweepSpec(
        name=args.name,
        topologies=tuple(args.topologies),
        plans=tuple(args.plans),
        dynamics=tuple(args.dynamics),
        redundancy=tuple(args.redundancy),
        seeds=tuple(args.seeds),
        epochs=args.epochs,
        base_sessions=args.sessions,
        seed=args.seed,
    )


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    """Grid-shape options shared by ``run``/``status``/``report``."""
    parser.add_argument(
        "--spec",
        help="sweep file (TOML on Python 3.11+, or JSON);"
        " overrides the axis flags",
    )
    parser.add_argument("--name", default="sweep", help="grid name")
    parser.add_argument(
        "--topologies", nargs="+", default=["internet2"],
        help="topology labels (axis)",
    )
    parser.add_argument(
        "--plans", nargs="+", default=["none"],
        choices=sorted(PLAN_AXIS_VALUES),
        help="fault-condition axis: 'none' = scripted scenario,"
        " otherwise a chaos plan",
    )
    parser.add_argument(
        "--dynamics", nargs="+", default=["diurnal"],
        choices=sorted(DYNAMICS_PRESETS),
        help="traffic/adversary dynamics presets (axis)",
    )
    parser.add_argument(
        "--redundancy", nargs="+", type=float, default=[1.0],
        help="redundancy levels r (axis)",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0], help="seed axis"
    )
    parser.add_argument("--epochs", type=int, default=16)
    parser.add_argument(
        "--sessions", type=int, default=300,
        help="base sessions per epoch",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed mixed into every cell's derived seed",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="artifact cache directory",
    )


def cmd_run(args) -> int:
    """Handle ``sweep run``."""
    try:
        spec = _spec_from_args(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = None
    if args.metrics_out:
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
    run = run_sweep(
        spec,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        registry=registry,
        force=args.force,
    )
    report = consolidate(run)
    print(format_summary(run, report))
    print(f"  wall time: {run.duration_seconds:.2f}s")
    if args.report:
        write_report(report, args.report)
        print(f"wrote consolidated report to {args.report}")
    if registry is not None:
        from ..reporting import MetricsSnapshotReport

        fmt = "prom" if args.metrics_out.endswith(".prom") else "json"
        with open(args.metrics_out, "w") as stream:
            MetricsSnapshotReport(registry).write(stream, fmt=fmt)
        print(f"wrote telemetry snapshot ({fmt}) to {args.metrics_out}")
    return 0 if run.ok else 1


def cmd_status(args) -> int:
    """Handle ``sweep status``: cache audit, no execution."""
    try:
        spec = _spec_from_args(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cells = spec.cells()
    cache = ArtifactCache(args.cache_dir)
    hits, missing = cache.partition(cells)
    print(
        f"sweep {spec.name}: {len(cells)} cells,"
        f" {len(hits)} cached, {len(missing)} to run"
        f" (cache: {args.cache_dir})"
    )
    for cell in cells:
        state = "cached" if cell.cell_id in hits else "missing"
        print(f"  {state:>7}  {cell.cell_id}")
    return 0


def cmd_report(args) -> int:
    """Handle ``sweep report``: consolidate from cache only."""
    try:
        spec = _spec_from_args(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cells = spec.cells()
    cache = ArtifactCache(args.cache_dir)
    hits, missing = cache.partition(cells)
    if missing:
        print(
            f"error: {len(missing)} of {len(cells)} cells not cached;"
            " run `repro sweep run` first:",
            file=sys.stderr,
        )
        for cell in missing:
            print(f"  missing  {cell.cell_id}", file=sys.stderr)
        return 1
    results = [CellResult.from_dict(hits[cell.cell_id]) for cell in cells]
    run = SweepRun(
        spec=spec,
        results=results,
        executed=(),
        cached=tuple(sorted(hits)),
        jobs=0,
        violations=[
            (cell.cell_id, violation)
            for cell, result in zip(cells, results)
            for violation in result.violations
        ],
    )
    report = consolidate(run)
    if args.output:
        write_report(report, args.output)
        print(f"wrote consolidated report to {args.output}")
    else:
        from .report import render_report

        print(render_report(report), end="")
    return 0


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``run`` / ``status`` / ``report`` subcommands to *parser*."""
    from ..cli import add_jobs_option

    sub = parser.add_subparsers(dest="sweep_command", required=True)

    run = sub.add_parser(
        "run", help="execute the grid across worker processes"
    )
    _add_spec_options(run)
    add_jobs_option(run)
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache entirely",
    )
    run.add_argument(
        "--force", action="store_true",
        help="re-execute every cell even if cached",
    )
    run.add_argument(
        "--report", help="write the consolidated report (JSON) here"
    )
    run.add_argument(
        "--metrics-out",
        help="enable telemetry and write the snapshot here"
        " (JSON; Prometheus text if the path ends in .prom)",
    )
    run.set_defaults(func=cmd_run)

    status = sub.add_parser(
        "status", help="audit the artifact cache without executing"
    )
    _add_spec_options(status)
    status.set_defaults(func=cmd_status)

    report = sub.add_parser(
        "report", help="consolidate a report purely from cached artifacts"
    )
    _add_spec_options(report)
    report.add_argument(
        "--output", help="write the report here instead of stdout"
    )
    report.set_defaults(func=cmd_report)


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.sweep``."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Sharded scenario sweeps with cached artifacts",
    )
    configure_parser(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
