"""Content-addressed on-disk cache of per-cell sweep artifacts.

A grown evaluation grid should only ever execute its *new* cells: the
cache key is a SHA-256 over the canonical JSON of the cell spec plus
the code-relevant format version, so

* re-running an unchanged grid re-executes nothing (all hits);
* changing any axis value of a cell (its spec) changes the key — the
  stale artifact is simply never addressed again;
* bumping :data:`CACHE_FORMAT_VERSION` (the escape hatch for semantic
  changes in the runner/scoring code that keep cell specs identical)
  invalidates every prior artifact at once.

Layout (``--cache-dir``, default ``.sweep-cache``)::

    <dir>/objects/<key[:2]>/<key>.json   one cell artifact per file

Each artifact file stores the addressed cell spec alongside the
result, so ``repro sweep status``/``report`` can audit the cache
without recomputing anything, and a key collision (practically
impossible) would be detected as a spec mismatch on load.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from .spec import SweepCell

#: Bump when the worker/scoring semantics change in a way that makes
#: previously cached cell results incomparable (e.g. new acceptance
#: rules, changed consolidated-report fields sourced from the cell).
CACHE_FORMAT_VERSION = 2


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, tight separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(cell: SweepCell) -> str:
    """The cell's content address (hex SHA-256)."""
    payload = canonical_json(
        {"format": CACHE_FORMAT_VERSION, "cell": cell.to_dict()}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Store/load per-cell result dicts under their content address."""

    def __init__(self, root: str):
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    def get(self, cell: SweepCell) -> Optional[dict]:
        """The cached result dict for *cell*, or ``None`` on a miss.

        A corrupt or mismatched artifact (truncated write from a
        killed run, or the astronomically unlikely key collision)
        reads as a miss, never as an error — the cell just re-runs.
        """
        path = self._path(cache_key(cell))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError):
            return None
        if artifact.get("cell") != cell.to_dict():
            return None
        return artifact.get("result")

    def put(self, cell: SweepCell, result: dict) -> str:
        """Store *result* for *cell*; returns the content address.

        Writes via a same-directory temp file + atomic rename so a
        crashed run can never leave a half-written artifact that a
        later run would half-trust.
        """
        key = cache_key(cell)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        artifact = {
            "key": key,
            "format": CACHE_FORMAT_VERSION,
            "cell": cell.to_dict(),
            "result": result,
        }
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(artifact, stream, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return key

    def partition(
        self, cells: List[SweepCell]
    ) -> Tuple[Dict[str, dict], List[SweepCell]]:
        """Split *cells* into ``(hits by cell_id, missing cells)``."""
        hits: Dict[str, dict] = {}
        missing: List[SweepCell] = []
        for cell in cells:
            cached = self.get(cell)
            if cached is None:
                missing.append(cell)
            else:
                hits[cell.cell_id] = cached
        return hits, missing
