"""Command-line interface.

Gives operators the paper's workflow without writing Python:

* ``plan-nids`` — plan a coordinated NIDS deployment and emit the
  per-node sampling manifests as JSON;
* ``emulate`` — compare edge-only vs. coordinated deployments on a
  generated trace (``--execution inline|streamed|sharded`` picks the
  execution policy; all three produce bit-identical reports);
* ``solve-nips`` — TCAM-constrained rule placement via the rounding
  pipeline;
* ``microbench`` — the Fig. 5 coordination-overhead table;
* ``online`` — FPL adaptation regret over time;
* ``control run`` — run the controller–agent coordination plane
  through a scripted traffic-shift / failure / recovery scenario;
* ``sweep run`` / ``status`` / ``report`` — execute a declarative
  scenario grid across worker processes with a content-addressed
  artifact cache, and consolidate one deterministic report;
* ``analysis lint`` / ``analysis verify`` — domain static analysis:
  AST lint rules (REP001-REP006) and offline verification of planning
  artifacts against the deployment invariants (REP101-REP108);
* ``figures`` — write per-figure CSV artifacts.

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import List, Optional

from .core.manifest_io import dump_assignment, dump_manifests
from .core.nids_deployment import plan_deployment
from .core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    build_nips_problem,
    solve_relaxation,
)
from .core.online import FPLConfig, run_online_adaptation
from .core.rounding import RoundingVariant, best_of_roundings
from .nids.emulation import Traffic, run_emulation
from .nids.engine import EmulationConfig, ExecutionPolicy
from .nids.microbench import format_microbench_table, run_microbenchmark
from .nids.modules import module_set
from .nips.adversary import UniformProcess
from .nips.rules import MatchRateMatrix, unit_rules
from .topology.datasets import by_label
from .topology.routing import PathSet
from .traffic.generator import GeneratorConfig, TrafficGenerator
from .traffic.profiles import (
    attack_heavy_profile,
    mixed_profile,
    web_heavy_profile,
)

_PROFILES = {
    "mixed": mixed_profile,
    "web-heavy": web_heavy_profile,
    "attack-heavy": attack_heavy_profile,
}


def _build_world(args):
    """Topology + paths + generator + sessions from common arguments."""
    topology = by_label(args.topology).set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology,
        paths,
        profile=_PROFILES[args.profile](),
        config=GeneratorConfig(seed=args.seed),
    )
    sessions = generator.generate(args.sessions)
    return topology, paths, generator, sessions


def cmd_plan_nids(args) -> int:
    """Handle ``plan-nids``: solve the LP and optionally emit manifests."""
    topology, paths, _, sessions = _build_world(args)
    modules = module_set(args.modules)
    units = None
    if args.netflow_sampling is not None:
        # Production path: plan from a (sampled) NetFlow report rather
        # than ground-truth sessions.
        from .measurement import FlowExporter, estimate_units

        report = FlowExporter(
            sampling_rate=args.netflow_sampling, seed=args.seed
        ).measure(sessions)
        units = estimate_units(modules, report, paths)
        print(
            f"planning from NetFlow (1-in-{1 / args.netflow_sampling:.0f}"
            f" sampling): {report.total_flows:,.0f} estimated flows"
        )
    deployment = plan_deployment(
        topology, paths, modules, sessions, coverage=args.coverage, units=units
    )
    assignment = deployment.assignment
    print(
        f"planned {len(modules)}-module deployment on {topology.name}"
        f" ({len(sessions)} sessions, coverage={args.coverage:g})"
    )
    print(
        f"LP: objective={assignment.objective:.6g}"
        f" solve={assignment.solve_seconds:.3f}s"
    )
    print(f"{'node':<8} {'cpu load':>12} {'mem load':>12}")
    for node in topology.node_names:
        print(
            f"{node:<8} {assignment.cpu_load[node]:>12.5g}"
            f" {assignment.mem_load[node]:>12.5g}"
        )
    if args.output:
        text = dump_manifests(deployment.manifests)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(deployment.manifests)} node manifests to {args.output}")
    if args.assignment_output:
        with open(args.assignment_output, "w") as handle:
            handle.write(dump_assignment(assignment))
        print(f"wrote solved assignment to {args.assignment_output}")
    return 0


def cmd_emulate(args) -> int:
    """Handle ``emulate``: edge-only vs. coordinated comparison."""
    topology, paths, generator, sessions = _build_world(args)
    modules = module_set(args.modules)
    deployment = plan_deployment(topology, paths, modules, sessions)
    if args.execution == "sharded":
        policy = ExecutionPolicy.sharded(
            jobs=args.jobs, chunk_size=args.chunk_size
        )
    elif args.execution == "streamed":
        policy = ExecutionPolicy.streamed(chunk_size=args.chunk_size)
    else:
        policy = ExecutionPolicy.inline()
    config = EmulationConfig(policy=policy)
    traffic = Traffic.materialized(generator, sessions)
    edge = run_emulation(traffic, modules, config=config)
    coordinated = run_emulation(traffic, deployment, config=config)
    print(
        f"{len(sessions)} sessions, {len(modules)} modules on"
        f" {topology.name} ({args.execution})"
    )
    print(f"{'deployment':<12} {'max cpu':>14} {'max mem (MB)':>14}")
    print(f"{'edge-only':<12} {edge.max_cpu:>14.0f} {edge.max_mem_mb:>14.1f}")
    print(
        f"{'coordinated':<12} {coordinated.max_cpu:>14.0f}"
        f" {coordinated.max_mem_mb:>14.1f}"
    )
    print(
        f"{'reduction':<12} {1 - coordinated.max_cpu / edge.max_cpu:>13.1%}"
        f" {1 - coordinated.max_mem_mb / edge.max_mem_mb:>13.1%}"
    )
    if args.output:
        import json

        payload = {
            "edge": edge.to_dict(),
            "coordinated": coordinated.to_dict(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote emulation report to {args.output}")
    return 0


def cmd_solve_nips(args) -> int:
    """Handle ``solve-nips``: relaxation bound plus one rounding variant."""
    topology = by_label(args.topology).set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS,
        mem=DEFAULT_MEM_CAP_FLOWS,
        cam=args.cam_fraction * args.rules,
    )
    rules = unit_rules(args.rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(args.seed))
    problem = build_nips_problem(topology, rules, match)
    relaxed = solve_relaxation(problem)
    print(
        f"{args.rules} rules on {topology.name},"
        f" TCAM={args.cam_fraction:.0%} of ruleset"
    )
    print(f"OptLP upper bound: {relaxed.objective:,.0f} ({relaxed.solve_seconds:.1f}s)")
    variant = RoundingVariant(args.variant)
    best = best_of_roundings(
        problem, variant, iterations=args.iterations, seed=args.seed, relaxed=relaxed
    )
    print(
        f"{variant.value}: objective={best.solution.objective:,.0f}"
        f" ({best.fraction_of_lp:.1%} of OptLP)"
    )
    return 0


def cmd_microbench(args) -> int:
    """Handle ``microbench``: print the Fig. 5 overhead table."""
    rows = run_microbenchmark(num_sessions=args.sessions, runs=args.runs)
    print(format_microbench_table(rows))
    return 0


def cmd_online(args) -> int:
    """Handle ``online``: print the FPL regret trajectory."""
    from .experiments.online_adaptation import build_online_problem

    problem = build_online_problem(num_rules=args.rules)
    process = UniformProcess(problem, seed=args.seed)
    config = FPLConfig(
        epochs=args.epochs, perturbation_scale=1e6, seed=args.seed
    )
    result = run_online_adaptation(
        problem, process, config, report_every=max(1, args.epochs // 10)
    )
    print(f"{'epoch':>7} {'normalized regret':>18}")
    for point in result.points:
        print(f"{point.epoch:>7} {point.normalized_regret:>18.4f}")
    return 0


def cmd_control_run(args) -> int:
    """Handle ``control run``: scripted coordination-plane scenario."""
    from .control import ScenarioConfig, run_scenario, standard_scenario

    common = dict(
        topology=args.topology,
        epochs=args.epochs,
        base_sessions=args.sessions,
        profile=args.profile.replace("-", "_"),
        seed=args.seed,
        latency=args.latency,
        jitter=args.jitter,
        loss_rate=args.loss_rate,
        resolve_every=args.resolve_every,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    if args.no_events:
        config = ScenarioConfig(**common)
    else:
        config = standard_scenario(
            shift_epoch=args.shift_epoch,
            fail_epoch=args.fail_epoch,
            recover_epoch=args.recover_epoch,
            fail_node=args.fail_node,
            **common,
        )
    registry = None
    if args.metrics_out:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    try:
        result = run_scenario(config, registry=registry)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"coordination plane on {args.topology}: {config.epochs} epochs,"
        f" ~{config.base_sessions} sessions/epoch,"
        f" bus latency={config.latency:g}s loss={config.loss_rate:g}"
    )
    print(
        f"{'epoch':>5} {'resolved':<10} {'push B':>8} {'full-eq B':>9}"
        f" {'coverage':>8} {'lag':>6}  flags"
    )
    for r in result.records:
        flags = []
        if r.failed_nodes:
            flags.append("failed=" + ",".join(r.failed_nodes))
        if r.in_transition:
            flags.append("transition")
        print(
            f"{r.epoch:>5} {r.resolved or '-':<10} {r.push_bytes:>8}"
            f" {r.full_equivalent_bytes:>9} {r.coverage:>8.4f}"
            f" {r.reconfig_lag:>6.2f}  {' '.join(flags)}"
        )
    for node, detected in sorted(result.detection_epoch.items()):
        redistributed = result.redistribution_epoch.get(node)
        reintegrated = result.reintegration_epoch.get(node)
        print(
            f"{node}: failure detected at epoch {detected},"
            f" ranges redistributed at epoch {redistributed},"
            f" reintegrated at epoch {reintegrated}"
        )
    stats = result.controller_stats
    print(
        f"controller: {stats.resolves} re-solves, {stats.repairs} repairs,"
        f" {stats.pushes_delta} delta + {stats.pushes_full} full pushes,"
        f" {stats.retries} retries;"
        f" {stats.push_bytes:,} B pushed vs {stats.full_equivalent_bytes:,} B"
        f" full-equivalent"
    )
    if args.output:
        from . import reporting

        with open(args.output, "w", newline="") as stream:
            reporting.control_epochs_csv(result.records, stream)
        print(f"wrote per-epoch records to {args.output}")
    if registry is not None:
        from .reporting import MetricsSnapshotReport

        fmt = "prom" if args.metrics_out.endswith(".prom") else "json"
        with open(args.metrics_out, "w") as stream:
            MetricsSnapshotReport(registry).write(stream, fmt=fmt)
        print(f"wrote telemetry snapshot ({fmt}) to {args.metrics_out}")
    violations = result.check_acceptance()
    if violations:
        print("ACCEPTANCE VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("acceptance criteria: all satisfied")
    return 0


def cmd_control_chaos(args) -> int:
    """Handle ``control chaos``: fault injection + invariant monitor."""
    from .control import ChaosConfig, build_plan, run_chaos
    from .topology import by_label

    try:
        topology = by_label(args.topology)
        plan = build_plan(
            args.plan, args.seed, args.epochs, topology.node_names
        )
        config = ChaosConfig(
            plan=plan,
            topology=args.topology,
            epochs=args.epochs,
            base_sessions=args.sessions,
            profile=args.profile.replace("-", "_"),
            seed=args.seed,
            latency=args.latency,
            jitter=args.jitter,
            loss_rate=args.loss_rate,
            lease_ttl=args.lease_ttl,
            reconverge_epochs=args.reconverge_epochs,
            replicas=args.replicas,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = None
    if args.metrics_out:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    result = run_chaos(config, registry=registry)
    print(
        f"chaos plan {plan.name!r} on {args.topology}: {config.epochs}"
        f" epochs, lease TTL {config.lease_ttl:g}s, heal at"
        f" t={plan.heal_time:g}, seed {config.seed}"
    )
    for event in plan.events:
        target = event.node or (
            f"{event.src or '*'}->{event.dst or '*'}"
            if event.kind == "partition"
            else "-"
        )
        print(
            f"  fault {event.kind:<16} [{event.start:>5.2f}, {event.end:>5.2f})"
            f" target={target} rate={event.rate:g} delay={event.delay:g}"
        )
    print(
        f"{'epoch':>5} {'coverage':>8} {'baseline':>8} {'uncov':>5}"
        f" {'degraded':>8} {'fenced':>6}  flags"
    )
    for chaos_record in result.records:
        r = chaos_record.record
        flags = []
        if chaos_record.controller_down:
            flags.append("controller-down")
        if not r.converged:
            flags.append("unconverged")
        if chaos_record.excluded:
            flags.append("transition")
        if r.failed_nodes:
            flags.append("failed=" + ",".join(r.failed_nodes))
        if chaos_record.leader is not None and chaos_record.term > 0:
            flags.append(
                f"leader={chaos_record.leader}@t{chaos_record.term}"
            )
        print(
            f"{r.epoch:>5} {r.coverage:>8.4f} {chaos_record.baseline_pairs:>8}"
            f" {chaos_record.uncovered_pairs:>5}"
            f" {len(chaos_record.degraded_nodes):>8}"
            f" {len(r.fenced_nodes):>6}  {' '.join(flags)}"
        )
    print(
        f"first degraded epoch: {result.first_degraded_epoch};"
        f" reconverged at epoch: {result.reconverged_epoch}"
    )
    if result.ha_summary is not None:
        summary = result.ha_summary
        print(
            f"HA: {len(summary['replicas'])} replicas, leader"
            f" {summary['leader']} at term {summary['term']},"
            f" settled={summary['settled']},"
            f" elections={summary['elections']},"
            f" depositions={summary['depositions']}"
        )
    if registry is not None:
        from .reporting import MetricsSnapshotReport

        fmt = "prom" if args.metrics_out.endswith(".prom") else "json"
        with open(args.metrics_out, "w") as stream:
            MetricsSnapshotReport(registry).write(stream, fmt=fmt)
        print(f"wrote telemetry snapshot ({fmt}) to {args.metrics_out}")
    violations = result.check_acceptance()
    if violations:
        print("INVARIANT VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(
        "invariants held: coverage never below the edge-only baseline,"
        " no stale-epoch manifest outlived its lease, reconvergence"
        " within budget"
    )
    return 0


def cmd_figures(args) -> int:
    """Regenerate figure data as CSV artifacts."""
    import os

    from . import reporting
    from .experiments import (
        fig6_module_scaling,
        fig7_volume_scaling,
        fig8_per_node_profile,
        fig11_online_regret,
    )

    os.makedirs(args.output_dir, exist_ok=True)
    wanted = set(args.only) if args.only else {"fig5", "fig6", "fig7", "fig8", "fig11"}

    def emit(name: str, writer, *writer_args) -> None:
        path = os.path.join(args.output_dir, f"{name}.csv")
        with open(path, "w", newline="") as stream:
            writer(*writer_args, stream)
        print(f"wrote {path}")

    if "fig5" in wanted:
        rows = run_microbenchmark(num_sessions=args.sessions, runs=args.runs)
        emit("fig5_overheads", reporting.microbench_csv, rows)
    if "fig6" in wanted:
        rows = fig6_module_scaling(sessions_total=args.sessions)
        emit("fig6_modules", reporting.comparison_csv, rows, "num_modules")
    if "fig7" in wanted:
        rows = fig7_volume_scaling()
        emit("fig7_volume", reporting.comparison_csv, rows, "num_sessions")
    if "fig8" in wanted:
        profile = fig8_per_node_profile(sessions_total=args.sessions)
        emit("fig8_per_node", reporting.per_node_csv, profile)
    if "fig11" in wanted:
        evaluation = fig11_online_regret(num_runs=args.runs, epochs=args.epochs)
        emit("fig11_regret", reporting.regret_csv, evaluation)
    return 0


def add_jobs_option(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--jobs`` option (worker-process count).

    Defaults to ``os.cpu_count()`` so parallel commands use the whole
    machine unless told otherwise; every subcommand that shards work
    across processes should take its worker count from this helper.
    """
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes (default: CPU count)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network-wide NIDS/NIPS deployment (CoNEXT 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common_world(p):
        p.add_argument("--topology", default="internet2", help="topology label")
        p.add_argument("--sessions", type=int, default=5000)
        p.add_argument("--profile", choices=sorted(_PROFILES), default="mixed")
        p.add_argument("--seed", type=int, default=1)

    plan = sub.add_parser("plan-nids", help="plan a coordinated NIDS deployment")
    common_world(plan)
    plan.add_argument("--modules", type=int, default=8)
    plan.add_argument("--coverage", type=float, default=1.0, help="redundancy level r")
    plan.add_argument(
        "--netflow-sampling",
        type=float,
        default=None,
        help="plan from NetFlow sampled at this rate instead of ground truth",
    )
    plan.add_argument("--output", help="write per-node manifests JSON here")
    plan.add_argument(
        "--assignment-output",
        help="write the solved d* assignment JSON here (enables"
        " `repro analysis verify --assignment`)",
    )
    plan.set_defaults(func=cmd_plan_nids)

    emulate = sub.add_parser("emulate", help="edge-only vs. coordinated emulation")
    common_world(emulate)
    emulate.add_argument("--modules", type=int, default=21)
    emulate.add_argument(
        "--execution",
        choices=["inline", "streamed", "sharded"],
        default="inline",
        help="execution policy (all three are bit-identical)",
    )
    add_jobs_option(emulate)
    emulate.add_argument(
        "--chunk-size",
        type=int,
        default=50_000,
        help="sessions per shard/stream chunk",
    )
    emulate.add_argument(
        "--output",
        help="write the edge/coordinated usage reports as deterministic JSON",
    )
    emulate.set_defaults(func=cmd_emulate)

    nips = sub.add_parser("solve-nips", help="TCAM-constrained rule placement")
    nips.add_argument("--topology", default="internet2")
    nips.add_argument("--rules", type=int, default=100)
    nips.add_argument("--cam-fraction", type=float, default=0.10)
    nips.add_argument(
        "--variant",
        choices=[v.value for v in RoundingVariant],
        default=RoundingVariant.GREEDY_LP.value,
    )
    nips.add_argument("--iterations", type=int, default=5)
    nips.add_argument("--seed", type=int, default=1)
    nips.set_defaults(func=cmd_solve_nips)

    micro = sub.add_parser("microbench", help="Fig. 5 coordination overheads")
    micro.add_argument("--sessions", type=int, default=8000)
    micro.add_argument("--runs", type=int, default=2)
    micro.set_defaults(func=cmd_microbench)

    online = sub.add_parser("online", help="FPL online-adaptation regret")
    online.add_argument("--epochs", type=int, default=100)
    online.add_argument("--rules", type=int, default=6)
    online.add_argument("--seed", type=int, default=1)
    online.set_defaults(func=cmd_online)

    control = sub.add_parser(
        "control", help="coordination-plane (controller-agent) runtime"
    )
    control_sub = control.add_subparsers(dest="control_command", required=True)
    run = control_sub.add_parser(
        "run", help="run a scripted scenario through the coordination plane"
    )
    run.add_argument("--topology", default="internet2", help="topology label")
    run.add_argument("--epochs", type=int, default=16)
    run.add_argument(
        "--sessions", type=int, default=900, help="base sessions per epoch"
    )
    run.add_argument("--profile", choices=sorted(_PROFILES), default="mixed")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--latency", type=float, default=0.05)
    run.add_argument("--jitter", type=float, default=0.02)
    run.add_argument("--loss-rate", type=float, default=0.0)
    run.add_argument("--resolve-every", type=int, default=4)
    run.add_argument("--heartbeat-timeout", type=float, default=2.2)
    run.add_argument("--shift-epoch", type=int, default=5)
    run.add_argument("--fail-epoch", type=int, default=8)
    run.add_argument("--recover-epoch", type=int, default=12)
    run.add_argument("--fail-node", default="NYCM")
    run.add_argument(
        "--no-events",
        action="store_true",
        help="steady-state run without scripted shift/failure/recovery",
    )
    run.add_argument("--output", help="write per-epoch records CSV here")
    run.add_argument(
        "--metrics-out",
        help="enable telemetry and write the snapshot here"
        " (JSON; Prometheus text if the path ends in .prom)",
    )
    run.set_defaults(func=cmd_control_run)

    chaos = control_sub.add_parser(
        "chaos",
        help="inject a seeded fault plan and assert the degradation"
        " invariants per epoch",
    )
    chaos.add_argument(
        "--plan",
        default="controller-outage",
        help="named fault plan (controller-outage, asym-partition,"
        " agent-restart-stale, lossy-burst, leader-crash-mid-push,"
        " leader-partition) or 'random'",
    )
    chaos.add_argument("--topology", default="internet2", help="topology label")
    chaos.add_argument("--epochs", type=int, default=18)
    chaos.add_argument(
        "--sessions", type=int, default=600, help="base sessions per epoch"
    )
    chaos.add_argument("--profile", choices=sorted(_PROFILES), default="mixed")
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="seeds traffic, channel, and fault randomness (and the"
        " schedule itself for --plan random)",
    )
    chaos.add_argument("--latency", type=float, default=0.05)
    chaos.add_argument("--jitter", type=float, default=0.02)
    chaos.add_argument("--loss-rate", type=float, default=0.0)
    chaos.add_argument(
        "--lease-ttl", type=float, default=2.5,
        help="epoch-lease TTL before edge-only fallback (seconds)",
    )
    chaos.add_argument(
        "--reconverge-epochs", type=int, default=4,
        help="epochs allowed between fault heal and a settled plane",
    )
    chaos.add_argument(
        "--replicas", type=int, default=1,
        help="controller replicas (HA standby failover; the"
        " leader-crash-mid-push and leader-partition plans force >= 3)",
    )
    chaos.add_argument(
        "--metrics-out",
        help="enable telemetry and write the snapshot here"
        " (JSON; Prometheus text if the path ends in .prom)",
    )
    chaos.set_defaults(func=cmd_control_chaos)

    from .analysis.cli import configure_parser as configure_analysis

    analysis = sub.add_parser(
        "analysis",
        help="domain static analysis: AST lint + artifact verification",
    )
    configure_analysis(analysis)

    from .sweep.cli import configure_parser as configure_sweep

    sweep = sub.add_parser(
        "sweep",
        help="sharded scenario sweeps with cached artifacts and one"
        " consolidated report",
    )
    configure_sweep(sweep)

    figures = sub.add_parser("figures", help="write figure data as CSV artifacts")
    figures.add_argument("--output-dir", default="figures")
    figures.add_argument(
        "--only",
        nargs="*",
        choices=["fig5", "fig6", "fig7", "fig8", "fig11"],
        help="restrict to specific figures (default: all)",
    )
    figures.add_argument("--sessions", type=int, default=4000)
    figures.add_argument("--runs", type=int, default=2)
    figures.add_argument("--epochs", type=int, default=60)
    figures.set_defaults(func=cmd_figures)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
