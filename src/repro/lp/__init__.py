"""Linear/mixed-integer programming substrate.

A small modeling layer (named variables, operator-built constraints)
compiled to ``scipy.optimize.linprog`` (HiGHS), plus a branch-and-bound
exact solver for the small binary MILPs used as baselines in tests.
"""

from .milp import MILPSolution, solve_milp
from .model import (
    Constraint,
    LinearProgram,
    LinExpr,
    Relation,
    Sense,
    Variable,
    linear_sum,
)
from .solver import LPSolution, SolveStatus, SolverError, solve, solve_or_raise

__all__ = [
    "Constraint",
    "LPSolution",
    "LinExpr",
    "LinearProgram",
    "MILPSolution",
    "Relation",
    "Sense",
    "SolveStatus",
    "SolverError",
    "Variable",
    "linear_sum",
    "solve",
    "solve_milp",
    "solve_or_raise",
]
