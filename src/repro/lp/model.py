"""A small linear-programming modeling layer.

The paper's formulations (the NIDS load-balancing LP of Section 2.2 and
the NIPS MILP of Section 3.2) are written against named variables like
``d[i,k,j]`` and ``e[i,j]``.  This module provides that vocabulary —
variables, linear expressions, and constraints assembled by operator
overloading — and compiles a finished model into the sparse matrix form
consumed by :mod:`repro.lp.solver`.

The paper used CPLEX; we target ``scipy.optimize.linprog`` (HiGHS),
which solves the identical programs to optimality.  Only construction
lives here — solving is the backend's job, keeping the model inspectable
and the backend swappable.

Example
-------
>>> lp = LinearProgram("toy")
>>> x = lp.add_variable("x", ub=4.0)
>>> y = lp.add_variable("y", ub=4.0)
>>> lp.add_constraint(x + y <= 5.0, name="budget")
>>> lp.set_objective(3.0 * x + 2.0 * y, sense=Sense.MAXIMIZE)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Sense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class Relation(enum.Enum):
    """Constraint relation."""

    LE = "<="
    GE = ">="
    EQ = "=="


class LinExpr:
    """An affine expression ``sum(coef * var) + constant``.

    Immutable from the caller's perspective: every operator returns a
    new expression.  Variables are referenced by integer index into the
    owning :class:`LinearProgram`.
    """

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: Optional[Mapping[int, float]] = None, constant: float = 0.0):
        self.coefficients: Dict[int, float] = dict(coefficients or {})
        self.constant = float(constant)

    def copy(self) -> "LinExpr":
        """Shallow copy (fresh coefficient dict)."""
        return LinExpr(self.coefficients, self.constant)

    # -- arithmetic -------------------------------------------------------
    def _added(self, other: Union["LinExpr", "Variable", Number], sign: float) -> "LinExpr":
        result = self.copy()
        if isinstance(other, Variable):
            other = other.as_expr()
        if isinstance(other, LinExpr):
            for index, coef in other.coefficients.items():
                result.coefficients[index] = result.coefficients.get(index, 0.0) + sign * coef
            result.constant += sign * other.constant
        elif isinstance(other, (int, float)):
            result.constant += sign * other
        else:
            return NotImplemented
        return result

    def __add__(self, other):
        return self._added(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._added(other, -1.0)

    def __rsub__(self, other):
        return (-self)._added(other, 1.0)

    def __neg__(self) -> "LinExpr":
        return LinExpr({i: -c for i, c in self.coefficients.items()}, -self.constant)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return LinExpr(
            {i: c * factor for i, c in self.coefficients.items()}, self.constant * factor
        )

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "LinExpr":
        if not isinstance(divisor, (int, float)):
            return NotImplemented
        return self * (1.0 / divisor)

    # -- relations --------------------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, Relation.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, Relation.GE)

    def equals(self, other) -> "Constraint":
        """Build an equality constraint (``==`` is kept for identity)."""
        return Constraint(self - other, Relation.EQ)

    def evaluate(self, values: Sequence[float]) -> float:
        """Value of the expression under a variable assignment."""
        return self.constant + sum(coef * values[index] for index, coef in self.coefficients.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coefficients.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


@dataclass(frozen=True)
class Variable:
    """Handle to a decision variable inside a :class:`LinearProgram`."""

    program: "LinearProgram" = field(repr=False, compare=False)
    index: int
    name: str

    def as_expr(self) -> LinExpr:
        """This variable as a one-term expression."""
        return LinExpr({self.index: 1.0})

    # Delegate arithmetic/relations to LinExpr so formulas read naturally.
    def __add__(self, other):
        return self.as_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.as_expr() - other

    def __rsub__(self, other):
        return other - self.as_expr()

    def __neg__(self):
        return -self.as_expr()

    def __mul__(self, factor):
        return self.as_expr() * factor

    __rmul__ = __mul__

    def __truediv__(self, divisor):
        return self.as_expr() / divisor

    def __le__(self, other):
        return self.as_expr() <= other

    def __ge__(self, other):
        return self.as_expr() >= other

    def equals(self, other):
        return self.as_expr().equals(other)


@dataclass
class Constraint:
    """A normalized constraint ``expr (<=|>=|==) 0``."""

    expression: LinExpr
    relation: Relation
    name: str = ""

    def slack(self, values: Sequence[float]) -> float:
        """Signed slack; non-negative iff the constraint is satisfied.

        ``LE``: slack = -lhs; ``GE``: slack = lhs; ``EQ``: slack =
        -|lhs| (zero exactly at feasibility).
        """
        lhs = self.expression.evaluate(values)
        if self.relation is Relation.LE:
            return -lhs
        if self.relation is Relation.GE:
            return lhs
        return -abs(lhs)


def linear_sum(terms: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into one LinExpr.

    Builds the accumulator in place, so summing the thousands of
    ``d_ikj`` terms in a load constraint stays linear-time.
    """
    total = LinExpr()
    for term in terms:
        if isinstance(term, Variable):
            index = term.index
            total.coefficients[index] = total.coefficients.get(index, 0.0) + 1.0
        elif isinstance(term, LinExpr):
            for index, coef in term.coefficients.items():
                total.coefficients[index] = total.coefficients.get(index, 0.0) + coef
            total.constant += term.constant
        else:
            total.constant += float(term)
    return total


class LinearProgram:
    """A named LP: variables with bounds, constraints, and an objective."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self.variable_names: List[str] = []
        self.lower_bounds: List[float] = []
        self.upper_bounds: List[Optional[float]] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: Sense = Sense.MINIMIZE
        self.binary_indices: List[int] = []
        self._names: Dict[str, int] = {}

    # -- construction -----------------------------------------------------
    def add_variable(
        self,
        name: str,
        lb: float = 0.0,
        ub: Optional[float] = None,
        binary: bool = False,
    ) -> Variable:
        """Add a decision variable and return its handle.

        ``binary=True`` marks the variable integral-in-{0,1}; the pure
        LP backend treats it as ``0 <= x <= 1`` (the LP relaxation) and
        :mod:`repro.lp.milp` enforces integrality by branch and bound.
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        index = len(self.variable_names)
        self.variable_names.append(name)
        if binary:
            lb, ub = 0.0, 1.0
            self.binary_indices.append(index)
        self.lower_bounds.append(float(lb))
        self.upper_bounds.append(None if ub is None else float(ub))
        self._names[name] = index
        return Variable(self, index, name)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression relations."""
        if not isinstance(constraint, Constraint):
            raise TypeError("add_constraint expects a Constraint (use <=, >= or .equals)")
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expression: Union[LinExpr, Variable], sense: Sense) -> None:
        """Set the objective expression and direction."""
        if isinstance(expression, Variable):
            expression = expression.as_expr()
        self.objective = expression
        self.sense = sense

    # -- introspection ----------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return len(self.variable_names)

    @property
    def num_constraints(self) -> int:
        """Number of registered constraints."""
        return len(self.constraints)

    def variable_by_name(self, name: str) -> Variable:
        """Look up a previously added variable."""
        return Variable(self, self._names[name], name)

    def is_feasible(self, values: Sequence[float], tol: float = 1e-6) -> bool:
        """Check a candidate point against bounds and all constraints."""
        if len(values) != self.num_variables:
            return False
        for index, value in enumerate(values):
            if value < self.lower_bounds[index] - tol:
                return False
            upper = self.upper_bounds[index]
            if upper is not None and value > upper + tol:
                return False
        return all(c.slack(values) >= -tol for c in self.constraints)

    def objective_value(self, values: Sequence[float]) -> float:
        """Objective at a candidate point (in the model's own sense)."""
        return self.objective.evaluate(values)

    def compile(self) -> "CompiledLP":
        """Lower the model to sparse matrix form for the solver backend."""
        from scipy.sparse import csr_matrix  # deferred: keep model importable alone

        num_vars = self.num_variables
        cost = [0.0] * num_vars
        for index, coef in self.objective.coefficients.items():
            cost[index] = coef
        sign = 1.0 if self.sense is Sense.MINIMIZE else -1.0
        cost = [sign * c for c in cost]

        ub_rows: List[Tuple[int, int, float]] = []
        ub_rhs: List[float] = []
        ub_names: List[str] = []
        eq_rows: List[Tuple[int, int, float]] = []
        eq_rhs: List[float] = []
        eq_names: List[str] = []
        for constraint in self.constraints:
            expr = constraint.expression
            if constraint.relation is Relation.EQ:
                row = len(eq_rhs)
                for index, coef in expr.coefficients.items():
                    eq_rows.append((row, index, coef))
                eq_rhs.append(-expr.constant)
                eq_names.append(constraint.name)
            else:
                flip = 1.0 if constraint.relation is Relation.LE else -1.0
                row = len(ub_rhs)
                for index, coef in expr.coefficients.items():
                    ub_rows.append((row, index, flip * coef))
                ub_rhs.append(-flip * expr.constant)
                ub_names.append(constraint.name)

        def build(rows: List[Tuple[int, int, float]], count: int):
            if count == 0:
                return None
            data = [entry[2] for entry in rows]
            row_idx = [entry[0] for entry in rows]
            col_idx = [entry[1] for entry in rows]
            return csr_matrix((data, (row_idx, col_idx)), shape=(count, num_vars))

        bounds = list(zip(self.lower_bounds, self.upper_bounds))
        return CompiledLP(
            cost=cost,
            a_ub=build(ub_rows, len(ub_rhs)),
            b_ub=ub_rhs,
            a_eq=build(eq_rows, len(eq_rhs)),
            b_eq=eq_rhs,
            bounds=bounds,
            maximize=self.sense is Sense.MAXIMIZE,
            variable_names=list(self.variable_names),
            ineq_names=ub_names,
            eq_names=eq_names,
        )


@dataclass
class CompiledLP:
    """Sparse matrix form of a :class:`LinearProgram` (solver input)."""

    cost: List[float]
    a_ub: object
    b_ub: List[float]
    a_eq: object
    b_eq: List[float]
    bounds: List[Tuple[float, Optional[float]]]
    maximize: bool
    variable_names: List[str]
    ineq_names: List[str]
    eq_names: List[str]
