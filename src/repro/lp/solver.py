"""LP solver backend over ``scipy.optimize.linprog`` (HiGHS).

The paper solved its linear programs with CPLEX; HiGHS solves the same
programs to optimality, so every downstream quantity (optimal loads,
``d*`` fractions, LP upper bounds for the rounding analysis) is
preserved.  This module is the only place solver specifics live.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List

from scipy.optimize import linprog

from ..obs import COUNT_BUCKETS, get_registry
from .model import LinearProgram, Variable


class SolveStatus(enum.Enum):
    """Normalized solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


class SolverError(RuntimeError):
    """Raised when a solve that must succeed does not."""


@dataclass
class LPSolution:
    """Result of one LP solve.

    ``objective`` is reported in the model's own sense (a maximization
    model reports the maximum), regardless of the internal sign flip
    used to feed ``linprog``.

    ``ineq_duals`` / ``eq_duals`` are the constraint marginals (dual
    values) in the order the model's inequality/equality constraints
    were added — the sensitivity of the objective to relaxing each
    constraint, used by the provisioning analyses.  Signs follow the
    model's own sense.
    """

    status: SolveStatus
    objective: float
    values: List[float]
    variable_names: List[str]
    solve_seconds: float
    message: str = ""
    ineq_duals: List[float] = None  # type: ignore[assignment]
    eq_duals: List[float] = None  # type: ignore[assignment]
    ineq_names: List[str] = None  # type: ignore[assignment]
    eq_names: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.ineq_duals is None:
            self.ineq_duals = []
        if self.eq_duals is None:
            self.eq_duals = []
        if self.ineq_names is None:
            self.ineq_names = []
        if self.eq_names is None:
            self.eq_names = []

    def dual_by_name(self, name: str) -> float:
        """Dual value of the (uniquely) named constraint."""
        if name in self.ineq_names:
            return self.ineq_duals[self.ineq_names.index(name)]
        if name in self.eq_names:
            return self.eq_duals[self.eq_names.index(name)]
        raise KeyError(f"no constraint named {name!r}")

    @property
    def optimal(self) -> bool:
        """Whether the solve reached proven optimality."""
        return self.status is SolveStatus.OPTIMAL

    def value(self, variable: Variable) -> float:
        """Value of *variable* in the solution."""
        return self.values[variable.index]

    def value_by_name(self, name: str) -> float:
        """Value of the variable called *name*."""
        return self.values[self.variable_names.index(name)]

    def as_dict(self) -> Dict[str, float]:
        """Full assignment as ``{name: value}`` (for logs and tests)."""
        return dict(zip(self.variable_names, self.values))


def solve(program: LinearProgram, method: str = "highs") -> LPSolution:
    """Solve *program* and return an :class:`LPSolution`.

    Never raises for infeasible/unbounded models — callers branch on
    ``solution.status``.  Use :func:`solve_or_raise` when the model is
    known-feasible by construction (e.g. the NIDS coverage LP, which
    always admits ``d_ikj = 1/|P_ik|``).
    """
    compiled = program.compile()
    started = time.perf_counter()
    try:
        result = linprog(
            c=compiled.cost,
            A_ub=compiled.a_ub,
            b_ub=compiled.b_ub if compiled.b_ub else None,
            A_eq=compiled.a_eq,
            b_eq=compiled.b_eq if compiled.b_eq else None,
            bounds=compiled.bounds,
            method=method,
        )
    except ValueError as exc:
        elapsed = time.perf_counter() - started
        _record_solve(program, SolveStatus.ERROR, elapsed, None)
        return LPSolution(
            status=SolveStatus.ERROR,
            objective=float("nan"),
            values=[],
            variable_names=compiled.variable_names,
            solve_seconds=elapsed,
            message=str(exc),
        )
    elapsed = time.perf_counter() - started

    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    else:
        status = SolveStatus.ERROR

    objective = float("nan")
    values: List[float] = []
    if result.x is not None:
        values = [float(v) for v in result.x]
        objective = program.objective_value(values)

    # HiGHS reports marginals for the *internal* (sign-flipped for
    # maximization) problem; flip back so duals follow the model sense.
    sign = -1.0 if compiled.maximize else 1.0
    ineq_duals: List[float] = []
    eq_duals: List[float] = []
    ineqlin = getattr(result, "ineqlin", None)
    if ineqlin is not None and getattr(ineqlin, "marginals", None) is not None:
        ineq_duals = [sign * float(v) for v in ineqlin.marginals]
    eqlin = getattr(result, "eqlin", None)
    if eqlin is not None and getattr(eqlin, "marginals", None) is not None:
        eq_duals = [sign * float(v) for v in eqlin.marginals]

    _record_solve(program, status, elapsed, getattr(result, "nit", None))

    return LPSolution(
        status=status,
        objective=objective,
        values=values,
        variable_names=compiled.variable_names,
        solve_seconds=elapsed,
        message=getattr(result, "message", ""),
        ineq_duals=ineq_duals,
        eq_duals=eq_duals,
        ineq_names=compiled.ineq_names,
        eq_names=compiled.eq_names,
    )


def _record_solve(
    program: LinearProgram, status: SolveStatus, elapsed: float, nit
) -> None:
    """Record one solve into the ambient telemetry registry.

    This backend is the single funnel every LP in the system flows
    through (NIDS assignment, NIPS relaxation/rounding, MILP node
    relaxations), so recording here gives the unified snapshot its
    solver section without threading a registry down the call chain.
    A no-op under the default null registry.
    """
    registry = get_registry()
    registry.counter(
        "lp_solves_total",
        "LP solves by backend outcome",
        labels=("status",),
    ).inc(status=status.value)
    registry.histogram(
        "lp_solve_seconds", "wall-clock seconds per LP solve"
    ).observe(elapsed)
    registry.histogram(
        "lp_variables", "decision variables per solved program",
        buckets=COUNT_BUCKETS,
    ).observe(program.num_variables)
    if nit is not None:
        registry.histogram(
            "lp_iterations", "simplex/IPM iterations per solve",
            buckets=COUNT_BUCKETS,
        ).observe(float(nit))


def solve_or_raise(program: LinearProgram, method: str = "highs") -> LPSolution:
    """Solve *program*, raising :class:`SolverError` unless optimal."""
    solution = solve(program, method=method)
    if not solution.optimal:
        raise SolverError(
            f"LP {program.name!r} not solved to optimality: "
            f"{solution.status.value} ({solution.message})"
        )
    return solution
