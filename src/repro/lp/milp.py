"""Branch-and-bound for binary MILPs.

The NIPS deployment problem (Section 3.2) is a mixed integer-linear
program whose only integral variables are the binary rule-enablement
indicators ``e_ij``.  The paper proves the problem NP-hard and attacks
it with randomized rounding; to *evaluate* that rounding we still want
exact optima on small instances (our tests compare the rounded solution
to both the true integer optimum and the LP upper bound).

This module implements a plain best-bound branch-and-bound over the
binary variables of a :class:`~repro.lp.model.LinearProgram`, solving
LP relaxations with the HiGHS backend at each node.  It is intended for
instances with tens of binaries — exactly the scale of the test
fixtures — and exposes a node budget so callers degrade gracefully.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs import COUNT_BUCKETS, get_registry
from .model import LinearProgram, Sense
from .solver import LPSolution, SolveStatus, solve

_INTEGRALITY_TOL = 1e-6


@dataclass
class MILPSolution:
    """Result of a branch-and-bound run.

    ``proved_optimal`` is False when the node budget was exhausted
    before the tree closed; ``objective``/``values`` then hold the best
    incumbent found (if any).
    """

    status: SolveStatus
    objective: float
    values: List[float]
    variable_names: List[str]
    nodes_explored: int
    proved_optimal: bool
    best_bound: float

    @property
    def feasible(self) -> bool:
        """Whether an integral incumbent was found."""
        return self.status is SolveStatus.OPTIMAL

    def value_by_name(self, name: str) -> float:
        """Value of the variable called *name* in the incumbent."""
        return self.values[self.variable_names.index(name)]


def _relaxation_with_fixings(
    program: LinearProgram, fixings: Dict[int, int]
) -> Tuple[List[float], List[Optional[float]]]:
    """Bounds arrays for the LP relaxation under binary *fixings*."""
    lower = list(program.lower_bounds)
    upper = list(program.upper_bounds)
    for index, value in fixings.items():
        lower[index] = float(value)
        upper[index] = float(value)
    return lower, upper


def _solve_relaxation(program: LinearProgram, fixings: Dict[int, int]) -> LPSolution:
    """Solve the LP relaxation with *fixings* applied, non-destructively."""
    saved_lower = program.lower_bounds
    saved_upper = program.upper_bounds
    lower, upper = _relaxation_with_fixings(program, fixings)
    program.lower_bounds = lower
    program.upper_bounds = upper
    try:
        return solve(program)
    finally:
        program.lower_bounds = saved_lower
        program.upper_bounds = saved_upper


def _most_fractional(values: List[float], binaries: List[int]) -> Optional[int]:
    """Index of the binary variable farthest from integrality, if any."""
    best_index = None
    best_distance = _INTEGRALITY_TOL
    for index in binaries:
        distance = abs(values[index] - round(values[index]))
        if distance > best_distance:
            best_distance = distance
            best_index = index
    return best_index


def solve_milp(program: LinearProgram, max_nodes: int = 5000) -> MILPSolution:
    """Solve *program* exactly over its binary variables.

    Best-bound search: nodes are popped in order of their relaxation
    bound, so the first incumbent that matches the frontier bound is
    provably optimal.  Fractional (continuous) variables are left to
    the LP at every node.
    """
    started = time.perf_counter()
    solution = _solve_milp(program, max_nodes)
    registry = get_registry()
    registry.counter(
        "milp_solves_total", "branch-and-bound runs by outcome",
        labels=("status",),
    ).inc(status=solution.status.value)
    registry.histogram(
        "milp_solve_seconds", "wall-clock seconds per branch-and-bound run"
    ).observe(time.perf_counter() - started)
    registry.histogram(
        "milp_nodes_explored", "search-tree nodes per branch-and-bound run",
        buckets=COUNT_BUCKETS,
    ).observe(solution.nodes_explored)
    return solution


def _solve_milp(program: LinearProgram, max_nodes: int) -> MILPSolution:
    maximize = program.sense is Sense.MAXIMIZE
    sign = -1.0 if maximize else 1.0  # heap orders by sign * bound (min-heap)
    counter = itertools.count()

    root = _solve_relaxation(program, {})
    if root.status is not SolveStatus.OPTIMAL:
        return MILPSolution(
            status=root.status,
            objective=float("nan"),
            values=[],
            variable_names=list(program.variable_names),
            nodes_explored=1,
            proved_optimal=False,
            best_bound=float("nan"),
        )

    heap: List[Tuple[float, int, Dict[int, int], LPSolution]] = [
        (sign * root.objective, next(counter), {}, root)
    ]
    incumbent: Optional[LPSolution] = None
    incumbent_objective = float("-inf") if maximize else float("inf")
    nodes = 1
    best_bound = root.objective

    def better(candidate: float) -> bool:
        if maximize:
            return candidate > incumbent_objective + _INTEGRALITY_TOL
        return candidate < incumbent_objective - _INTEGRALITY_TOL

    tree_closed = False
    while heap:
        if nodes >= max_nodes:
            break
        keyed_bound, _, fixings, relaxed = heapq.heappop(heap)
        best_bound = keyed_bound * sign  # key = sign * bound, sign in {+1, -1}
        if incumbent is not None and not better(best_bound):
            tree_closed = True  # frontier can no longer improve on the incumbent
            break

        branch_index = _most_fractional(relaxed.values, program.binary_indices)
        if branch_index is None:
            if better(relaxed.objective):
                incumbent = relaxed
                incumbent_objective = relaxed.objective
            continue

        for branch_value in (0, 1):
            child_fixings = dict(fixings)
            child_fixings[branch_index] = branch_value
            child = _solve_relaxation(program, child_fixings)
            nodes += 1
            if child.status is not SolveStatus.OPTIMAL:
                continue
            if incumbent is not None and not better(child.objective):
                continue
            heapq.heappush(
                heap, (sign * child.objective, next(counter), child_fixings, child)
            )

    proved = incumbent is not None and (tree_closed or not heap)
    if incumbent is None:
        return MILPSolution(
            status=SolveStatus.INFEASIBLE,
            objective=float("nan"),
            values=[],
            variable_names=list(program.variable_names),
            nodes_explored=nodes,
            proved_optimal=False,
            best_bound=best_bound,
        )
    return MILPSolution(
        status=SolveStatus.OPTIMAL,
        objective=incumbent.objective,
        values=list(incumbent.values),
        variable_names=list(program.variable_names),
        nodes_explored=nodes,
        proved_optimal=proved,
        best_bound=best_bound,
    )
