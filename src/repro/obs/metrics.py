"""Dependency-free runtime metrics primitives.

The paper's evaluation (Figs. 5-8) is fundamentally about *measuring*
a sensor fleet — per-node CPU/memory load, per-module overheads, and
coordination cost — yet a deployed system needs those quantities at
runtime, not from post-hoc CSV dumps.  This module provides the
minimal metric vocabulary a network-wide NIDS deployment needs:

* :class:`Counter` — monotonically increasing totals (sessions
  dispatched, bytes pushed, bus drops);
* :class:`Gauge` — point-in-time values (config version, convergence);
* :class:`Histogram` — fixed-bucket distributions (LP solve seconds,
  epoch convergence latency) with exact ``sum``/``count`` so means are
  recoverable;
* :class:`MetricsRegistry` — the namespace that owns them, plus
  :meth:`~MetricsRegistry.timer`/:meth:`~MetricsRegistry.span` context
  managers for phase timing.

All metrics support a fixed set of label names declared at creation
(e.g. ``labels=("node",)``), mirroring the Prometheus data model so
the text exposition in :mod:`repro.obs.export` is lossless.

:class:`NullRegistry` is the no-op twin used as the default everywhere
a registry can be passed: hot paths call it unconditionally and the
cost is one no-op method call per *batch* (never per session), keeping
instrumented-but-disabled throughput within noise of uninstrumented.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]

#: Default histogram buckets (seconds): spans sub-millisecond hash
#: batches through multi-second paper-scale LP solves.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Buckets for discrete size/iteration distributions.
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000,
)


class Metric:
    """Base class: a named family of labelled time series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        _validate_name(name)
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if len(labels) != len(self.label_names) or any(
            name not in labels for name in self.label_names
        ):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names},"
                f" got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def label_dict(self, key: LabelKey) -> Dict[str, str]:
        """Reattach label names to a stored label-value key."""
        return dict(zip(self.label_names, key))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


class Counter(Metric):
    """A monotonically increasing total per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add *amount* (>= 0) to the series selected by *labels*."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current total for the series (0.0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._values.values())

    def series(self) -> Iterator[Tuple[Dict[str, str], float]]:
        """All (labels, value) pairs, in insertion order."""
        for key, value in self._values.items():
            yield self.label_dict(key), value


class Gauge(Metric):
    """A point-in-time value per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the series to *value*."""
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the series by *amount* (may be negative)."""
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the series by ``-amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value for the series (0.0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[Tuple[Dict[str, str], float]]:
        """All (labels, value) pairs, in insertion order."""
        for key, value in self._values.items():
            yield self.label_dict(key), value


class _HistogramSeries:
    """Per-label-combination histogram state."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        #: Per-bucket (non-cumulative) counts; the last slot is +Inf.
        self.bucket_counts: List[int] = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket distribution with exact sum and count.

    *buckets* are finite, strictly increasing upper bounds; an implicit
    ``+Inf`` bucket catches the tail.  Counts are stored per bucket
    (not cumulative); the Prometheus exporter accumulates on the way
    out.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ) or not all(math.isfinite(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be finite and strictly"
                f" increasing, got {bounds}"
            )
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        series = self._get(self._key(labels))
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: object) -> int:
        """Number of observations for the series."""
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations for the series."""
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def mean(self, **labels: object) -> float:
        """Mean observation (0.0 with no observations)."""
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return 0.0
        return series.sum / series.count

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket counts (last entry is the +Inf tail)."""
        series = self._series.get(self._key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series.bucket_counts)

    def merge_series(
        self,
        labels: Mapping[str, object],
        bucket_counts: Sequence[int],
        total: float,
        count: int,
    ) -> None:
        """Fold one exported series into this histogram.

        *bucket_counts* must match this histogram's bucket layout
        (``len(buckets) + 1`` non-cumulative counts, +Inf last) — the
        caller (:meth:`MetricsRegistry.merge_from`) verifies bucket
        bounds agree before dispatching here.
        """
        if len(bucket_counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r} has {len(self.buckets) + 1}"
                f" buckets, snapshot series has {len(bucket_counts)}"
            )
        series = self._get(self._key(labels))
        for index, bucket_count in enumerate(bucket_counts):
            series.bucket_counts[index] += int(bucket_count)
        # repnoqa: REP203 -- merge_from feeds series in sorted-name
        # order and shard snapshots merge in shard-id order, so this
        # float addition happens in one fixed order for any worker
        # count; an ExactSum here would change the snapshot schema.
        series.sum += float(total)  # repnoqa: REP203
        series.count += int(count)

    def cumulative_buckets(self, **labels: object) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs incl. +Inf."""
        counts = self.bucket_counts(**labels)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out

    def series(self) -> Iterator[Tuple[Dict[str, str], _HistogramSeries]]:
        """All (labels, state) pairs, in insertion order."""
        for key, series in self._series.items():
            yield self.label_dict(key), series


class Span:
    """Handle yielded by :meth:`MetricsRegistry.span`/``timer``."""

    __slots__ = ("name", "started", "elapsed")

    def __init__(self, name: str):
        self.name = name
        self.started = time.perf_counter()
        self.elapsed: Optional[float] = None

    def stop(self) -> float:
        """Freeze and return the elapsed seconds."""
        if self.elapsed is None:
            self.elapsed = time.perf_counter() - self.started
        return self.elapsed


class MetricsRegistry:
    """Owns a namespace of metrics; the unit of snapshot/export.

    ``counter``/``gauge``/``histogram`` are create-or-get: the first
    call fixes the help text, label names, and (for histograms) the
    buckets; later calls with a conflicting declaration raise, so two
    call sites cannot silently fork one name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- declaration ------------------------------------------------------
    def _declare(self, cls, name: str, help: str, label_names, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, label_names=label_names, **kwargs)
            self._metrics[name] = metric
            return metric
        if type(metric) is not cls or metric.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already declared as {metric.kind}"
                f" with labels {metric.label_names}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        """Create-or-get the counter called *name*."""
        return self._declare(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Create-or-get the gauge called *name*."""
        return self._declare(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Create-or-get the histogram called *name*."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help=help, label_names=labels, buckets=buckets)
            self._metrics[name] = metric
        elif type(metric) is not Histogram or metric.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already declared as {metric.kind}"
                f" with labels {metric.label_names}"
            )
        return metric  # type: ignore[return-value]

    # -- phase timing -----------------------------------------------------
    @contextmanager
    def timer(self, name: str, help: str = "", **labels: object):
        """Time a block into the histogram called *name* (seconds)."""
        histogram = self.histogram(name, help=help, labels=tuple(sorted(labels)))
        span = Span(name)
        try:
            yield span
        finally:
            histogram.observe(span.stop(), **labels)

    @contextmanager
    def span(self, name: str, help: str = "", **labels: object):
        """Instrumented phase: ``<name>_seconds`` histogram plus a
        ``<name>_total`` completion counter."""
        label_names = tuple(sorted(labels))
        histogram = self.histogram(f"{name}_seconds", help=help, labels=label_names)
        counter = self.counter(f"{name}_total", help=help, labels=label_names)
        span = Span(name)
        try:
            yield span
        finally:
            histogram.observe(span.stop(), **labels)
            counter.inc(**labels)

    # -- cross-process merge ----------------------------------------------
    def merge_from(self, snapshot: Mapping) -> None:
        """Fold a registry *snapshot* (see :func:`repro.obs.snapshot`)
        into this registry, deterministically.

        The merge semantics per metric kind:

        * **counter** — snapshot totals are *added* per series (the
          natural fold for shared-nothing workers: each worker counted
          disjoint work);
        * **gauge** — the snapshot value *overwrites* the series
          (last-merge-wins; callers wanting a deterministic outcome
          merge snapshots in a fixed order, e.g. sweep-cell order);
        * **histogram** — per-bucket counts, ``sum``, and ``count`` are
          added per series; the snapshot's bucket bounds must match the
          local declaration exactly.

        Families absent locally are created from the snapshot's
        declaration (help text, label names, buckets); families already
        declared must agree on kind and label names or the merge
        raises, mirroring the create-or-get contract.
        """
        if not self.enabled:
            return
        version = snapshot.get("version")
        if version != 1:
            raise ValueError(f"unsupported snapshot version {version!r}")
        for name in sorted(snapshot["metrics"]):
            entry = snapshot["metrics"][name]
            kind = entry["type"]
            label_names = tuple(entry.get("labels", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                counter = self.counter(name, help_text, labels=label_names)
                for series in entry["series"]:
                    counter.inc(float(series["value"]), **series["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, help_text, labels=label_names)
                for series in entry["series"]:
                    gauge.set(float(series["value"]), **series["labels"])
            elif kind == "histogram":
                buckets = tuple(float(b) for b in entry["buckets"])
                histogram = self.histogram(
                    name, help_text, labels=label_names, buckets=buckets
                )
                if histogram.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r} declared with buckets"
                        f" {histogram.buckets}, snapshot has {buckets}"
                    )
                for series in entry["series"]:
                    histogram.merge_series(
                        series["labels"],
                        series["bucket_counts"],
                        series["sum"],
                        series["count"],
                    )
            else:
                raise ValueError(
                    f"snapshot metric {name!r} has unknown type {kind!r}"
                )

    # -- introspection ----------------------------------------------------
    def metrics(self) -> List[Metric]:
        """All declared metrics, in declaration order."""
        return list(self._metrics.values())

    def get(self, name: str) -> Optional[Metric]:
        """The metric called *name*, or ``None``."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    @property
    def enabled(self) -> bool:
        """Whether recordings are retained (``False`` on the null twin)."""
        return True

    def snapshot(self) -> dict:
        """JSON-compatible snapshot of every metric (see repro.obs.export)."""
        from .export import snapshot

        return snapshot(self)


class _NullMetric:
    """Absorbs every mutation; answers every read with zero."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def mean(self, **labels: object) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The do-nothing registry used as the default everywhere.

    Every declaration returns one shared absorbing metric; nothing is
    ever stored, so a hot path wired for telemetry pays only a no-op
    method call per recording site when telemetry is off.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS):
        return _NULL_METRIC  # type: ignore[return-value]

    @contextmanager
    def timer(self, name: str, help: str = "", **labels: object):
        span = Span(name)
        try:
            yield span
        finally:
            span.stop()

    span = timer

    def metrics(self) -> List[Metric]:
        return []

    @property
    def enabled(self) -> bool:
        return False


#: Shared no-op registry; safe as a default argument because it holds
#: no state.
NULL_REGISTRY = NullRegistry()
