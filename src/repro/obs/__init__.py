"""repro.obs — lightweight, dependency-free telemetry.

The runtime metrics and tracing layer for the network-wide deployment:
counters, gauges, and fixed-bucket histograms in a
:class:`MetricsRegistry`, ``span()``/``timer()`` phase timing, and
JSON / CSV / Prometheus-text exporters.  Everything a hot path touches
defaults to :data:`NULL_REGISTRY`, whose recordings are free no-ops,
so instrumentation costs nothing until a caller opts in.

Two ways to wire a registry in:

* **explicitly** — ``run_emulation(..., registry=reg)``,
  ``run_scenario(config, registry=reg)``, ``Controller(...,
  registry=reg)``: the component records into the registry you hand
  it;
* **ambiently** — ``with use_registry(reg): ...``: deep call sites
  that no parameter reaches (the LP solver backend, manifest
  generation) record into the ambient registry, which defaults to the
  null registry.

Quickstart::

    from repro.obs import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        usage = run_emulation(Traffic.materialized(generator, sessions),
                              deployment, registry=registry)
    print(json.dumps(registry.snapshot(), indent=2))

See ``docs/observability.md`` for the metric catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .export import (
    CSV_HEADER,
    csv_rows,
    parse_prometheus,
    snapshot,
    to_prometheus,
    write_csv,
    write_json,
    write_prometheus,
)
from .metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Span,
)

#: The ambient registry used by call sites too deep to parameterize
#: (LP solver backend, manifest generation).  Null by default.
_ambient: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The current ambient registry (the null registry by default)."""
    # repnoqa: REP204 -- per-process ambient default; each spawned
    # worker installs its own registry (run_scenario(registry=...)),
    # nothing is shared or merged across the process boundary.
    return _ambient  # repnoqa: REP204


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install *registry* as ambient; returns the previous one.

    ``None`` restores the null registry.
    """
    global _ambient
    previous = _ambient  # repnoqa: REP204 -- see get_registry
    _ambient = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scoped ambient registry: installed on entry, restored on exit."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)


__all__ = [
    "COUNT_BUCKETS",
    "CSV_HEADER",
    "Counter",
    "csv_rows",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "get_registry",
    "parse_prometheus",
    "set_registry",
    "snapshot",
    "to_prometheus",
    "use_registry",
    "write_csv",
    "write_json",
    "write_prometheus",
]
