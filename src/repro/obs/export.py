"""Snapshot and wire formats for a :class:`~repro.obs.MetricsRegistry`.

Three formats, chosen for the three consumers a sensor-fleet
deployment actually has:

* **JSON snapshot** — the unified artifact ``repro control run
  --metrics-out`` writes; nested, self-describing, diffable;
* **CSV** — one row per (metric, series, field) so the snapshot can
  ride the same tooling as the figure artifacts in
  :mod:`repro.reporting`;
* **Prometheus text exposition** — scrape-ready; cumulative ``le``
  buckets, ``_sum``/``_count`` series, HELP/TYPE comments.
  :func:`parse_prometheus` reads the format back (samples only) so the
  round trip is testable without a Prometheus server.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Dict, List, Mapping, TextIO, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry


def _format_value(value: float) -> str:
    """Shortest exact decimal form (Prometheus-compatible)."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# -- JSON snapshot --------------------------------------------------------
def snapshot(registry: MetricsRegistry) -> dict:
    """JSON-compatible dict of every metric's current state."""
    metrics: Dict[str, dict] = {}
    for metric in registry.metrics():
        entry: dict = {
            "type": metric.kind,
            "help": metric.help,
            "labels": list(metric.label_names),
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
            entry["series"] = [
                {
                    "labels": labels,
                    "count": series.count,
                    "sum": series.sum,
                    "bucket_counts": list(series.bucket_counts),
                }
                for labels, series in metric.series()
            ]
        else:
            entry["series"] = [
                {"labels": labels, "value": value}
                for labels, value in metric.series()
            ]
        metrics[metric.name] = entry
    return {"version": 1, "metrics": metrics}


def write_json(registry: MetricsRegistry, stream: TextIO, indent: int = 2) -> None:
    """Write the JSON snapshot to *stream*."""
    json.dump(snapshot(registry), stream, indent=indent, sort_keys=True)
    stream.write("\n")


# -- CSV ------------------------------------------------------------------
#: Column names of the flat CSV form (one row per metric/series/field).
CSV_HEADER = ("metric", "type", "labels", "field", "value")


def _labels_cell(labels: Mapping[str, str]) -> str:
    return ";".join(f"{k}={v}" for k, v in labels.items())


def csv_rows(registry: MetricsRegistry):
    """Yield the flat CSV rows (see :data:`CSV_HEADER`) for *registry*.

    Histogram series expand to ``count``, ``sum``, and cumulative
    ``bucket_le_X`` field rows, matching the Prometheus ``le``
    semantics.
    """
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            for labels, series in metric.series():
                cell = _labels_cell(labels)
                yield (metric.name, metric.kind, cell, "count", series.count)
                yield (metric.name, metric.kind, cell, "sum", series.sum)
                running = 0
                for bound, count in zip(
                    list(metric.buckets) + [math.inf], series.bucket_counts
                ):
                    running += count
                    yield (
                        metric.name,
                        metric.kind,
                        cell,
                        f"bucket_le_{_format_value(bound)}",
                        running,
                    )
        else:
            for labels, value in metric.series():
                yield (metric.name, metric.kind, _labels_cell(labels), "value", value)


def write_csv(registry: MetricsRegistry, stream: TextIO) -> None:
    """One row per (metric, series, field): flat, join-friendly."""
    writer = csv.writer(stream)
    writer.writerow(CSV_HEADER)
    for row in csv_rows(registry):
        writer.writerow(row)


# -- Prometheus text exposition -------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.series():
                lines.append(_sample(metric.name, labels, value))
        elif isinstance(metric, Histogram):
            for labels, series in metric.series():
                running = 0
                for bound, count in zip(
                    list(metric.buckets) + [math.inf], series.bucket_counts
                ):
                    running += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        _sample(f"{metric.name}_bucket", bucket_labels, running)
                    )
                lines.append(_sample(f"{metric.name}_sum", labels, series.sum))
                lines.append(_sample(f"{metric.name}_count", labels, series.count))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, stream: TextIO) -> None:
    """Write the Prometheus text exposition to *stream*."""
    stream.write(to_prometheus(registry))


Sample = Tuple[Tuple[Tuple[str, str], ...], float]


def parse_prometheus(text: str) -> Dict[str, List[Sample]]:
    """Parse exposition-format samples back into ``{name: [(labels, value)]}``.

    Minimal on purpose: sample lines and comments only — enough to
    verify that :func:`to_prometheus` is lossless for counters, gauges,
    and histogram bucket/sum/count series.
    """
    samples: Dict[str, List[Sample]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            body, tail = rest.rsplit("}", 1)
            labels: List[Tuple[str, str]] = []
            for item in _split_labels(body):
                key, value = item.split("=", 1)
                labels.append((key, _unescape_label(value.strip('"'))))
            value_text = tail.strip()
        else:
            name, value_text = line.split(None, 1)
            labels = []
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.setdefault(name, []).append((tuple(sorted(labels)), value))
    return samples


def _split_labels(body: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return [item.strip() for item in items if item.strip()]


def _unescape_label(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )
