"""The operations-center controller (paper §2.2 "operations center",
§5 dynamics).

"A centralized operations center periodically configures the NIDS
responsibilities of the different nodes."  The :class:`Controller`
closes that loop at runtime:

1. **Ingest** — per-agent NetFlow reports and heartbeats arrive over
   the (lossy) management bus; the latest report per ingress is cached
   so a silent node's traffic is still planned from its last word.
2. **Decide** — each epoch the controller re-plans when (a) it has
   never planned ("bootstrap"), (b) a failed node recovered
   ("recovery": full LP re-solve reintegrating it), (c) heartbeats
   timed out ("failure": *targeted* redistribution of just the dead
   node's hash ranges — see :mod:`repro.control.failure`), (d) the
   measured traffic drifted materially ("drift"), or (e) a periodic
   refresh is due ("periodic").
3. **Distribute** — new manifests are stabilized against the previous
   epoch (sub-tolerance churn suppressed per unit), statically
   verified by a fail-closed gate (:mod:`repro.analysis.verify`; a
   rejected configuration is counted and the previous one stays
   active), then pushed to
   each agent as an epoch-versioned **delta** against the manifest
   that agent last acknowledged — falling back to a full manifest when
   the delta would be larger, when the agent requests a resync, or on
   cold start.  Unacknowledged pushes are retried; per-agent
   acknowledged state makes every push idempotent.

Re-solving uses the same LP as offline planning; a custom ``solve_fn``
(e.g. an FPL-style adapter from :mod:`repro.core.online` for
adversarially shifting inputs) can be plugged in.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.verify import (
    VerificationReport,
    check_on_path,
    verify_deployment,
)
from ..core.dispatch import UnitResolver
from ..core.manifest import generate_manifests, NodeManifest
from ..core.manifest_io import delta_is_empty, manifest_diff, manifest_to_dict
from ..core.nids_deployment import NIDSDeployment
from ..core.nids_lp import NIDSAssignment, solve_nids_lp
from ..core.reconfigure import conservative_units, plan_transition
from ..core.units import CoordinationUnit
from ..hashing.ranges import HashRange
from ..measurement.estimation import EstimationModel, estimate_units
from ..measurement.flows import TrafficReport
from ..nids.modules.base import ModuleSpec
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..topology.graph import Topology
from ..topology.routing import PathSet
from .protocol import (
    KIND_ACK,
    KIND_HEARTBEAT,
    KIND_LEASE_RENEW,
    KIND_MANIFEST_UPDATE,
    KIND_NACK,
    KIND_REPORT,
    KIND_RESYNC_REQUEST,
)
from .bus import Bus
from .epochs import (
    EpochRecord,
    Ident,
    merge_reports,
    stabilize_manifests,
)
from .failure import HeartbeatMonitor, RepairResult, repair_manifests

SolveFn = Callable[[Sequence[CoordinationUnit], Topology, float], NIDSAssignment]

#: Nominal wire size of a lease-renewal message.
LEASE_BYTES = 48

#: How many superseded pushes per node are remembered as potential
#: delta bases for late acks.
PUSH_HISTORY_LIMIT = 8


@dataclass
class ControllerConfig:
    """Operations-center tunables (times in seconds)."""

    name: str = "controller"
    epoch_duration: float = 1.0
    #: Silence after which a node is declared failed (> 2 heartbeat
    #: intervals so a single lost heartbeat is not a false positive).
    heartbeat_timeout: float = 2.2
    #: Base delay before resending an unacknowledged push (the first
    #: retry).  Below half an epoch so both controller beats (decision
    #: at ``t+0.25``, ack collection at ``t+0.75``) can retry a lost
    #: push — the two-beat schedule is preserved because the first
    #: retry is never jittered.
    retry_backoff: float = 0.45
    #: Ceiling on the exponential retry delay.
    retry_backoff_cap: float = 3.6
    #: Fractional jitter applied (downward) from the second retry on,
    #: de-synchronizing retry storms across agents after an outage.
    retry_jitter: float = 0.25
    #: Seed for the retry-jitter RNG (REP002: no unseeded randomness).
    retry_seed: int = 0
    #: Epoch-lease TTL handed to agents; ``None`` disables leases (the
    #: pre-hardening behaviour).  Must exceed the epoch duration so a
    #: healthy controller renews well before expiry.
    lease_ttl: Optional[float] = None
    #: Relative L1 drift of per-class volumes that triggers a re-solve.
    drift_threshold: float = 0.2
    #: Re-solve at least every this many epochs regardless of drift
    #: (the paper's periodic reconfiguration); 0 disables.
    resolve_every: int = 4
    #: Per-unit churn suppression tolerance (hash-range endpoints).
    stabilize_tolerance: float = 0.02
    #: Headroom factor for conservative planning (§5; 1.0 = plan on
    #: the measured volumes directly).
    headroom: float = 1.0
    #: Redundancy level r passed to the LP.
    coverage: float = 1.0
    #: Prefer deltas over full pushes when strictly smaller.
    use_delta: bool = True
    estimation: EstimationModel = field(default_factory=EstimationModel)


@dataclass
class PushState:
    """One outstanding (or acknowledged) manifest push to one agent."""

    version: int
    mode: str  # "full" | "delta"
    payload: dict
    size_bytes: int
    full_bytes: int
    #: The manifest the agent holds after applying this push.
    manifest: NodeManifest
    first_sent: float
    last_sent: float
    acked_at: Optional[float] = None
    #: Retransmissions so far (0 = only the initial send).
    attempts: int = 0
    #: Absolute time after which the next retransmission is due.
    next_retry_at: float = 0.0


@dataclass
class ControllerStats:
    """Cumulative controller counters."""

    resolves: int = 0
    repairs: int = 0
    #: Configurations refused by the pre-distribution static verifier.
    rejections: int = 0
    pushes_full: int = 0
    pushes_delta: int = 0
    retries: int = 0
    push_bytes: int = 0
    full_equivalent_bytes: int = 0
    #: Live nodes fenced after self-reporting edge-only degradation.
    fences: int = 0
    #: Acks for superseded epochs still credited as delta bases.
    superseded_acks: int = 0

    def to_dict(self) -> dict:
        """JSON-compatible dict of the cumulative counters."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerStats":
        """Rebuild stats from :meth:`to_dict` output."""
        return cls(**data)


def _json_size(payload: dict) -> int:
    return len(json.dumps(payload, sort_keys=True))


class Controller:
    """Epoch-clocked operations center over a simulated bus."""

    def __init__(
        self,
        topology: Topology,
        paths: PathSet,
        modules: Sequence[ModuleSpec],
        bus: Bus,
        config: Optional[ControllerConfig] = None,
        solve_fn: Optional[SolveFn] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.topology = topology
        self.paths = paths
        self.modules = list(modules)
        self.bus = bus
        self.config = config or ControllerConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.solve_fn = solve_fn or (
            lambda units, topo, coverage: solve_nids_lp(units, topo, coverage)
        )
        self.monitor = HeartbeatMonitor(
            topology.node_names, self.config.heartbeat_timeout
        )
        self.stats = ControllerStats()

        #: Latest NetFlow report per reporting node (stale entries are
        #: deliberately kept: a dead NIDS does not stop the traffic).
        self.reports: Dict[str, TrafficReport] = {}
        #: HA election term stamped into every outbound message as a
        #: fencing token; 0 in single-controller deployments.  The
        #: :class:`~repro.control.ha.ControllerReplica` wrapper keeps
        #: it in sync with its own term.
        self.term = 0
        #: Highest term seen in agent ``nack``s — evidence a newer
        #: leader exists, which deposes this one under HA.
        self.observed_term = 0
        #: Per-node (applied_term, applied_version) claim from the last
        #: heartbeat; a rebuilding leader uses it to decide which delta
        #: bases it may trust across a takeover.
        self.reported_applied: Dict[str, Tuple[int, int]] = {}
        self.version = -1
        self.deployment: Optional[NIDSDeployment] = None
        self.manifests: Dict[str, NodeManifest] = {}
        self.planned_units: List[CoordinationUnit] = []
        self.last_repair: Optional[RepairResult] = None
        #: Manifest content each agent last acknowledged applying.
        self.acked_manifests: Dict[str, NodeManifest] = {}
        self.acked_version: Dict[str, int] = {
            name: -1 for name in topology.node_names
        }
        self.outstanding: Dict[str, PushState] = {}
        self.needs_full: Set[str] = set()
        self._recovered: Set[str] = set()
        #: Live nodes that self-reported edge-only degradation: treated
        #: like failed for planning until they report healthy again.
        self.fenced: Set[str] = set()
        self._fence_event = False
        #: Recently superseded pushes per node, so a late ack for an
        #: old epoch can still establish a delta base.
        self._pushed_history: Dict[str, List[PushState]] = {}
        self._retry_rng = random.Random(self.config.retry_seed)
        self._reference_class_cpu: Dict[str, float] = {}
        self._last_resolve_epoch: Optional[int] = None
        # Per-epoch scratch, reset by step().
        self._epoch = EpochRecord(epoch=-1, time=0.0)
        self._epoch_lags: List[float] = []
        # Pre-declare the health families that only record on rare
        # events, so every snapshot carries them (value 0 ≠ absent).
        self.registry.counter(
            "controller_push_retries_total",
            "unacknowledged pushes retransmitted, by backoff attempt",
            labels=("attempt",),
        )
        self.registry.counter(
            "controller_repairs_total",
            "targeted failure-repair redistributions",
        )
        if self.config.lease_ttl is not None:
            self.registry.counter(
                "controller_lease_fences_total",
                "live nodes fenced after self-reporting degradation",
                labels=("node",),
            )
            self.registry.counter(
                "controller_superseded_acks_total",
                "acknowledgements for superseded epochs credited as"
                " delta bases",
            )
        self.registry.counter(
            "controller_manifest_rejections_total",
            "configurations refused by the pre-distribution static"
            " verifier, by violated invariant",
            labels=("rule",),
        )
        self.registry.counter(
            "heartbeat_failures_total",
            "nodes declared failed after missed heartbeats",
            labels=("node",),
        )
        self.registry.histogram(
            "epoch_convergence_seconds",
            "simulated seconds from first push to last ack per"
            " reconfiguration epoch",
        )

    # -- inbox ------------------------------------------------------------
    def _drain(self, now: float) -> None:
        for message in self.bus.deliver(self.config.name, now):
            if message.kind == KIND_HEARTBEAT:
                node = message.payload["node"]
                self.reported_applied[node] = (
                    message.payload.get("applied_term", 0),
                    message.payload.get("applied", -1),
                )
                if self.monitor.beat(node, now):
                    self._recovered.add(node)
                    self.needs_full.add(node)
                    self.acked_manifests.pop(node, None)
                    self.acked_version[node] = -1
                    self.outstanding.pop(node, None)
                    # Pre-crash pushes must not be credited as bases.
                    self._pushed_history.pop(node, None)
                if self.config.lease_ttl is not None:
                    self._track_degradation(
                        node, bool(message.payload.get("degraded"))
                    )
            elif message.kind == KIND_REPORT:
                self.reports[message.src] = message.payload
            elif message.kind == KIND_ACK:
                self._handle_ack(message.payload, now)
            elif message.kind == KIND_RESYNC_REQUEST:
                # Warm-restarted agent refusing its on-disk state: drop
                # everything we believed about it and send a full
                # manifest on the next push beat.
                node = message.payload["node"]
                self.needs_full.add(node)
                self.acked_manifests.pop(node, None)
                self.acked_version[node] = -1
                self.outstanding.pop(node, None)
                self._pushed_history.pop(node, None)
            elif message.kind == KIND_NACK:
                # An agent fenced us for carrying a stale term: a newer
                # leader exists.  Record the evidence; the HA wrapper
                # deposes this replica on its next beat.
                self.observed_term = max(
                    self.observed_term, message.payload.get("term", 0)
                )

    def _track_degradation(self, node: str, degraded: bool) -> None:
        """Fence/unfence a live node from its self-reported lease state.

        A degraded node is serving edge-only: its coordinated ranges
        are effectively unstaffed, so it is treated like a failed node
        for planning (fenced) until it reports healthy again — at which
        point it re-enters through the same recovery path as a restart.
        """
        if degraded and node not in self.fenced:
            self.fenced.add(node)
            self._fence_event = True
            self.stats.fences += 1
            self.registry.counter(
                "controller_lease_fences_total",
                "live nodes fenced after self-reporting degradation",
                labels=("node",),
            ).inc(node=node)
        elif not degraded and node in self.fenced:
            self.fenced.discard(node)
            self._recovered.add(node)

    def _handle_ack(self, payload: dict, now: float) -> None:
        node = payload["node"]
        state = self.outstanding.get(node)
        if state is None or payload["version"] != state.version:
            # Ack for a superseded push.  If the agent *applied* that
            # old epoch, remember it: it is a perfectly good delta base
            # for the current push, sparing a full-manifest fallback.
            if payload.get("status") == "applied":
                for old in self._pushed_history.get(node, ()):
                    if old.version != payload["version"]:
                        continue
                    if (
                        node not in self.needs_full
                        and self.acked_version.get(node, -1) < old.version
                    ):
                        self.acked_version[node] = old.version
                        self.acked_manifests[node] = old.manifest
                        self.stats.superseded_acks += 1
                        self.registry.counter(
                            "controller_superseded_acks_total",
                            "acknowledgements for superseded epochs"
                            " credited as delta bases",
                        ).inc()
                    break
            return
        if payload["status"] == "resync":
            # The agent cannot apply our delta (lost base); switch this
            # node to full pushes and resend immediately-ish.
            self.needs_full.add(node)
            self.acked_manifests.pop(node, None)
            self.outstanding.pop(node, None)
            return
        if state.acked_at is None:
            state.acked_at = now
            self._epoch_lags.append(now - state.first_sent)
            self.registry.histogram(
                "push_ack_lag_seconds",
                "simulated push-to-acknowledgement lag per agent",
            ).observe(now - state.first_sent)
        self.acked_version[node] = state.version
        self.acked_manifests[node] = state.manifest
        self.needs_full.discard(node)

    # -- planning ---------------------------------------------------------
    def _estimated_units(self) -> List[CoordinationUnit]:
        merged = merge_reports(self.reports.values())
        units = estimate_units(
            self.modules, merged, self.paths, self.config.estimation
        )
        return conservative_units(units, self.config.headroom)

    @staticmethod
    def _class_cpu(units: Sequence[CoordinationUnit]) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for unit in units:
            totals[unit.class_name] = totals.get(unit.class_name, 0.0) + unit.cpu_work
        return totals

    def _drift(self, units: Sequence[CoordinationUnit]) -> float:
        """Relative L1 distance of per-class CPU volumes vs. the last
        re-solve's inputs (class-level, so per-unit sampling noise does
        not masquerade as a traffic change)."""
        reference = self._reference_class_cpu
        if not reference:
            return float("inf")
        current = self._class_cpu(units)
        baseline = sum(reference.values())
        if baseline <= 0:
            return float("inf")
        classes = set(reference) | set(current)
        l1 = sum(
            abs(current.get(c, 0.0) - reference.get(c, 0.0)) for c in classes
        )
        return l1 / baseline

    def _unavailable(self) -> Set[str]:
        """Nodes that must not hold coordinated responsibility: failed
        (dead process) or fenced (alive but serving edge-only).

        Exception: when *every* live node is fenced, the degradation
        was caused by the controller's own absence rather than node
        faults, and excluding them all would plan an empty (zero
        coverage) configuration.  Plan over the full live set instead —
        the resulting push re-arms each agent's lease and epoch fence
        in one round, so they exit fallback straight into a complete
        configuration.
        """
        failed = set(self.monitor.failed)
        if any(
            self.monitor.alive(node) and node not in self.fenced
            for node in self.topology.node_names
        ):
            return failed | self.fenced
        return failed

    def _live_fenced(self) -> Set[str]:
        return {n for n in self.fenced if self.monitor.alive(n)}

    def _exclude_failed(
        self, units: Sequence[CoordinationUnit]
    ) -> List[CoordinationUnit]:
        unavailable = self._unavailable()
        if not unavailable:
            return list(units)
        live_fenced = self._live_fenced()
        surviving = []
        for unit in units:
            eligible = tuple(
                n for n in unit.eligible if n not in unavailable
            )
            if not eligible:
                # Sole-eligible holders are fenced but alive: keep the
                # unit planned on them rather than dropping it.  A
                # sole-eligible node is the unit's endpoint, so its
                # edge-only fallback already analyzes the traffic while
                # degraded — and the planned entry means coordinated
                # service resumes the instant the node exits fallback,
                # instead of the unit going dark in the handoff epoch.
                eligible = tuple(
                    n for n in unit.eligible if n in live_fenced
                )
            if not eligible:
                continue  # unobservable while its only nodes are down
            if eligible != unit.eligible:
                unit = dataclasses.replace(unit, eligible=eligible)
            surviving.append(unit)
        return surviving

    def _resolve(self, now: float, reason: str) -> None:
        """Full re-plan: estimate → LP → manifests → stabilize."""
        with self.registry.timer(
            "controller_resolve_seconds",
            "wall-clock seconds per full re-plan (estimate/LP/manifests)",
        ):
            self._resolve_inner(now, reason)
        self.registry.counter(
            "controller_resolves_total",
            "full re-plans by trigger",
            labels=("reason",),
        ).inc(reason=reason)

    def _resolve_inner(self, now: float, reason: str) -> None:
        estimated = self._estimated_units()
        self._reference_class_cpu = self._class_cpu(estimated)
        units = self._exclude_failed(estimated)
        assignment = self.solve_fn(units, self.topology, self.config.coverage)
        proposed = generate_manifests(units, assignment, self.topology.node_names)
        allowed: Dict[Ident, Set[str]] = {
            unit.ident: set(unit.eligible) for unit in units
        }
        if self.manifests:
            stabilized, _changed = stabilize_manifests(
                self.manifests,
                proposed,
                self.config.stabilize_tolerance,
                allowed=allowed,
            )
        else:
            stabilized = proposed
        if not self._gate(units, stabilized, stage="resolve"):
            # Fail closed: the previous configuration stays active and
            # the next epoch's trigger logic will attempt a fresh plan.
            return
        self._adopt(stabilized, units, assignment, now, reason)
        self.stats.resolves += 1
        self._last_resolve_epoch = self._epoch.epoch

    def _gate(
        self,
        units: Sequence[CoordinationUnit],
        manifests: Dict[str, NodeManifest],
        stage: str,
    ) -> bool:
        """Fail-closed pre-distribution gate (static verification).

        Full re-plans must satisfy the partition *and* on-path
        invariants; failure repairs only the on-path one (a repair may
        legitimately leave orphaned mass uncovered when a unit's whole
        eligible set is down, but must never move mass off-path).  The
        manifest-vs-``d*`` match is deliberately not checked here:
        churn stabilization keeps manifests up to its tolerance away
        from the fresh optimum by design.
        """
        if stage == "repair":
            report = VerificationReport(
                findings=check_on_path(units, manifests), checks=("on-path",)
            )
        else:
            report = verify_deployment(units, manifests)
        if report.ok:
            return True
        self.stats.rejections += 1
        counter = self.registry.counter(
            "controller_manifest_rejections_total",
            "configurations refused by the pre-distribution static"
            " verifier, by violated invariant",
            labels=("rule",),
        )
        for rule_id in report.rule_ids():
            counter.inc(rule=rule_id)
        return False

    def _repair(self, now: float) -> None:
        """Targeted redistribution of the failed nodes' hash ranges."""
        result = repair_manifests(
            self.manifests, self.planned_units, self.topology, self._unavailable()
        )
        self._restore_fenced_singletons(result)
        self.last_repair = result
        assignment = (
            self.deployment.assignment if self.deployment is not None else None
        )
        if not self._gate(self.planned_units, result.manifests, stage="repair"):
            return
        self._adopt(result.manifests, self.planned_units, assignment, now, "failure")
        self.stats.repairs += 1
        self.registry.counter(
            "controller_repairs_total",
            "targeted failure-repair redistributions",
        ).inc()
        if result.orphaned:
            self.registry.gauge(
                "repair_orphaned_mass",
                "hash-space mass with no live eligible node after the last repair",
            ).set(sum(mass for _ident, mass in result.orphaned))

    def _restore_fenced_singletons(self, result: RepairResult) -> None:
        """Re-home repair-orphaned units whose only live eligible node
        is fenced.

        The repair treats fenced nodes like failed ones, so a unit
        observable only at a fenced node comes back orphaned.  But the
        node is *alive* — merely serving edge-only — and, being the
        unit's sole possible observer, it is one of the unit's
        endpoints: its fallback stance analyzes that traffic already.
        Assigning the full hash range back to it keeps the planned
        configuration aligned with that reality, so the unit never goes
        dark in the epoch between the node exiting fallback and the
        recovery re-plan.
        """
        live_fenced = self._live_fenced()
        if not live_fenced or not result.orphaned:
            return
        units_by_ident = {unit.ident: unit for unit in self.planned_units}
        still_orphaned: List[tuple] = []
        for ident, mass in result.orphaned:
            unit = units_by_ident.get(ident)
            holders = sorted(
                n for n in (unit.eligible if unit is not None else ())
                if n in live_fenced
            )
            if not holders:
                still_orphaned.append((ident, mass))
                continue
            result.manifests[holders[0]].entries[ident] = (
                HashRange(0.0, 1.0),
            )
        result.orphaned[:] = still_orphaned

    def _adopt(
        self,
        manifests: Dict[str, NodeManifest],
        units: Sequence[CoordinationUnit],
        assignment: Optional[NIDSAssignment],
        now: float,
        reason: str,
    ) -> None:
        """Install a new configuration version and compute transition
        metrics against the outgoing one."""
        self.version += 1
        previous = self.deployment
        if assignment is not None:
            self.deployment = NIDSDeployment(
                topology=self.topology,
                paths=self.paths,
                modules=self.modules,
                units=list(units),
                assignment=assignment,
                manifests=manifests,
                resolver=UnitResolver(self.topology.node_names),
            )
        old_manifests = self.manifests
        self.manifests = manifests
        self.planned_units = list(units)
        self._epoch.resolved = reason
        self._epoch.config_version = self.version
        if previous is not None and self.deployment is not None:
            plan = plan_transition(previous, self.deployment)
            total = sum(u.pkts for u in self.deployment.units)
            if total > 0:
                duplicated = sum(
                    u.pkts * plan.duplicated_fraction(u.class_name, u.key)
                    for u in self.deployment.units
                )
                self._epoch.duplicated_fraction = duplicated / total
        self._epoch.unchanged_entry_fraction = self._unchanged_fraction(
            old_manifests, manifests
        )

    @staticmethod
    def _unchanged_fraction(
        old: Dict[str, NodeManifest], new: Dict[str, NodeManifest]
    ) -> float:
        """Fraction of (node, unit) entries identical across versions."""
        keys = {
            (node, ident)
            for node, manifest in old.items()
            for ident in manifest.entries
        } | {
            (node, ident)
            for node, manifest in new.items()
            for ident in manifest.entries
        }
        if not keys:
            return 1.0
        unchanged = sum(
            1
            for node, ident in keys
            if node in old
            and node in new
            and old[node].entries.get(ident) == new[node].entries.get(ident)
        )
        return unchanged / len(keys)

    # -- distribution -----------------------------------------------------
    def _sync_pushes(self, now: float) -> None:
        """(Re)send manifests to every live agent not yet holding the
        current configuration.  Pushes are idempotent and versioned, so
        resending after loss is always safe."""
        if self.version < 0 or not self.manifests:
            # A freshly promoted leader can know the cluster reached
            # some version without holding its content (epoch-log gap):
            # refusing to push beats pushing a fabricated manifest.
            return
        for node in self.topology.node_names:
            if not self.monitor.alive(node):
                continue
            target = self.manifests[node]
            acked = self.acked_manifests.get(node)
            if acked is not None and acked.entries == target.entries and (
                acked.full == target.full
            ):
                # Agent already holds equivalent content.  With leases
                # the version number itself is load-bearing (the epoch
                # fence compares it against lease announcements), so
                # the push is only satisfied once the *current* version
                # was acknowledged.
                if (
                    self.config.lease_ttl is None
                    or self.acked_version.get(node, -1) >= self.version
                ):
                    continue
            state = self.outstanding.get(node)
            if state is not None and state.acked_at is None:
                if state.manifest is self.manifests[node] or (
                    state.version == self.version
                    and state.manifest.entries == target.entries
                ):
                    # Current push still in flight; retry once its
                    # backoff deadline passes.
                    if now >= state.next_retry_at:
                        self._transmit(node, state, now, retry=True)
                    continue
            self._push(node, target, now)

    def _push(self, node: str, target: NodeManifest, now: float) -> None:
        full_payload_data = manifest_to_dict(target)
        full_bytes = _json_size(full_payload_data)
        base = self.acked_manifests.get(node)
        mode = "full"
        data = full_payload_data
        size = full_bytes
        base_version: Optional[int] = None
        if (
            self.config.use_delta
            and base is not None
            and node not in self.needs_full
        ):
            delta = manifest_diff(base, target)
            delta_bytes = _json_size(delta)
            if not delta_is_empty(delta) and delta_bytes < full_bytes:
                mode = "delta"
                data = delta
                size = delta_bytes
                base_version = self.acked_version[node]
        payload = {
            "version": self.version,
            "mode": mode,
            "base": base_version,
            "data": data,
        }
        state = PushState(
            version=self.version,
            mode=mode,
            payload=payload,
            size_bytes=size,
            full_bytes=full_bytes,
            manifest=target,
            first_sent=now,
            last_sent=now,
        )
        superseded = self.outstanding.get(node)
        if superseded is not None:
            # Keep a short memory of superseded pushes: a late
            # "applied" ack for one of them still names a usable delta
            # base (see _handle_ack).
            history = self._pushed_history.setdefault(node, [])
            history.append(superseded)
            del history[:-PUSH_HISTORY_LIMIT]
        self.outstanding[node] = state
        self._transmit(node, state, now, retry=False)
        self.registry.counter(
            "controller_pushes_total",
            "manifest pushes by wire mode",
            labels=("mode",),
        ).inc(mode=mode)
        self.registry.counter(
            "controller_push_bytes_total",
            "manifest bytes pushed by wire mode",
            labels=("mode",),
        ).inc(size, mode=mode)
        if mode == "full":
            self.stats.pushes_full += 1
            self._epoch.pushes_full += 1
        else:
            self.stats.pushes_delta += 1
            self._epoch.pushes_delta += 1
        self._epoch.push_bytes += size
        self._epoch.full_equivalent_bytes += full_bytes
        self.stats.push_bytes += size
        self.stats.full_equivalent_bytes += full_bytes

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before retransmission number *attempt* (1-based).

        The first retry fires after exactly ``retry_backoff`` —
        un-jittered, so the two-beat epoch schedule (decision beat
        sends, ack beat retries) is preserved on a healthy plane.
        Later retries double up to ``retry_backoff_cap`` with downward
        jitter, de-synchronizing agents during an outage.
        """
        if attempt <= 1:
            return self.config.retry_backoff
        delay = min(
            self.config.retry_backoff_cap,
            self.config.retry_backoff * (2.0 ** (attempt - 1)),
        )
        return delay * (1.0 - self.config.retry_jitter * self._retry_rng.random())

    def _transmit(
        self, node: str, state: PushState, now: float, retry: bool
    ) -> None:
        if retry:
            state.attempts += 1
            self.stats.retries += 1
            self.registry.counter(
                "controller_push_retries_total",
                "unacknowledged pushes retransmitted, by backoff attempt",
                labels=("attempt",),
            ).inc(attempt=str(state.attempts) if state.attempts < 6 else "6+")
            self._epoch.push_bytes += state.size_bytes
            self._epoch.full_equivalent_bytes += state.full_bytes
            self.stats.push_bytes += state.size_bytes
            self.stats.full_equivalent_bytes += state.full_bytes
        state.last_sent = now
        state.next_retry_at = now + self._retry_delay(state.attempts + 1)
        # Stamp the fencing term (and, with leases, a fresh expiry) on
        # a copy: in-flight messages hold a reference to the payload,
        # so the wire copy must be frozen.
        payload = dict(state.payload)
        payload["term"] = self.term
        if self.config.lease_ttl is not None:
            payload["lease_expires_at"] = now + self.config.lease_ttl
        self.bus.send(
            self.config.name,
            node,
            KIND_MANIFEST_UPDATE,
            payload,
            state.size_bytes,
            now,
        )

    def _renew_leases(self, now: float) -> None:
        """Extend the epoch lease of every node the controller still
        trusts.  Failed and fenced nodes are deliberately left out:
        withholding renewal is the mechanism that forces a partitioned
        or stale agent into edge-only fallback within one TTL."""
        if self.config.lease_ttl is None or self.version < 0:
            return
        expires = now + self.config.lease_ttl
        for node in self.topology.node_names:
            if not self.monitor.alive(node) or node in self.fenced:
                continue
            self.bus.send(
                self.config.name,
                node,
                KIND_LEASE_RENEW,
                {
                    "version": self.version,
                    "term": self.term,
                    "lease_expires_at": expires,
                },
                LEASE_BYTES,
                now,
            )

    # -- epoch driver -----------------------------------------------------
    def step(self, now: float) -> None:
        """Main per-epoch decision point: ingest, detect, re-plan, push."""
        epoch = int(now / self.config.epoch_duration)
        self._epoch = EpochRecord(epoch=epoch, time=now)
        self._epoch_lags = []
        self._recovered = set()

        self._drain(now)
        newly_failed = self.monitor.sweep(now)
        for node in newly_failed:
            self.registry.counter(
                "heartbeat_failures_total",
                "nodes declared failed after missed heartbeats",
                labels=("node",),
            ).inc(node=node)
        fence_event = self._fence_event
        self._fence_event = False

        reason = ""
        if self.deployment is None:
            if self.reports:
                reason = "bootstrap"
        elif self._recovered:
            reason = "recovery"
        elif newly_failed or fence_event:
            reason = "failure"
        elif self.reports:
            drift = self._drift(self._estimated_units())
            if drift > self.config.drift_threshold:
                reason = "drift"
            elif (
                self.config.resolve_every > 0
                and self._last_resolve_epoch is not None
                and epoch - self._last_resolve_epoch >= self.config.resolve_every
            ):
                reason = "periodic"

        if reason == "failure":
            self._repair(now)
        elif reason:
            self._resolve(now, reason)

        self._sync_pushes(now)
        self._renew_leases(now)

    def finish_epoch(self, now: float) -> EpochRecord:
        """Drain late acks, retry stragglers, finalize the record."""
        self._drain(now)
        # Second retry beat: anything still unacknowledged (push or ack
        # lost in either direction) goes out again before the epoch
        # closes, roughly doubling per-epoch convergence odds on a
        # lossy bus.
        self._sync_pushes(now)
        self._renew_leases(now)
        record = self._epoch
        record.failed_nodes = tuple(sorted(self.monitor.failed))
        record.fenced_nodes = tuple(sorted(self.fenced))
        record.reconfig_lag = max(self._epoch_lags, default=0.0)
        record.converged = not self.unsynced_live_nodes()
        registry = self.registry
        registry.counter(
            "epochs_total", "epochs closed by convergence outcome",
            labels=("converged",),
        ).inc(converged=str(record.converged).lower())
        if self._epoch_lags:
            registry.histogram(
                "epoch_convergence_seconds",
                "simulated seconds from first push to last ack per"
                " reconfiguration epoch",
            ).observe(record.reconfig_lag)
        if self.version >= 0:
            registry.gauge(
                "controller_config_version",
                "currently adopted configuration version",
            ).set(self.version)
        return record

    # -- introspection ----------------------------------------------------
    def unsynced_live_nodes(self) -> List[str]:
        """Live nodes whose applied manifest differs from the current
        configuration (push lost, pending, or not yet sent)."""
        if self.version < 0:
            return [n for n in self.topology.node_names if self.monitor.alive(n)]
        lagging = []
        for node in self.topology.node_names:
            if not self.monitor.alive(node):
                continue
            acked = self.acked_manifests.get(node)
            target = self.manifests.get(node)
            if target is None:
                # Version known but content not yet recovered (handoff
                # log gap): the node cannot be proven in sync.
                lagging.append(node)
            elif acked is None or acked.entries != target.entries or (
                acked.full != target.full
            ):
                lagging.append(node)
            elif (
                self.config.lease_ttl is not None
                and self.acked_version.get(node, -1) < self.version
            ):
                # Content matches but the agent has not yet confirmed
                # the current epoch number — under leases it may still
                # be fenced behind the old version.
                lagging.append(node)
        return lagging

    def failure_pending(self) -> bool:
        """Whether some crashed or fenced node's ranges are still in
        the active configuration (failure undetected or repair not yet
        computed)."""
        return any(
            self.manifests.get(node) is not None
            and self.manifests[node].entries
            for node in self._unavailable()
        )
