"""Declared control-plane message protocol.

The coordination plane exchanges a small, closed set of message kinds
over the :class:`~repro.control.bus.Bus`.  Before this table existed
the protocol lived implicitly in string literals scattered across
``Controller`` and ``Agent``; a typo'd kind (sent-but-never-handled, or
handled-but-never-sent) produced silent drift only a full scenario run
could catch.  ``PROTOCOL`` makes the contract statically declarable:
``repro analysis flow`` (rule REP206) extracts every kind sent on the
bus and every ``message.kind == ...`` dispatch arm, and fails the build
when either side disagrees with this table.

``implicit=True`` marks kinds consumed by a blanket handler rather
than a dispatch arm: ``lease-renew`` carries no payload an agent acts
on beyond the lease stamp, which :meth:`Agent._renew_lease` extracts
from every non-stale controller message (see ``docs/fault_model.md``),
so no ``kind ==`` comparison exists for it by design.

The controller-HA kinds (:mod:`repro.control.ha`) extend the plane
with a replica coordination channel: a leader heartbeats its term with
``term-announce``, a standby takes over with ``promote``, the epoch
log replicates via ``state-handoff``, and an agent answers any message
carrying a stale fencing term with ``nack`` (see the failover section
of ``docs/fault_model.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "KIND_ACK",
    "KIND_HEARTBEAT",
    "KIND_LEASE_RENEW",
    "KIND_MANIFEST_UPDATE",
    "KIND_NACK",
    "KIND_PROMOTE",
    "KIND_REPORT",
    "KIND_RESYNC_REQUEST",
    "KIND_STATE_HANDOFF",
    "KIND_TERM_ANNOUNCE",
    "MessageSpec",
    "PROTOCOL",
    "PROTOCOL_KINDS",
]

# Agent -> controller.
KIND_HEARTBEAT = "heartbeat"
KIND_REPORT = "report"
KIND_ACK = "ack"
KIND_RESYNC_REQUEST = "resync-request"
KIND_NACK = "nack"

# Controller -> agent.
KIND_MANIFEST_UPDATE = "manifest-update"
KIND_LEASE_RENEW = "lease-renew"

# Controller replica -> replica (and leader -> agent for
# term-announce): the HA failover channel.
KIND_TERM_ANNOUNCE = "term-announce"
KIND_PROMOTE = "promote"
KIND_STATE_HANDOFF = "state-handoff"


@dataclass(frozen=True)
class MessageSpec:
    """One admissible message kind on the control bus."""

    kind: str
    sender: str  # "agent" | "controller"
    receiver: str
    #: True when a blanket handler (not a ``kind ==`` dispatch arm)
    #: consumes the message; REP206 then waives the handler check.
    implicit: bool = False


#: The closed protocol.  REP206 checks this table against the code in
#: both directions; extend it *first* when adding a message kind.
PROTOCOL: Tuple[MessageSpec, ...] = (
    MessageSpec(kind=KIND_HEARTBEAT, sender="agent", receiver="controller"),
    MessageSpec(kind=KIND_REPORT, sender="agent", receiver="controller"),
    MessageSpec(kind=KIND_ACK, sender="agent", receiver="controller"),
    MessageSpec(kind=KIND_RESYNC_REQUEST, sender="agent", receiver="controller"),
    MessageSpec(kind=KIND_NACK, sender="agent", receiver="controller"),
    MessageSpec(kind=KIND_MANIFEST_UPDATE, sender="controller", receiver="agent"),
    MessageSpec(
        kind=KIND_LEASE_RENEW, sender="controller", receiver="agent", implicit=True
    ),
    MessageSpec(kind=KIND_TERM_ANNOUNCE, sender="controller", receiver="replica|agent"),
    MessageSpec(kind=KIND_PROMOTE, sender="controller", receiver="replica"),
    MessageSpec(kind=KIND_STATE_HANDOFF, sender="controller", receiver="replica"),
)

#: Frozen view for membership checks.
PROTOCOL_KINDS = frozenset(spec.kind for spec in PROTOCOL)
