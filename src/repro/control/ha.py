"""Controller high availability: term-fenced standby failover.

The paper's operations center is a single logical entity; at ISP scale
a lone controller process is the deployment's single point of failure.
PR 5's fault model only *survives* a controller outage — agents degrade
to edge-only fallback when their epoch lease lapses — it never
*recovers* coordinated operation until the same process returns.  This
module closes that gap with a small, fully deterministic HA layer in
the spirit of lease-based standby takeover (ROADMAP: "standby failover
or quorum hand-off, extending the existing lease/fencing machinery"):

* **N replicas, one acting leader.**  :class:`HACluster` runs
  ``HAConfig.replicas`` :class:`ControllerReplica` instances over the
  same :class:`~repro.control.bus.Bus`.  Replica 0 boots as leader;
  the rest are warm standbys that drain (and discard) their inboxes so
  a later promotion can never replay a stale backlog.

* **Terms as fencing tokens.**  Every controller→agent message is
  stamped with the leader's election *term* (see
  :meth:`Controller._transmit`).  Terms are replica-unique by
  construction — replica *i* only ever mints terms ``t`` with
  ``t % replicas == i`` — so two concurrent candidates can never mint
  the same term, and the numerically higher term wins outright (the
  stable-replica-ID tie-break is baked into the arithmetic).  Agents
  track the highest term witnessed and ``nack`` anything older
  (:meth:`Agent._accept_term`), which both fences the deposed leader's
  pushes/leases *and* carries depose evidence back to it through the
  agent plane even when the replica plane is partitioned away.

* **Deterministic lease-based election.**  The serving leader
  broadcasts ``term-announce`` every beat.  A standby whose announce
  silence exceeds ``leader_lease + index * rank_stagger`` promotes
  itself; the per-index stagger makes candidacy windows disjoint, so
  in the common path exactly one standby runs for office.

* **Split-brain-proof state handoff.**  The leader replicates an
  epoch log (``state-handoff``: the last ``handoff_window`` adopted
  configurations, term-stamped).  A freshly promoted leader enters a
  *rebuilding* phase: it drains agent heartbeats (which carry each
  agent's ``(applied_term, applied_version)`` claim) and refuses to
  push anything until its view covers the highest applied epoch it has
  observed — either by installing that epoch from its log, or, past a
  grace period, by adopting the bare version number (a "log-gap"
  handoff) so no epoch number is ever minted twice.  Delta bases are
  only trusted when the agent's claimed term matches the log entry's
  term: two leaders can mint the same version *number* with different
  content, and a cross-term delta would silently corrupt manifests.

Replica-plane traffic is addressed to ``<replica>#ha`` so the wrapped
:class:`Controller`'s ``_drain`` never sees HA kinds and the existing
agent-plane dispatch stays byte-for-byte identical in single-controller
deployments.  See ``docs/fault_model.md`` for the failover sequence
and invariants, and :mod:`repro.control.chaos` for the acceptance
plans (``leader-crash-mid-push``, ``leader-partition``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.manifest_io import manifest_from_dict, manifest_to_dict
from ..nids.modules.base import ModuleSpec
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..topology.graph import Topology
from ..topology.routing import PathSet
from .bus import Bus
from .controller import Controller, ControllerConfig, SolveFn, _json_size
from .epochs import EpochRecord
from .protocol import KIND_PROMOTE, KIND_STATE_HANDOFF, KIND_TERM_ANNOUNCE

#: Replica-plane messages ride a suffixed address so the wrapped
#: controller's agent-plane drain never consumes them.
HA_CHANNEL_SUFFIX = "#ha"

#: Nominal wire sizes of the fixed-format election messages.
TERM_ANNOUNCE_BYTES = 56
PROMOTE_BYTES = 64


def replica_name(index: int, base: str = "controller") -> str:
    """Stable name of controller replica *index*.

    Replica 0 keeps the bare base name, so single-controller agent
    configurations (``AgentConfig.controller == "controller"``) address
    the initial leader unchanged.
    """
    return base if index == 0 else f"{base}-{index}"


def ha_address(name: str) -> str:
    """Bus address of a replica's HA (replica-plane) inbox."""
    return name + HA_CHANNEL_SUFFIX


def base_identity(address: str) -> str:
    """Strip the HA suffix: the process identity behind a bus address.

    Fault matching uses this so a partition or ``controller_down``
    event naming a replica severs *both* its planes at once.
    """
    return address.split(HA_CHANNEL_SUFFIX, 1)[0]


@dataclass
class HAConfig:
    """Failover tunables (times in seconds)."""

    #: Number of controller replicas (1 = plain single controller).
    replicas: int = 3
    #: Base process name; replica 0 is ``base_name`` itself.
    base_name: str = "controller"
    #: Announce silence after which the first standby considers the
    #: leader dead.  Aligned with the agents' epoch-lease TTL so the
    #: control plane and the data plane agree on how long stale
    #: authority may persist.
    leader_lease: float = 2.5
    #: Extra silence tolerated per replica index before candidacy —
    #: makes election windows disjoint, so concurrent candidacy only
    #: happens under replica-plane partitions (where replica-unique
    #: terms still keep the outcome safe).
    rank_stagger: float = 1.0
    #: How many recent epoch-log entries each ``state-handoff`` carries.
    handoff_window: int = 6
    #: How long a rebuilding leader waits for agent claims before
    #: accepting a log-gap handoff (version without content).
    handoff_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.leader_lease <= 0 or self.rank_stagger < 0:
            raise ValueError("leader_lease must be > 0, rank_stagger >= 0")
        if self.handoff_window < 1:
            raise ValueError("handoff_window must be >= 1")

    def to_dict(self) -> dict:
        """JSON-compatible dict of the tunables."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HAConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class EpochLogEntry:
    """One adopted configuration in the replicated epoch log.

    ``manifests`` holds plain :func:`manifest_to_dict` dicts (not
    :class:`NodeManifest` objects) so entries serialize over the bus,
    pickle across process boundaries, and round-trip through JSON.
    """

    term: int
    version: int
    reason: str
    #: Highest agent-acknowledged version the leader had observed when
    #: it logged this entry.
    max_acked: int
    manifests: Tuple[Tuple[str, dict], ...]

    def to_dict(self) -> dict:
        """JSON-compatible dict (the manifest pairs become a mapping)."""
        return {
            "term": self.term,
            "version": self.version,
            "reason": self.reason,
            "max_acked": self.max_acked,
            "manifests": {node: data for node, data in self.manifests},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochLogEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            term=data["term"],
            version=data["version"],
            reason=data.get("reason", ""),
            max_acked=data.get("max_acked", -1),
            manifests=tuple(sorted(data.get("manifests", {}).items())),
        )

    def manifest_objects(self) -> Dict[str, object]:
        """Materialize the stored manifests as ``NodeManifest``s."""
        return {
            node: manifest_from_dict(data) for node, data in self.manifests
        }


@dataclass
class ReplicaStats:
    """Cumulative per-replica failover counters."""

    elections: int = 0
    depositions: int = 0
    #: Epoch-log entries adopted from peers' ``state-handoff``s.
    handoff_entries: int = 0
    #: ``state-handoff`` broadcasts sent while leading.
    handoffs_sent: int = 0

    def to_dict(self) -> dict:
        """JSON-compatible dict of the counters."""
        return dataclasses.asdict(self)


class ControllerReplica:
    """One controller process in an HA cluster.

    Wraps a full :class:`Controller` (sharing the cluster's bus) and
    adds role/term state on top: only the acting leader lets its
    controller run epoch beats; standbys merely keep their inboxes
    drained and watch for the leader's announces to go silent.
    """

    #: Mutation switch for the seeded fault-injection tests: with HA
    #: fencing disabled a deposed leader ignores higher-term evidence
    #: and keeps serving, and the chaos ``leader-uniqueness`` invariant
    #: must catch it.
    _ha_fencing = True

    def __init__(
        self,
        index: int,
        topology: Topology,
        paths: PathSet,
        modules: Sequence[ModuleSpec],
        bus: Bus,
        controller_config: Optional[ControllerConfig] = None,
        ha_config: Optional[HAConfig] = None,
        solve_fn: Optional[SolveFn] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.index = index
        self.ha_config = ha_config or HAConfig()
        self.name = replica_name(index, self.ha_config.base_name)
        self.peers: Tuple[str, ...] = tuple(
            replica_name(i, self.ha_config.base_name)
            for i in range(self.ha_config.replicas)
            if i != index
        )
        base = controller_config or ControllerConfig()
        self.controller = Controller(
            topology,
            paths,
            modules,
            bus,
            dataclasses.replace(base, name=self.name),
            solve_fn,
            registry,
        )
        self.bus = bus
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.alive = True
        self.role = "leader" if index == 0 else "standby"
        #: Current election term; replica-unique (``term % N == index``
        #: for every term this replica mints).
        self.term = 0
        self.leader_name = replica_name(0, self.ha_config.base_name)
        #: True between promotion and completed state handoff: the
        #: leader drains claims and refuses to push.
        self.rebuilding = False
        #: Replicated epoch log, keyed by configuration version.
        self.log: Dict[int, EpochLogEntry] = {}
        #: Version adopted by the last completed handoff (``None`` for
        #: a bootstrap leader that never took over).
        self.installed_version: Optional[int] = None
        #: Time of the last completed handoff.
        self.installed_at: Optional[float] = None
        self.stats = ReplicaStats()
        self._observed_term = 0
        self._last_heard = 0.0
        self._promoted_at = 0.0
        self.controller.term = self.term

    # -- identity / evidence ----------------------------------------------
    @property
    def observed_term(self) -> int:
        """Highest term this replica has evidence of: replica-plane
        announces plus agent-plane ``nack``s collected by the wrapped
        controller."""
        return max(self._observed_term, self.controller.observed_term)

    def _next_term(self, floor: int) -> int:
        """Smallest term above *floor* that this replica may mint."""
        n = self.ha_config.replicas
        candidate = floor + 1
        return candidate + ((self.index - candidate) % n)

    # -- failure model -----------------------------------------------------
    def crash(self) -> None:
        """Controller process dies: no beats, no sends, inbox lost."""
        self.alive = False

    def restart(self, now: float) -> None:
        """Process returns — always as a standby.  Term, epoch log, and
        the wrapped controller's state survive (warm restart), but
        leadership must be re-earned through an election; the announce
        clock restarts so a live leader's first announce is awaited
        before any candidacy."""
        self.alive = True
        self.role = "standby"
        self.rebuilding = False
        self._last_heard = now

    # -- replica-plane dispatch -------------------------------------------
    def _dispatch(self, now: float) -> None:
        """Drain the HA inbox: announces, promotions, handoffs."""
        for message in self.bus.deliver(ha_address(self.name), now):
            payload = message.payload
            if not isinstance(payload, dict):
                continue
            term = payload.get("term", 0)
            leader = payload.get("leader", base_identity(message.src))
            if message.kind == KIND_TERM_ANNOUNCE:
                self._witness(term, leader, now)
            elif message.kind == KIND_PROMOTE:
                # Idempotent by construction: a duplicated or reordered
                # promote re-delivers a (term, leader) fact; adopting it
                # twice is a no-op, and a *stale* replay (term below the
                # current one) is ignored outright by _witness.
                self._witness(term, leader, now)
            elif message.kind == KIND_STATE_HANDOFF:
                self._witness(term, leader, now)
                self._merge_entries(payload.get("entries", ()))

    def _witness(self, term: int, leader: str, now: float) -> None:
        """Fold one piece of (term, leader) evidence into local state."""
        if term > self._observed_term:
            self._observed_term = term
        if term < self.term:
            return
        if term > self.term:
            if self.role == "leader":
                if not self._ha_fencing:
                    return  # mutation: ignore the depose evidence
                self._depose(now, term, leader)
                return
            self.term = term
            self.controller.term = term
            self.leader_name = leader
            self.rebuilding = False
            self._last_heard = now
            return
        # Equal term: a repeat of a known fact.  Refresh the announce
        # clock when it comes from the leader we already follow; a
        # replayed promote for our own term changes nothing (no
        # double-leader, no re-election).
        if self.role != "leader" and leader == self.leader_name:
            self._last_heard = now

    def _merge_entries(self, entries: Sequence[dict]) -> None:
        """Adopt epoch-log entries from a handoff, idempotently.

        Per version, the highest-term content wins; re-delivery of an
        already-held entry is a no-op, so duplicated or reordered
        handoffs cannot perturb the log.
        """
        for data in entries:
            entry = EpochLogEntry.from_dict(data)
            existing = self.log.get(entry.version)
            if existing is not None and existing.term >= entry.term:
                continue
            self.log[entry.version] = entry
            self.stats.handoff_entries += 1
            self.registry.counter(
                "controller_ha_handoff_entries_total",
                "epoch-log entries adopted from state-handoff messages",
                labels=("replica",),
            ).inc(replica=self.name)

    # -- election ----------------------------------------------------------
    def _election_due(self, now: float) -> bool:
        timeout = (
            self.ha_config.leader_lease
            + self.index * self.ha_config.rank_stagger
        )
        return now - self._last_heard > timeout + 1e-9

    def _promote(self, now: float) -> None:
        """Standby takeover: mint a fresh replica-unique term and enter
        the rebuilding phase."""
        floor = max(self.term, self.observed_term)
        self.term = self._next_term(floor)
        self.controller.term = self.term
        self.role = "leader"
        self.leader_name = self.name
        self.rebuilding = True
        self._promoted_at = now
        self._last_heard = now
        # The promoted monitor knows nothing recent about any node;
        # give every agent a full timeout to heartbeat the new leader
        # before the first sweep can declare it failed.
        for node in self.controller.monitor.last_seen:
            self.controller.monitor.last_seen[node] = now
        self.stats.elections += 1
        self.registry.counter(
            "controller_ha_elections_total",
            "standby promotions to acting leader",
            labels=("replica",),
        ).inc(replica=self.name)
        payload = {"term": self.term, "leader": self.name}
        for peer in self.peers:
            self.bus.send(
                self.name,
                ha_address(peer),
                KIND_PROMOTE,
                payload,
                PROMOTE_BYTES,
                now,
            )

    def _depose(
        self, now: float, term: Optional[int] = None, leader: Optional[str] = None
    ) -> None:
        """Step down: a higher term exists.  The new leader's identity
        falls out of the term arithmetic when only nack evidence is
        available (``term % replicas`` names the minting replica)."""
        if term is None:
            term = self.observed_term
        if leader is None:
            leader = replica_name(
                term % self.ha_config.replicas, self.ha_config.base_name
            )
        self.role = "standby"
        self.rebuilding = False
        self.term = max(self.term, term)
        self.controller.term = self.term
        self.leader_name = leader
        self._last_heard = now
        self.stats.depositions += 1
        self.registry.counter(
            "controller_ha_depositions_total",
            "acting leaders stepping down on higher-term evidence",
            labels=("replica",),
        ).inc(replica=self.name)

    def _maybe_demote(self, now: float) -> None:
        if (
            self.role == "leader"
            and self._ha_fencing
            and self.observed_term > self.term
        ):
            self._depose(now)

    # -- state handoff -----------------------------------------------------
    def _log_epoch(self) -> None:
        """Record the currently adopted configuration in the epoch log."""
        ctrl = self.controller
        if ctrl.version < 0 or not ctrl.manifests:
            return
        existing = self.log.get(ctrl.version)
        if existing is not None and existing.term >= self.term:
            return
        self.log[ctrl.version] = EpochLogEntry(
            term=self.term,
            version=ctrl.version,
            reason=ctrl._epoch.resolved or "",
            max_acked=max(ctrl.acked_version.values(), default=-1),
            manifests=tuple(
                (node, manifest_to_dict(manifest))
                for node, manifest in sorted(ctrl.manifests.items())
            ),
        )

    def _send_handoff(self, now: float) -> None:
        """Replicate the tail of the epoch log to every peer.  Sent on
        every serving beat; merging is idempotent, so re-sends are the
        reliability mechanism (there are no handoff acks)."""
        if not self.log or not self.peers:
            return
        versions = sorted(self.log)[-self.ha_config.handoff_window:]
        payload = {
            "term": self.term,
            "leader": self.name,
            "entries": [self.log[v].to_dict() for v in versions],
        }
        size = _json_size(payload)
        for peer in self.peers:
            self.bus.send(
                self.name,
                ha_address(peer),
                KIND_STATE_HANDOFF,
                payload,
                size,
                now,
            )
        self.stats.handoffs_sent += 1

    def _announce(self, now: float) -> None:
        """Broadcast the current term to peers and agents.

        The agent-bound copy is stamped ``lease: False``: an announce
        proves leadership, not configuration authority, so it must not
        refresh the lease of a node the leader has fenced.
        """
        payload = {
            "term": self.term,
            "leader": self.name,
            "version": self.controller.version,
            "lease": False,
        }
        for peer in self.peers:
            self.bus.send(
                self.name,
                ha_address(peer),
                KIND_TERM_ANNOUNCE,
                payload,
                TERM_ANNOUNCE_BYTES,
                now,
            )
        for node in self.controller.topology.node_names:
            self.bus.send(
                self.name,
                node,
                KIND_TERM_ANNOUNCE,
                payload,
                TERM_ANNOUNCE_BYTES,
                now,
            )

    def _caught_up(self, now: float) -> bool:
        """Whether the rebuilding leader's view reaches the highest
        applied epoch observed (agent claims ∪ own log)."""
        claims = [
            version
            for _term, version in self.controller.reported_applied.values()
        ]
        if not claims:
            # No agent has confirmed its applied state to this leader
            # yet; keep draining until one does or the grace lapses.
            return now - self._promoted_at >= self.ha_config.handoff_grace
        highest = max(claims + list(self.log))
        return (
            highest < 0
            or highest in self.log
            or now - self._promoted_at >= self.ha_config.handoff_grace
        )

    def _install(self, now: float) -> None:
        """Complete the handoff: adopt the highest observed epoch.

        With the epoch in the log ("caught-up") its manifests are
        installed and per-agent acked state is reseeded from heartbeat
        claims — but only where the claimed *term* matches the log
        entry's term, because a same-version different-term delta base
        would corrupt the agent's manifest.  Without it ("log-gap")
        only the version number is adopted: pushes stay refused until
        the next re-solve mints fresh content above every number any
        agent has applied.
        """
        ctrl = self.controller
        claims = [
            version
            for _term, version in ctrl.reported_applied.values()
        ]
        highest = max(claims + list(self.log), default=-1)
        entry = self.log.get(highest)
        outcome = "caught-up" if highest < 0 or entry is not None else "log-gap"
        if highest >= 0:
            ctrl.version = max(ctrl.version, highest)
        if entry is not None:
            ctrl.manifests = entry.manifest_objects()
        ctrl.outstanding.clear()
        ctrl._pushed_history.clear()
        ctrl.acked_manifests.clear()
        for node in ctrl.acked_version:
            ctrl.acked_version[node] = -1
        for node in sorted(ctrl.reported_applied):
            claimed_term, claimed_version = ctrl.reported_applied[node]
            source = self.log.get(claimed_version)
            held = (
                dict(source.manifests).get(node)
                if source is not None and source.term == claimed_term
                else None
            )
            if claimed_version >= 0 and held is not None:
                ctrl.acked_manifests[node] = manifest_from_dict(held)
                ctrl.acked_version[node] = claimed_version
            else:
                ctrl.needs_full.add(node)
        self.rebuilding = False
        # The installed configuration is by construction *stale* (it
        # predates the takeover), and the first re-plan after it may
        # still miss agents that have not yet reported to this leader;
        # the chaos monitor excludes that bounded handoff window.
        self.installed_version = ctrl.version
        self.installed_at = now
        self.registry.counter(
            "controller_ha_handoffs_total",
            "completed leader state handoffs by outcome",
            labels=("outcome",),
        ).inc(outcome=outcome)

    # -- beats -------------------------------------------------------------
    def step(self, now: float) -> None:
        """One replica beat at a controller decision point."""
        if not self.alive:
            return
        self._dispatch(now)
        self._maybe_demote(now)
        if self.role != "leader":
            # Standbys keep the controller-plane inbox drained so a
            # later promotion never replays a stale backlog.
            self.bus.deliver(self.name, now)
            if self._election_due(now):
                self._promote(now)
                self._announce(now)
            return
        if self.rebuilding:
            self.controller._drain(now)
            self._maybe_demote(now)
            if self.role == "leader" and self._caught_up(now):
                self._install(now)
            if self.role == "leader":
                self._announce(now)
                self._send_handoff(now)
            return
        self.controller.step(now)
        self._maybe_demote(now)
        if self.role == "leader":
            self._log_epoch()
            self._announce(now)
            self._send_handoff(now)

    def finish_epoch(self, now: float) -> Optional[EpochRecord]:
        """One replica beat at an epoch close; the serving leader
        returns the epoch record, everyone else ``None``."""
        if not self.alive:
            return None
        self._dispatch(now)
        self._maybe_demote(now)
        if self.role != "leader":
            self.bus.deliver(self.name, now)
            if self._election_due(now):
                self._promote(now)
                self._announce(now)
            return None
        if self.rebuilding:
            self.controller._drain(now)
            self._maybe_demote(now)
            if self.role == "leader" and self._caught_up(now):
                self._install(now)
            if self.role == "leader":
                self._announce(now)
                self._send_handoff(now)
            return None
        epoch = int(now / self.controller.config.epoch_duration)
        if self.controller._epoch.epoch != epoch:
            # Promoted mid-epoch: the controller never took its step
            # beat, so there is no epoch record to close.  Keep the
            # plane moving (drain, retries, leases) and let the runner
            # score this epoch as a controller-down one.
            self.controller._drain(now)
            self.controller._sync_pushes(now)
            self.controller._renew_leases(now)
            self._maybe_demote(now)
            if self.role == "leader":
                self._announce(now)
                self._send_handoff(now)
            return None
        record = self.controller.finish_epoch(now)
        self._maybe_demote(now)
        if self.role == "leader":
            self._log_epoch()
            self._announce(now)
            self._send_handoff(now)
        return record


class HACluster:
    """N controller replicas presenting a single-controller surface.

    The chaos/scenario runners call :meth:`step` and
    :meth:`finish_epoch` exactly where they called the controller's,
    passing the set of replicas currently held down by the fault plan.
    """

    def __init__(
        self,
        topology: Topology,
        paths: PathSet,
        modules: Sequence[ModuleSpec],
        bus: Bus,
        controller_config: Optional[ControllerConfig] = None,
        ha_config: Optional[HAConfig] = None,
        solve_fn: Optional[SolveFn] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        base = controller_config or ControllerConfig()
        config = ha_config or HAConfig()
        #: The controller's configured name is authoritative for the
        #: replica naming scheme (agents address replica 0 by it).
        self.ha_config = dataclasses.replace(config, base_name=base.name)
        self.bus = bus
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.names: Tuple[str, ...] = tuple(
            replica_name(i, self.ha_config.base_name)
            for i in range(self.ha_config.replicas)
        )
        self.replicas: List[ControllerReplica] = [
            ControllerReplica(
                index,
                topology,
                paths,
                modules,
                bus,
                base,
                self.ha_config,
                solve_fn,
                registry,
            )
            for index in range(self.ha_config.replicas)
        ]
        # Pre-declare the failover families so every snapshot carries
        # them (value 0 ≠ absent) even on runs without a failover.
        self.registry.counter(
            "controller_ha_elections_total",
            "standby promotions to acting leader",
            labels=("replica",),
        )
        self.registry.counter(
            "controller_ha_depositions_total",
            "acting leaders stepping down on higher-term evidence",
            labels=("replica",),
        )
        self.registry.counter(
            "controller_ha_handoff_entries_total",
            "epoch-log entries adopted from state-handoff messages",
            labels=("replica",),
        )
        self.registry.counter(
            "controller_ha_handoffs_total",
            "completed leader state handoffs by outcome",
            labels=("outcome",),
        )

    # -- leadership views --------------------------------------------------
    def acting_leader(self) -> Optional[ControllerReplica]:
        """The alive leader with the highest term (None while the
        cluster is leaderless)."""
        leaders = [
            replica
            for replica in self.replicas
            if replica.alive and replica.role == "leader"
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda replica: replica.term)

    @property
    def authority(self) -> Controller:
        """The controller whose view of the deployment currently
        counts: the acting leader's, else (leaderless) the most
        advanced alive replica's — purely for observation; a standby's
        controller never acts."""
        acting = self.acting_leader()
        if acting is not None:
            return acting.controller
        alive = [replica for replica in self.replicas if replica.alive]
        if alive:
            return max(alive, key=lambda replica: replica.term).controller
        return self.replicas[0].controller

    def settled(self) -> bool:
        """Exactly one alive leader, and it is done rebuilding."""
        leaders = [
            replica
            for replica in self.replicas
            if replica.alive and replica.role == "leader"
        ]
        return len(leaders) == 1 and not leaders[0].rebuilding

    def handoff_stale(self, epoch: int) -> bool:
        """True through the acting leader's declared handoff window:
        the epoch it completed its takeover install and the one after.

        The installed snapshot predates the takeover, and the first
        re-plan on top of it may still precede the first report from an
        agent that only just learned who leads — one full coordination
        round (hear everyone → re-plan → push → apply) completes one
        epoch after install.  Coverage shortfalls inside that window
        are handoff transition, not faults; reconvergence still has to
        land within its own budget.
        """
        acting = self.acting_leader()
        if acting is None or acting.rebuilding:
            return False
        return (
            acting.installed_at is not None
            and epoch <= int(acting.installed_at) + 1
        )

    # -- beats -------------------------------------------------------------
    def _apply_faults(self, replica: ControllerReplica, now: float) -> bool:
        """Crash a held-down replica (discarding both inboxes — a dead
        process's queues drain to nowhere); returns whether the replica
        may run this beat."""
        self.bus.deliver(replica.name, now)
        self.bus.deliver(ha_address(replica.name), now)
        if replica.alive:
            replica.crash()
        return False

    def step(self, now: float, down: frozenset = frozenset()) -> None:
        """Run every replica's decision beat; *down* names replicas the
        fault plan currently holds dead."""
        for replica in self.replicas:
            if replica.name in down:
                self._apply_faults(replica, now)
                continue
            if not replica.alive:
                replica.restart(now)
            replica.step(now)
        acting = self.acting_leader()
        self.registry.gauge(
            "controller_ha_term",
            "current acting-leader election term",
        ).set(
            acting.term
            if acting is not None
            else max(replica.term for replica in self.replicas)
        )

    def finish_epoch(
        self, now: float, down: frozenset = frozenset()
    ) -> Optional[EpochRecord]:
        """Run every replica's epoch-close beat; returns the acting
        leader's epoch record (None while leaderless/rebuilding)."""
        records: Dict[str, EpochRecord] = {}
        for replica in self.replicas:
            if replica.name in down:
                self._apply_faults(replica, now)
                continue
            if not replica.alive:
                replica.restart(now)
            record = replica.finish_epoch(now)
            if record is not None:
                records[replica.name] = record
        acting = self.acting_leader()
        if acting is not None and acting.name in records:
            return records[acting.name]
        for name in self.names:
            if name in records:
                return records[name]
        return None

    # -- reporting ---------------------------------------------------------
    def summary(self) -> dict:
        """JSON-compatible snapshot of the cluster's failover history."""
        acting = self.acting_leader()
        return {
            "leader": acting.name if acting is not None else None,
            "term": acting.term if acting is not None else max(
                replica.term for replica in self.replicas
            ),
            "settled": self.settled(),
            "elections": sum(r.stats.elections for r in self.replicas),
            "depositions": sum(r.stats.depositions for r in self.replicas),
            "replicas": [
                {
                    "name": replica.name,
                    "role": replica.role,
                    "term": replica.term,
                    "alive": replica.alive,
                    "rebuilding": replica.rebuilding,
                    "log_size": len(replica.log),
                    **replica.stats.to_dict(),
                }
                for replica in self.replicas
            ],
        }
