"""Per-node NIDS agent: the node-side half of the coordination plane.

Each network node runs an agent that (paper §2.3, §5):

* measures the traffic it ingresses and exports NetFlow-style reports
  to the operations center;
* receives epoch-versioned sampling-manifest updates — full manifests
  or :func:`~repro.core.manifest_io.manifest_diff` deltas — applies
  them, and acknowledges the applied version;
* applies every update through the §5 dual-manifest window
  (:class:`~repro.core.reconfigure.TransitionPlan` semantics): new
  connections follow the new manifest immediately, while the retiring
  manifest keeps answering for pre-existing connections until the
  window expires, so no connection loses its analyzer mid-switch;
* heartbeats, so the controller can detect the NIDS process dying
  (the router keeps forwarding — only the analysis capacity is lost).

Crash/recover model a NIDS software failure: a crashed agent drops all
incoming messages and sends nothing; on recovery it restarts cold
(empty manifest, version −1) and waits for the controller to push a
full manifest.  A *warm* restart (``recover(warm=True)``) models the
process coming back holding a pre-crash manifest on disk: the state is
kept for inspection but is never served — the agent re-enters through
the degraded path and requests a full (non-delta) resync.

**Graceful degradation** (``docs/fault_model.md``): when
``AgentConfig.lease_ttl`` is set, the agent holds an *epoch lease* that
any controller message refreshes.  While the lease is valid the agent
serves its coordinated manifest; when it expires (the controller is
unreachable, or stopped renewing because it fenced this node), the
agent falls back to a locally derived **edge-only** stance — the
paper's baseline deployment, full coverage of the node's own ingress
sessions — rather than acting on configuration it can no longer trust.
It exits degradation only once a valid lease is held *and* the applied
manifest version has caught up with the newest version the controller
has announced (epoch fencing), so a stale-epoch manifest never
outlives its lease.

**Term fencing** (controller HA, ``docs/fault_model.md``): when the
controller runs replicated (:mod:`repro.control.ha`), every
controller→agent message carries the sender's election *term* as a
fencing token.  The agent tracks the highest term it has witnessed,
follows the highest-term sender as its leader, and answers anything
older with a ``nack`` — a deposed leader's deltas, lease renewals, and
repair pushes are all rejected before any blanket handler sees them,
so a partitioned ex-leader can never split-brain the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..core.manifest import NodeManifest
from ..core.manifest_index import ManifestIndex
from ..core.manifest_io import apply_manifest_delta, manifest_from_dict
from ..core.units import UnitKey
from ..measurement.flows import FlowExporter
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..traffic.session import Session
from .bus import Bus, Message
from .protocol import (
    KIND_ACK,
    KIND_HEARTBEAT,
    KIND_MANIFEST_UPDATE,
    KIND_NACK,
    KIND_REPORT,
    KIND_RESYNC_REQUEST,
)

#: Nominal wire sizes for the small fixed-format control messages.
HEARTBEAT_BYTES = 64
ACK_BYTES = 96
RESYNC_REQUEST_BYTES = 48
NACK_BYTES = 72


def report_bytes(report) -> int:
    """Approximate NetFlow report size (per-pair and per-port rows)."""
    return 64 + 24 * (len(report.pair_flows) + len(report.pair_port_flows))


@dataclass
class AgentConfig:
    """Agent-side tunables (times in seconds)."""

    heartbeat_interval: float = 1.0
    #: How long the retiring manifest keeps serving existing
    #: connections after an update is applied (§5's "until existing
    #: connections ... expire").
    transition_window: float = 2.0
    controller: str = "controller"
    #: Epoch-lease TTL in seconds; ``None`` disables the lease (the
    #: agent trusts its manifest indefinitely — the pre-hardening
    #: behaviour).  When set, lease expiry triggers edge-only fallback.
    lease_ttl: Optional[float] = None


@dataclass
class AgentStats:
    """Cumulative agent-side counters."""

    updates_applied: int = 0
    duplicates_ignored: int = 0
    resyncs_requested: int = 0
    heartbeats_sent: int = 0
    reports_sent: int = 0
    lease_expirations: int = 0
    degraded_epochs: int = 0
    stale_terms_rejected: int = 0


class _SessionTally:
    """Single-pass iterable wrapper counting sessions as they flow by.

    Lets :meth:`Agent.step` feed a streaming chunk straight into the
    flow exporter and still report the exact session count, without
    materializing the trace.
    """

    __slots__ = ("_sessions", "count")

    def __init__(self, sessions: Iterable[Session]):
        self._sessions = sessions
        self.count = 0

    def __iter__(self):
        for session in self._sessions:
            self.count += 1
            yield session


class Agent:
    """One node's coordination-plane endpoint."""

    #: Mutation switch for the seeded fault-injection tests: with term
    #: fencing disabled a stale-term delta is let through, and the
    #: chaos ``epoch-regression`` invariant must catch the damage.
    _term_fencing = True

    def __init__(
        self,
        node: str,
        bus: Bus,
        exporter: Optional[FlowExporter] = None,
        config: Optional[AgentConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.node = node
        self.bus = bus
        self.exporter = exporter or FlowExporter()
        self.config = config or AgentConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.alive = True
        self.applied_version = -1
        self.manifest = NodeManifest(node=node)
        #: (retiring manifest, window expiry time) during a transition.
        self.retiring: Optional[Tuple[NodeManifest, float]] = None
        self.stats = AgentStats()
        self._last_heartbeat = float("-inf")
        #: Edge-only fallback active (meaningful only with a lease TTL).
        self.degraded = False
        #: Absolute expiry of the current epoch lease.
        self.lease_expires_at = float("-inf")
        #: Newest configuration version the controller has announced
        #: (via lease renewals or pushes) — the epoch fence.
        self.known_version = -1
        self._needs_resync = False
        #: Highest election term witnessed — the HA fencing token.
        #: 0 until a term-stamped message arrives (single-controller
        #: deployments never stamp, so everything below stays inert).
        self.current_term = 0
        #: Term that produced the currently applied manifest.
        self.applied_term = 0
        #: Term paired with :attr:`known_version` for the epoch fence.
        self.known_term = 0
        #: Address control traffic goes to; follows the highest-term
        #: sender so a failed-over agent reports to the new leader.
        self.leader = self.config.controller
        if self.config.lease_ttl is not None:
            # Rare-event families, pre-declared so every snapshot
            # carries them (value 0 != absent).
            for name, help_text in (
                (
                    "agent_lease_expirations_total",
                    "epoch leases that expired, forcing edge-only fallback",
                ),
                (
                    "agent_duplicate_suppressions_total",
                    "duplicated/replayed manifest pushes suppressed by"
                    " the epoch fence",
                ),
                (
                    "agent_resync_requests_total",
                    "full-manifest resyncs requested from the controller",
                ),
                (
                    "agent_degraded_epochs_total",
                    "epochs a node spent in edge-only fallback",
                ),
                (
                    "agent_stale_term_rejections_total",
                    "controller messages rejected for carrying a stale"
                    " election term",
                ),
            ):
                self.registry.counter(name, help_text, labels=("node",))
        #: Compiled (manifest, index) pairs, rebuilt only when the
        #: underlying manifest object changes — batch queries between
        #: manifest pushes reuse the compilation.
        self._index: Optional[Tuple[NodeManifest, ManifestIndex]] = None
        self._retiring_index: Optional[Tuple[NodeManifest, ManifestIndex]] = None

    # -- failure model ----------------------------------------------------
    def crash(self) -> None:
        """NIDS process dies: stop analyzing, reporting, heartbeating."""
        self.alive = False

    def recover(self, warm: bool = False) -> None:
        """Process restarts.

        Cold (default): all configuration state is lost and the agent
        waits for a full manifest push.  Warm: the pre-crash manifest
        survived on disk — it is *kept* (so operators and tests can see
        what the process came back with) but never served: the applied
        version resets to −1, the lease starts expired, and a full
        (non-delta) resync is requested, so the stale ranges cannot
        outlive the restart.
        """
        self.alive = True
        self.retiring = None
        self._last_heartbeat = float("-inf")
        self.lease_expires_at = float("-inf")
        if warm:
            # Remember how far the pre-crash config had advanced: the
            # fence must not let the stale snapshot masquerade as new.
            self.known_version = max(self.known_version, self.applied_version)
            self.known_term = max(self.known_term, self.applied_term)
            self.applied_version = -1
            self.applied_term = 0
            self._needs_resync = True
        else:
            self.applied_version = -1
            self.manifest = NodeManifest(node=self.node)
            self.known_version = -1
            self._needs_resync = False
            self.current_term = 0
            self.applied_term = 0
            self.known_term = 0
            self.leader = self.config.controller
        if self.config.lease_ttl is not None:
            self.degraded = True

    # -- epoch step -------------------------------------------------------
    def step(self, now: float, sessions: Optional[Iterable[Session]] = None) -> None:
        """Process inbox, optionally measure+report, heartbeat, expire.

        Called (at least) twice per epoch by the runtime: once at epoch
        start with the node's ingress *sessions*, and once mid-epoch to
        pick up the controller's pushes.  A crashed agent drains and
        discards its inbox — messages addressed to a dead process are
        simply lost.

        *sessions* may be any iterable (including a streaming chunk
        generator): it is consumed exactly once, flowing through the
        exporter while being tallied for the dispatch counter, so the
        agent never needs the epoch's trace materialized.
        """
        inbox = self.bus.deliver(self.node, now)
        if not self.alive:
            return
        for message in inbox:
            if not self._accept_term(message, now):
                continue
            if message.src == self.leader:
                self._renew_lease(message.payload, now)
            if message.kind == KIND_MANIFEST_UPDATE:
                self._handle_update(message, now)
        self._update_degraded(now)
        if self._needs_resync:
            self.registry.counter(
                "agent_resync_requests_total",
                "full-manifest resyncs requested from the controller",
                labels=("node",),
            ).inc(node=self.node)
            self.bus.send(
                self.node,
                self.leader,
                KIND_RESYNC_REQUEST,
                {"node": self.node, "applied": self.applied_version},
                RESYNC_REQUEST_BYTES,
                now,
            )
        if sessions is not None:
            if self.degraded:
                self.stats.degraded_epochs += 1
                self.registry.counter(
                    "agent_degraded_epochs_total",
                    "epochs a node spent in edge-only fallback",
                    labels=("node",),
                ).inc(node=self.node)
            tally = _SessionTally(sessions)
            report = self.exporter.measure(
                tally, interval_seconds=self.config.heartbeat_interval
            )
            self.registry.counter(
                "agent_dispatch_sessions_total",
                "ingress sessions measured (and dispatched on) per node",
                labels=("node",),
            ).inc(tally.count, node=self.node)
            self.bus.send(
                self.node,
                self.leader,
                KIND_REPORT,
                report,
                report_bytes(report),
                now,
            )
            self.stats.reports_sent += 1
        if now - self._last_heartbeat >= self.config.heartbeat_interval - 1e-9:
            self.bus.send(
                self.node,
                self.leader,
                KIND_HEARTBEAT,
                {
                    "node": self.node,
                    "degraded": self.degraded,
                    "applied": self.applied_version,
                    "applied_term": self.applied_term,
                },
                HEARTBEAT_BYTES,
                now,
            )
            self.stats.heartbeats_sent += 1
            self._last_heartbeat = now
        if self.retiring is not None and now >= self.retiring[1]:
            self.retiring = None

    # -- HA term fencing ---------------------------------------------------
    def _accept_term(self, message: Message, now: float) -> bool:
        """Admit, adopt, or nack a message by its election term.

        Messages without a ``term`` stamp (single-controller
        deployments, agent-plane traffic) pass untouched.  A newer
        term is adopted and its sender becomes the leader this agent
        reports to; a stale term is answered with a ``nack`` carrying
        the fencing term, so a deposed leader learns it lost even with
        the replica-plane channel partitioned away.  Rejection happens
        *before* the blanket lease handler runs — a stale-term message
        can neither refresh the lease nor deliver a manifest.
        """
        payload = message.payload
        if not isinstance(payload, dict):
            return True
        term = payload.get("term")
        if not isinstance(term, int):
            return True
        if term < self.current_term and self._term_fencing:
            self.stats.stale_terms_rejected += 1
            self.registry.counter(
                "agent_stale_term_rejections_total",
                "controller messages rejected for carrying a stale"
                " election term",
                labels=("node",),
            ).inc(node=self.node)
            self.bus.send(
                self.node,
                message.src,
                KIND_NACK,
                {
                    "node": self.node,
                    "term": self.current_term,
                    "stale_term": term,
                    "applied": self.applied_version,
                },
                NACK_BYTES,
                now,
            )
            return False
        if term > self.current_term:
            self.current_term = term
        self.leader = message.src
        return True

    # -- epoch lease / graceful degradation -------------------------------
    def lease_valid(self, now: float) -> bool:
        """Whether the epoch lease is currently held (always True when
        leases are disabled)."""
        if self.config.lease_ttl is None:
            return True
        return now < self.lease_expires_at

    def _renew_lease(self, payload: object, now: float) -> None:
        """A term-admitted leader message refreshes the lease; renewal
        payloads carry an absolute expiry so every agent in a beat
        fences at the same instant.

        The handler is scoped two ways (it used to be a true blanket):
        stale-term messages never reach it — :meth:`_accept_term` has
        already nacked them — and payloads stamped ``lease: False``
        (term announcements) are inert here, because they prove
        leadership, not configuration authority, and must not extend
        the lease of a node the leader has deliberately fenced.
        """
        if self.config.lease_ttl is None:
            return
        if isinstance(payload, dict) and payload.get("lease") is False:
            return
        expires = now + self.config.lease_ttl
        if isinstance(payload, dict):
            expires = payload.get("lease_expires_at", expires)
            version = payload.get("version")
            term = payload.get("term", self.known_term)
            if isinstance(version, int) and (term, version) > (
                self.known_term,
                self.known_version,
            ):
                self.known_term = term
                self.known_version = version
        self.lease_expires_at = max(self.lease_expires_at, expires)

    def _update_degraded(self, now: float) -> None:
        """Enter/exit edge-only fallback.

        Entry: lease expiry, or no applied configuration at all (cold
        or warm restart).  Exit (epoch fencing): a valid lease *and*
        the applied version has caught up with the newest version the
        controller announced — so a renewed lease alone can never
        resurrect a stale-epoch manifest.
        """
        if self.config.lease_ttl is None:
            self.degraded = False
            return
        in_lease = now < self.lease_expires_at
        if self.degraded:
            if (
                in_lease
                and self.applied_version >= 0
                and (self.applied_term, self.applied_version)
                >= (self.known_term, self.known_version)
            ):
                self.degraded = False
        elif self.applied_version < 0 or not in_lease:
            if self.applied_version >= 0:
                # A real expiry (not a cold start): a configuration was
                # being served and its authority lapsed.
                self.stats.lease_expirations += 1
                self.registry.counter(
                    "agent_lease_expirations_total",
                    "epoch leases that expired, forcing edge-only fallback",
                    labels=("node",),
                ).inc(node=self.node)
            self.degraded = True
            # The dual-manifest window rides on the same stale
            # authority; drop it along with the current manifest.
            self.retiring = None

    def _edge_responsible(self, key: UnitKey) -> bool:
        """Locally derived edge-only stance: this node analyzes every
        unit it is an endpoint of (its own ingress/egress sessions —
        the paper's baseline deployment), and nothing it would only see
        mid-path."""
        return self.node in key

    def _ack(self, version: int, status: str, now: float) -> None:
        self.registry.counter(
            "agent_updates_total",
            "manifest updates acknowledged by outcome",
            labels=("status",),
        ).inc(status=status)
        self.bus.send(
            self.node,
            self.leader,
            KIND_ACK,
            {
                "node": self.node,
                "version": version,
                "applied": self.applied_version,
                "term": self.applied_term,
                "status": status,
            },
            ACK_BYTES,
            now,
        )

    def _handle_update(self, message: Message, now: float) -> None:
        payload: Dict = message.payload  # type: ignore[assignment]
        version = payload["version"]
        # Two leaders in different terms can mint the same version
        # number with different content, so the duplicate fence is the
        # lexicographic (term, version) pair, not the bare version.
        if self._term_fencing:
            term = payload.get("term", self.applied_term)
        else:
            term = self.applied_term
        if (term, version) <= (self.applied_term, self.applied_version):
            # Reordered or retransmitted push for an epoch at or behind
            # the fence; the manifest stays byte-identical and we re-ack
            # so the controller stops retrying.
            self.stats.duplicates_ignored += 1
            self.registry.counter(
                "agent_duplicate_suppressions_total",
                "duplicated/replayed manifest pushes suppressed by"
                " the epoch fence",
                labels=("node",),
            ).inc(node=self.node)
            self._ack(version, "duplicate", now)
            return
        if payload["mode"] == "delta":
            if self._needs_resync or payload.get("base") != self.applied_version:
                # Delta against a base we never applied (lost push,
                # cold restart), or a warm restart whose on-disk state
                # must not be trusted as a delta base: ask for a full
                # manifest instead.
                self.stats.resyncs_requested += 1
                self._ack(version, "resync", now)
                return
            new_manifest = apply_manifest_delta(self.manifest, payload["data"])
        else:
            new_manifest = manifest_from_dict(payload["data"])
        if self.applied_version >= 0 and not new_manifest.same_ranges(
            self.manifest
        ):
            # §5 dual-manifest window: retain the old responsibilities
            # for existing connections until they expire.  A content-
            # identical push (version bump only) opens no window —
            # there is nothing to hand over.
            self.retiring = (self.manifest, now + self.config.transition_window)
        self.manifest = new_manifest
        self.applied_version = version
        self.applied_term = payload.get("term", self.applied_term)
        if (self.applied_term, version) > (self.known_term, self.known_version):
            self.known_term = self.applied_term
            self.known_version = version
        self._needs_resync = False
        self.stats.updates_applied += 1
        self._ack(version, "applied", now)

    # -- dispatch-facing queries (TransitionPlan semantics, per node) ----
    @property
    def in_transition(self) -> bool:
        """Whether a dual-manifest window is currently open."""
        return self.retiring is not None

    def responsible_for_new(
        self, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should this node take on a NEW connection? (new manifest)

        While degraded the coordinated manifest is not consulted at
        all: the node answers from the edge-only stance, taking every
        session it is an endpoint of.
        """
        if not self.alive:
            return False
        if self.degraded:
            return self._edge_responsible(key)
        return self.manifest.contains(class_name, key, hash_value)

    def responsible_for_existing(
        self, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should this node keep analyzing an EXISTING connection?

        Union of the current and retiring manifests, exactly like
        :meth:`repro.core.reconfigure.TransitionPlan.responsible_for_existing`.
        Degraded, the answer is the edge-only stance — the stale
        manifest is refused for existing connections too, because the
        ranges it cedes to other nodes can no longer be trusted to be
        picked up by anyone.
        """
        if not self.alive:
            return False
        if self.degraded:
            return self._edge_responsible(key)
        if self.manifest.contains(class_name, key, hash_value):
            return True
        return self.retiring is not None and self.retiring[0].contains(
            class_name, key, hash_value
        )

    # -- batch dispatch (vectorized fast path) ---------------------------
    def _index_for(self, manifest: NodeManifest, retiring: bool) -> ManifestIndex:
        cached = self._retiring_index if retiring else self._index
        if cached is None or cached[0] is not manifest:
            cached = (manifest, ManifestIndex(manifest))
            if retiring:
                self._retiring_index = cached
            else:
                self._index = cached
        return cached[1]

    def responsible_for_new_batch(
        self, class_name: str, key: UnitKey, hash_values
    ) -> "object":
        """Vectorized :meth:`responsible_for_new` over a hash array.

        Returns a boolean NumPy array; element-wise identical to the
        scalar query.  This is how the agent consumes a whole epoch's
        sessions in one pass instead of one range scan per session.
        """
        import numpy as np

        if not self.alive:
            return np.zeros(len(hash_values), dtype=bool)
        if self.degraded:
            return np.full(
                len(hash_values), self._edge_responsible(key), dtype=bool
            )
        return self._index_for(self.manifest, retiring=False).contains_batch(
            class_name, key, hash_values
        )

    def responsible_for_existing_batch(
        self, class_name: str, key: UnitKey, hash_values
    ) -> "object":
        """Vectorized :meth:`responsible_for_existing` (union of the
        current and retiring manifests) over a hash array."""
        import numpy as np

        if not self.alive:
            return np.zeros(len(hash_values), dtype=bool)
        if self.degraded:
            return np.full(
                len(hash_values), self._edge_responsible(key), dtype=bool
            )
        mask = self._index_for(self.manifest, retiring=False).contains_batch(
            class_name, key, hash_values
        )
        if self.retiring is not None:
            mask = mask | self._index_for(
                self.retiring[0], retiring=True
            ).contains_batch(class_name, key, hash_values)
        return mask
