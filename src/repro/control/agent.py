"""Per-node NIDS agent: the node-side half of the coordination plane.

Each network node runs an agent that (paper §2.3, §5):

* measures the traffic it ingresses and exports NetFlow-style reports
  to the operations center;
* receives epoch-versioned sampling-manifest updates — full manifests
  or :func:`~repro.core.manifest_io.manifest_diff` deltas — applies
  them, and acknowledges the applied version;
* applies every update through the §5 dual-manifest window
  (:class:`~repro.core.reconfigure.TransitionPlan` semantics): new
  connections follow the new manifest immediately, while the retiring
  manifest keeps answering for pre-existing connections until the
  window expires, so no connection loses its analyzer mid-switch;
* heartbeats, so the controller can detect the NIDS process dying
  (the router keeps forwarding — only the analysis capacity is lost).

Crash/recover model a NIDS software failure: a crashed agent drops all
incoming messages and sends nothing; on recovery it restarts cold
(empty manifest, version −1) and waits for the controller to push a
full manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..core.manifest import NodeManifest
from ..core.manifest_index import ManifestIndex
from ..core.manifest_io import apply_manifest_delta, manifest_from_dict
from ..core.units import UnitKey
from ..measurement.flows import FlowExporter
from ..obs import MetricsRegistry, NULL_REGISTRY
from ..traffic.session import Session
from .bus import Bus, Message

#: Nominal wire sizes for the small fixed-format control messages.
HEARTBEAT_BYTES = 64
ACK_BYTES = 96


def report_bytes(report) -> int:
    """Approximate NetFlow report size (per-pair and per-port rows)."""
    return 64 + 24 * (len(report.pair_flows) + len(report.pair_port_flows))


@dataclass
class AgentConfig:
    """Agent-side tunables (times in seconds)."""

    heartbeat_interval: float = 1.0
    #: How long the retiring manifest keeps serving existing
    #: connections after an update is applied (§5's "until existing
    #: connections ... expire").
    transition_window: float = 2.0
    controller: str = "controller"


@dataclass
class AgentStats:
    """Cumulative agent-side counters."""

    updates_applied: int = 0
    duplicates_ignored: int = 0
    resyncs_requested: int = 0
    heartbeats_sent: int = 0
    reports_sent: int = 0


class Agent:
    """One node's coordination-plane endpoint."""

    def __init__(
        self,
        node: str,
        bus: Bus,
        exporter: Optional[FlowExporter] = None,
        config: Optional[AgentConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.node = node
        self.bus = bus
        self.exporter = exporter or FlowExporter()
        self.config = config or AgentConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.alive = True
        self.applied_version = -1
        self.manifest = NodeManifest(node=node)
        #: (retiring manifest, window expiry time) during a transition.
        self.retiring: Optional[Tuple[NodeManifest, float]] = None
        self.stats = AgentStats()
        self._last_heartbeat = float("-inf")
        #: Compiled (manifest, index) pairs, rebuilt only when the
        #: underlying manifest object changes — batch queries between
        #: manifest pushes reuse the compilation.
        self._index: Optional[Tuple[NodeManifest, ManifestIndex]] = None
        self._retiring_index: Optional[Tuple[NodeManifest, ManifestIndex]] = None

    # -- failure model ----------------------------------------------------
    def crash(self) -> None:
        """NIDS process dies: stop analyzing, reporting, heartbeating."""
        self.alive = False

    def recover(self) -> None:
        """Process restarts cold: all configuration state is lost."""
        self.alive = True
        self.applied_version = -1
        self.manifest = NodeManifest(node=self.node)
        self.retiring = None
        self._last_heartbeat = float("-inf")

    # -- epoch step -------------------------------------------------------
    def step(self, now: float, sessions: Optional[Sequence[Session]] = None) -> None:
        """Process inbox, optionally measure+report, heartbeat, expire.

        Called (at least) twice per epoch by the runtime: once at epoch
        start with the node's ingress *sessions*, and once mid-epoch to
        pick up the controller's pushes.  A crashed agent drains and
        discards its inbox — messages addressed to a dead process are
        simply lost.
        """
        inbox = self.bus.deliver(self.node, now)
        if not self.alive:
            return
        for message in inbox:
            if message.kind == "manifest-update":
                self._handle_update(message, now)
        if sessions is not None:
            self.registry.counter(
                "agent_dispatch_sessions_total",
                "ingress sessions measured (and dispatched on) per node",
                labels=("node",),
            ).inc(len(sessions), node=self.node)
            report = self.exporter.measure(
                sessions, interval_seconds=self.config.heartbeat_interval
            )
            self.bus.send(
                self.node,
                self.config.controller,
                "report",
                report,
                report_bytes(report),
                now,
            )
            self.stats.reports_sent += 1
        if now - self._last_heartbeat >= self.config.heartbeat_interval - 1e-9:
            self.bus.send(
                self.node,
                self.config.controller,
                "heartbeat",
                {"node": self.node},
                HEARTBEAT_BYTES,
                now,
            )
            self.stats.heartbeats_sent += 1
            self._last_heartbeat = now
        if self.retiring is not None and now >= self.retiring[1]:
            self.retiring = None

    def _ack(self, version: int, status: str, now: float) -> None:
        self.registry.counter(
            "agent_updates_total",
            "manifest updates acknowledged by outcome",
            labels=("status",),
        ).inc(status=status)
        self.bus.send(
            self.node,
            self.config.controller,
            "ack",
            {
                "node": self.node,
                "version": version,
                "applied": self.applied_version,
                "status": status,
            },
            ACK_BYTES,
            now,
        )

    def _handle_update(self, message: Message, now: float) -> None:
        payload: Dict = message.payload  # type: ignore[assignment]
        version = payload["version"]
        if version <= self.applied_version:
            # Reordered or retransmitted push we already hold; re-ack so
            # the controller stops retrying.
            self.stats.duplicates_ignored += 1
            self._ack(version, "duplicate", now)
            return
        if payload["mode"] == "delta":
            if payload.get("base") != self.applied_version:
                # Delta against a base we never applied (lost push or
                # cold restart): ask for a full manifest instead.
                self.stats.resyncs_requested += 1
                self._ack(version, "resync", now)
                return
            new_manifest = apply_manifest_delta(self.manifest, payload["data"])
        else:
            new_manifest = manifest_from_dict(payload["data"])
        if self.applied_version >= 0:
            # §5 dual-manifest window: retain the old responsibilities
            # for existing connections until they expire.
            self.retiring = (self.manifest, now + self.config.transition_window)
        self.manifest = new_manifest
        self.applied_version = version
        self.stats.updates_applied += 1
        self._ack(version, "applied", now)

    # -- dispatch-facing queries (TransitionPlan semantics, per node) ----
    @property
    def in_transition(self) -> bool:
        """Whether a dual-manifest window is currently open."""
        return self.retiring is not None

    def responsible_for_new(
        self, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should this node take on a NEW connection? (new manifest)"""
        return self.alive and self.manifest.contains(class_name, key, hash_value)

    def responsible_for_existing(
        self, class_name: str, key: UnitKey, hash_value: float
    ) -> bool:
        """Should this node keep analyzing an EXISTING connection?

        Union of the current and retiring manifests, exactly like
        :meth:`repro.core.reconfigure.TransitionPlan.responsible_for_existing`.
        """
        if not self.alive:
            return False
        if self.manifest.contains(class_name, key, hash_value):
            return True
        return self.retiring is not None and self.retiring[0].contains(
            class_name, key, hash_value
        )

    # -- batch dispatch (vectorized fast path) ---------------------------
    def _index_for(self, manifest: NodeManifest, retiring: bool) -> ManifestIndex:
        cached = self._retiring_index if retiring else self._index
        if cached is None or cached[0] is not manifest:
            cached = (manifest, ManifestIndex(manifest))
            if retiring:
                self._retiring_index = cached
            else:
                self._index = cached
        return cached[1]

    def responsible_for_new_batch(
        self, class_name: str, key: UnitKey, hash_values
    ) -> "object":
        """Vectorized :meth:`responsible_for_new` over a hash array.

        Returns a boolean NumPy array; element-wise identical to the
        scalar query.  This is how the agent consumes a whole epoch's
        sessions in one pass instead of one range scan per session.
        """
        import numpy as np

        if not self.alive:
            return np.zeros(len(hash_values), dtype=bool)
        return self._index_for(self.manifest, retiring=False).contains_batch(
            class_name, key, hash_values
        )

    def responsible_for_existing_batch(
        self, class_name: str, key: UnitKey, hash_values
    ) -> "object":
        """Vectorized :meth:`responsible_for_existing` (union of the
        current and retiring manifests) over a hash array."""
        import numpy as np

        if not self.alive:
            return np.zeros(len(hash_values), dtype=bool)
        mask = self._index_for(self.manifest, retiring=False).contains_batch(
            class_name, key, hash_values
        )
        if self.retiring is not None:
            mask = mask | self._index_for(
                self.retiring[0], retiring=True
            ).contains_batch(class_name, key, hash_values)
        return mask
