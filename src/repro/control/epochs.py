"""Epoch bookkeeping for the coordination plane.

"ISPs typically collect traffic reports (e.g., NetFlow, SNMP) every
few minutes, and since NIDS configurations would typically be driven
from such reports, we envision needing to reconfigure NIDS with
roughly the same frequency" (paper §5).  An *epoch* is one such
reporting/reconfiguration interval.  This module holds the pieces the
epoch loop shares:

* :class:`EpochRecord` — the per-epoch metrics row the controller and
  scenario runner emit (coverage, reconfiguration lag, duplicated
  work, bytes on the wire);
* :func:`merge_reports` — fold per-agent NetFlow reports into the
  network-wide report the planner consumes;
* :func:`stabilize_manifests` — per-unit churn suppression: when a
  re-solve moves a unit's hash ranges by less than a tolerance, keep
  the previous epoch's ranges (consistently for *all* nodes of the
  unit, preserving the coverage invariant), so steady-state delta
  pushes stay near-empty;
* :func:`coverage_metrics` — evaluate what fraction of the measured
  traffic the currently *applied* manifests actually cover.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.manifest import NodeManifest
from ..core.units import CoordinationUnit, UnitKey
from ..hashing.ranges import EPSILON, HashRange
from ..measurement.flows import TrafficReport

Ident = Tuple[str, UnitKey]


@dataclass
class EpochRecord:
    """One epoch's worth of coordination-plane metrics."""

    epoch: int
    time: float
    sessions: int = 0
    failed_nodes: Tuple[str, ...] = ()
    #: Why the controller produced new manifests this epoch
    #: ("bootstrap", "drift", "periodic", "failure", "recovery"), or ""
    #: if the configuration was left untouched.
    resolved: str = ""
    config_version: int = -1
    pushes_full: int = 0
    pushes_delta: int = 0
    #: Bytes actually pushed (deltas where chosen, fulls otherwise).
    push_bytes: int = 0
    #: What pushing full manifests to the same recipients would cost.
    full_equivalent_bytes: int = 0
    #: Fraction of (node, unit) manifest entries unchanged vs. the
    #: previous configuration (1.0 when nothing was re-solved).
    unchanged_entry_fraction: float = 1.0
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Volume-weighted fraction of observable traffic covered by the
    #: live agents' applied manifests at epoch end.
    coverage: float = 1.0
    #: Worst single-unit coverage (diagnostic; 1.0 when converged).
    min_unit_coverage: float = 1.0
    #: Volume fraction whose entire eligible set is failed.
    orphaned_fraction: float = 0.0
    #: Volume-weighted hash-space mass analyzed at >1 node during this
    #: epoch's dual-manifest window (0 outside reconfigurations).
    duplicated_fraction: float = 0.0
    #: Seconds from pushing a configuration to its last acknowledgement
    #: (0 when nothing was pushed or acks are still pending).
    reconfig_lag: float = 0.0
    #: Whether every live node had acknowledged the current
    #: configuration by epoch end.
    converged: bool = True
    #: Whether the epoch is part of a transition window (configuration
    #: still propagating, or a failure not yet repaired).
    in_transition: bool = False
    #: Live nodes fenced out of coordinated planning because they
    #: self-reported edge-only degradation (lease expired).
    fenced_nodes: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-compatible dict (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["failed_nodes"] = list(self.failed_nodes)
        data["fenced_nodes"] = list(self.fenced_nodes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EpochRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        fields = dict(data)
        fields["failed_nodes"] = tuple(fields.get("failed_nodes", ()))
        fields["fenced_nodes"] = tuple(fields.get("fenced_nodes", ()))
        return cls(**fields)


def merge_reports(reports: Iterable[TrafficReport]) -> TrafficReport:
    """Fold per-agent reports into one network-wide traffic report.

    Agents report the pairs they ingress, so pair keys are naturally
    disjoint across agents; summing keeps the merge correct even if a
    pair were reported twice (e.g. duplicated delivery).
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to merge")
    merged = TrafficReport(
        interval_seconds=reports[0].interval_seconds,
        sampling_rate=reports[0].sampling_rate,
    )
    for report in reports:
        for pair, value in report.pair_flows.items():
            merged.pair_flows[pair] = merged.pair_flows.get(pair, 0.0) + value
        for pair, value in report.pair_packets.items():
            merged.pair_packets[pair] = merged.pair_packets.get(pair, 0.0) + value
        for key, value in report.pair_port_flows.items():
            merged.pair_port_flows[key] = (
                merged.pair_port_flows.get(key, 0.0) + value
            )
        for key, value in report.pair_port_packets.items():
            merged.pair_port_packets[key] = (
                merged.pair_port_packets.get(key, 0.0) + value
            )
    return merged


def union_length(ranges: Sequence[HashRange]) -> float:
    """Measure of the union of *ranges* (need not be disjoint)."""
    ordered = sorted((r for r in ranges if not r.empty), key=lambda r: r.lo)
    total = 0.0
    cursor = 0.0
    for r in ordered:
        lo = max(r.lo, cursor)
        if r.hi > lo:
            total += r.hi - lo
            cursor = r.hi
    return total


def _ranges_close(
    a: Tuple[HashRange, ...], b: Tuple[HashRange, ...], tolerance: float
) -> bool:
    if len(a) != len(b):
        return False
    a_sorted = sorted(a, key=lambda r: r.lo)
    b_sorted = sorted(b, key=lambda r: r.lo)
    return all(
        abs(x.lo - y.lo) <= tolerance and abs(x.hi - y.hi) <= tolerance
        for x, y in zip(a_sorted, b_sorted)
    )


def stabilize_manifests(
    previous: Dict[str, NodeManifest],
    proposed: Dict[str, NodeManifest],
    tolerance: float,
    allowed: Optional[Dict[Ident, Set[str]]] = None,
) -> Tuple[Dict[str, NodeManifest], Set[Ident]]:
    """Suppress sub-tolerance churn between two manifest sets.

    For each coordination unit, if every node's proposed ranges sit
    within *tolerance* of the previous epoch's (same holders, each
    endpoint moved at most *tolerance*), the previous ranges are kept —
    for **all** nodes of the unit at once, so the exact-coverage and
    disjointness invariants carry over from the previous (verified)
    configuration.  Units that moved materially adopt the proposed
    ranges.

    *allowed* optionally maps unit identity to the nodes permitted to
    hold it (the unit's current live eligible set); previous ranges
    are only reused when their holders are all still permitted, which
    keeps stabilization from resurrecting a failed node's assignment.

    Returns the stabilized manifests plus the set of units that
    actually changed.  LP optima move continuously with the measured
    volumes, so without this step *every* entry would differ every
    epoch and delta pushes would degenerate to full pushes.
    """
    idents: Set[Ident] = set()
    for manifest in proposed.values():
        idents.update(manifest.entries)

    result = {
        node: NodeManifest(node=node, full=manifest.full)
        for node, manifest in proposed.items()
    }
    changed: Set[Ident] = set()
    # Sorted so per-node entry dicts build in one canonical order for
    # every input ordering (REP202: sets iterate in hash order).
    for ident in sorted(idents):
        old_holders = {
            node: manifest.entries[ident]
            for node, manifest in previous.items()
            if ident in manifest.entries
        }
        new_holders = {
            node: manifest.entries[ident]
            for node, manifest in proposed.items()
            if ident in manifest.entries
        }
        reusable = (
            bool(old_holders)
            and set(old_holders) == set(new_holders)
            and (allowed is None or set(old_holders) <= allowed.get(ident, set()))
            and all(
                _ranges_close(old_holders[node], new_holders[node], tolerance)
                for node in old_holders
            )
        )
        source = old_holders if reusable else new_holders
        if not reusable:
            changed.add(ident)
        for node, ranges in source.items():
            result[node].entries[ident] = ranges
    return result, changed


@dataclass
class CoverageSummary:
    """Applied-manifest coverage of one epoch's measured traffic."""

    #: Volume-weighted coverage of observable units (>= 1 live
    #: eligible node); 1.0 when there is nothing observable.
    coverage: float
    #: Worst per-unit coverage among observable units.
    min_unit_coverage: float
    #: Volume fraction of units with no live eligible node at all.
    orphaned_fraction: float
    #: Units (with volume share) currently not fully covered.
    uncovered: List[Tuple[Ident, float]] = field(default_factory=list)


def coverage_metrics(
    units: Sequence[CoordinationUnit],
    manifests: Dict[str, NodeManifest],
    live: Set[str],
) -> CoverageSummary:
    """How much of *units*' traffic the live applied manifests cover.

    A unit's coverage is the measure of the union of the ranges held by
    its *live* eligible nodes, clamped to 1.  Units whose entire
    eligible set is down are *orphaned* — nobody can observe that
    traffic, so it is excluded from the coverage denominator and
    reported separately (the paper's singleton-unit caveat: a Scan
    unit at a dead ingress simply has no substitute observer).
    """
    total = sum(unit.pkts for unit in units)
    observable = 0.0
    covered_mass = 0.0
    orphaned_mass = 0.0
    min_cov = 1.0
    uncovered: List[Tuple[Ident, float]] = []
    for unit in units:
        live_eligible = [node for node in unit.eligible if node in live]
        if not live_eligible:
            orphaned_mass += unit.pkts
            continue
        held: List[HashRange] = []
        for node in live_eligible:
            manifest = manifests.get(node)
            if manifest is not None:
                held.extend(manifest.ranges(unit.class_name, unit.key))
        covered = min(1.0, union_length(held))
        observable += unit.pkts
        covered_mass += unit.pkts * covered
        if covered < min_cov:
            min_cov = covered
        if covered < 1.0 - EPSILON:
            uncovered.append((unit.ident, unit.pkts / total if total else 0.0))
    coverage = covered_mass / observable if observable > 0 else 1.0
    uncovered.sort(key=lambda item: -item[1])
    return CoverageSummary(
        coverage=coverage,
        min_unit_coverage=min_cov,
        orphaned_fraction=orphaned_mass / total if total > 0 else 0.0,
        uncovered=uncovered,
    )
