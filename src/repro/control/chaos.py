"""Chaos injection and invariant monitoring for the coordination plane.

The scripted scenarios (:mod:`repro.control.scenarios`) exercise clean
crashes and uniform message loss.  This module subjects the same
controller–agent runtime to *adversarial* fault schedules — the kind
distributed-NIDS deployments actually face — and proves, per epoch,
that graceful degradation holds the paper's coverage guarantees
(``docs/fault_model.md``):

* a deterministic, seeded :class:`FaultPlan` of timed
  :class:`FaultEvent` s: asymmetric partitions, loss and delay bursts,
  message duplication, reordering beyond channel jitter, agent
  crash/warm-restart-with-stale-epoch, controller outage windows;
* :class:`ChaosBus`, a :class:`~repro.control.bus.Bus` subclass that
  applies the plan's channel faults to every admitted message via the
  ``_admit`` extension point (process faults — crashes, controller
  outages — are applied by the runner);
* :class:`InvariantMonitor`, which checks after every epoch that
  (1) no session whose edge-only baseline would cover it goes
  unanalyzed outside a declared transition window, (2) no stale-epoch
  manifest is served past its lease, (3) the plane reconverges to
  a coordinated configuration within a bounded number of epochs after
  the last fault heals, and — under controller HA
  (:mod:`repro.control.ha`) — (4) at most one acting leader exists per
  term at every epoch boundary and no leader ignores higher-term
  evidence, and (5) no agent's applied ``(term, version)`` pair ever
  regresses across a takeover;
* :func:`run_chaos`, the epoch driver scoring a run the way
  :func:`~repro.control.scenarios.run_scenario` does, exposed as
  ``repro control chaos``.

All randomness is seeded (REP002): the same plan, seed, and topology
replay the exact same fault schedule, so a CI failure is reproducible
locally with the seed it prints.
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.units import build_units, unit_key_for_session
from ..hashing.keys import key_hash_unit
from ..hashing.ranges import HashRange
from ..measurement.flows import FlowExporter
from ..nids.modules import STANDARD_MODULES
from ..nids.modules.base import ModuleSpec
from ..obs import MetricsRegistry, NULL_REGISTRY, use_registry
from ..topology import PathSet, by_label
from ..traffic.dynamics import DiurnalBurstModel
from ..traffic.session import Session
from .agent import Agent, AgentConfig
from .bus import Bus, BusConfig, BusStats, Message
from .controller import Controller, ControllerConfig, ControllerStats
from .epochs import EpochRecord, coverage_metrics
from .ha import HACluster, HAConfig, base_identity, replica_name
from .scenarios import (
    COVERAGE_FLOOR,
    ScenarioConfig,
    session_pools,
)

#: Fault kinds the channel layer applies per admitted message.
CHANNEL_FAULTS = ("partition", "loss_burst", "delay_burst", "duplicate", "reorder")
#: Fault kinds the epoch runner applies to processes.
PROCESS_FAULTS = ("crash", "controller_down")
FAULT_KINDS = CHANNEL_FAULTS + PROCESS_FAULTS


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault, active over ``[start, end)`` scenario seconds.

    Field use by kind:

    * ``partition`` — drop messages from *src* to *dst* (either may be
      ``None`` = any): an asymmetric partition drops one direction only.
    * ``loss_burst`` — drop each message with probability *rate*.
    * ``delay_burst`` — delay every message by *delay* extra seconds.
    * ``duplicate`` — with probability *rate*, deliver a second copy
      *delay* seconds after the original.
    * ``reorder`` — with probability *rate*, hold a message back by
      *delay* seconds (beyond channel jitter), overtaking later sends.
    * ``crash`` — *node*'s NIDS process dies at *start* and restarts at
      *end*; ``warm=True`` restarts it holding its pre-crash manifest.
    * ``controller_down`` — a controller process is down: it takes no
      epoch beats and messages addressed to it (either plane) are
      lost.  Under HA, *node* names the specific replica held down
      (``None`` = every replica).
    """

    kind: str
    start: float
    end: float
    src: Optional[str] = None
    dst: Optional[str] = None
    node: Optional[str] = None
    rate: float = 0.0
    delay: float = 0.0
    warm: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not self.start < self.end:
            raise ValueError(f"fault window must satisfy start < end, got "
                             f"[{self.start}, {self.end})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        if self.kind == "crash" and not self.node:
            raise ValueError("crash fault needs a node")
        if self.kind in ("loss_burst", "duplicate", "reorder") and self.rate <= 0:
            raise ValueError(f"{self.kind} fault needs rate > 0")
        if self.kind in ("delay_burst", "reorder") and self.delay <= 0:
            raise ValueError(f"{self.kind} fault needs delay > 0")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def to_dict(self) -> dict:
        """JSON-compatible dict of the fault event."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, validated schedule of fault events."""

    name: str
    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        crashed: Set[str] = set()
        for event in self.events:
            if event.kind == "crash":
                if event.node in crashed:
                    raise ValueError(
                        f"plan {self.name!r}: node {event.node!r} has"
                        " overlapping crash events"
                    )
                crashed.add(event.node)

    @property
    def heal_time(self) -> float:
        """When the last fault window closes (0.0 for an empty plan)."""
        return max((event.end for event in self.events), default=0.0)

    def controller_down(self, now: float, name: Optional[str] = None) -> bool:
        """Whether a controller process is held down at *now*.

        With *name* the check is per replica: an event whose ``node``
        is ``None`` downs every replica, otherwise only the named one.
        Without *name* (single-controller callers) any active
        ``controller_down`` event counts.
        """
        for event in self.events:
            if event.kind != "controller_down" or not event.active(now):
                continue
            if event.node is None or name is None or event.node == name:
                return True
        return False

    def channel_events(self, now: float) -> List[FaultEvent]:
        return [
            e
            for e in self.events
            if e.kind in CHANNEL_FAULTS + ("controller_down",) and e.active(now)
        ]

    def crash_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == "crash"]

    def to_dict(self) -> dict:
        """JSON-compatible dict of the plan and its events."""
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            events=tuple(
                FaultEvent.from_dict(event)
                for event in data.get("events", ())
            ),
        )


class ChaosBus(Bus):
    """A :class:`Bus` whose channel executes a :class:`FaultPlan`.

    Only the ``_admit`` extension point is overridden: the base class
    still accounts every send and applies its own (uniform) loss and
    jitter first; the chaos layer then decides the admitted message's
    fate.  All chaos randomness comes from a dedicated seeded RNG, so
    the fault schedule replays identically for a given seed regardless
    of how much base-channel randomness was consumed.
    """

    def __init__(
        self,
        plan: FaultPlan,
        config: Optional[BusConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        chaos_seed: int = 0,
        controller: str = "controller",
        controller_names: Optional[Sequence[str]] = None,
    ):
        super().__init__(config, registry)
        self.plan = plan
        self.controller_name = controller
        #: Every controller process identity (HA replicas); fault
        #: matching strips the ``#ha`` plane suffix, so an event naming
        #: a replica severs both of its planes at once.
        self.controller_names: Tuple[str, ...] = (
            tuple(controller_names) if controller_names else (controller,)
        )
        self._chaos_rng = random.Random(chaos_seed ^ 0x5EED)
        # Pre-declared so a fault-free run still exports the family.
        self._injected = self.registry.counter(
            "chaos_injected_total",
            "fault-plan interventions applied to admitted messages",
            labels=("fault",),
        )

    def _matches_partition(self, event: FaultEvent, message: Message) -> bool:
        src = base_identity(message.src)
        dst = base_identity(message.dst)
        return (event.src is None or event.src == src) and (
            event.dst is None or event.dst == dst
        )

    def _admit(self, message: Message, now: float) -> Optional[Message]:
        rng = self._chaos_rng
        for event in self.plan.channel_events(now):
            kind = event.kind
            if kind == "partition":
                if self._matches_partition(event, message):
                    self._injected.inc(fault="partition")
                    self._drop_admitted(message)
                    return None
            elif kind == "controller_down":
                # A dead process receives nothing; its own sends are
                # suppressed by the runner not stepping it.
                identity = base_identity(message.dst)
                if identity in self.controller_names and (
                    event.node is None or event.node == identity
                ):
                    self._injected.inc(fault="controller_down")
                    self._drop_admitted(message)
                    return None
            elif kind == "loss_burst":
                if rng.random() < event.rate:
                    self._injected.inc(fault="loss_burst")
                    self._drop_admitted(message)
                    return None
            elif kind == "delay_burst":
                self._injected.inc(fault="delay_burst")
                message = dataclasses.replace(
                    message, deliver_at=message.deliver_at + event.delay
                )
            elif kind == "reorder":
                if rng.random() < event.rate:
                    # Held back past messages sent after it — reordering
                    # beyond anything channel jitter produces.
                    self._injected.inc(fault="reorder")
                    message = dataclasses.replace(
                        message, deliver_at=message.deliver_at + event.delay
                    )
            elif kind == "duplicate":
                if rng.random() < event.rate:
                    self._injected.inc(fault="duplicate")
                    self._seq += 1
                    copy = dataclasses.replace(
                        message,
                        deliver_at=message.deliver_at + max(event.delay, 0.01),
                        seq=self._seq,
                    )
                    self._in_flight.append(copy)
        return super()._admit(message, now)


# ---------------------------------------------------------------------------
# Named plans


def _controller_outage(epochs: int, nodes: Sequence[str], rng: random.Random
                       ) -> Tuple[FaultEvent, ...]:
    """The acceptance-criterion plan: a total operations-center outage
    long enough that every agent's lease expires mid-window."""
    start = 4.0
    end = min(float(epochs) - 6.0, start + 5.0)
    return (FaultEvent(kind="controller_down", start=start, end=end),)


def _asym_partition(epochs: int, nodes: Sequence[str], rng: random.Random
                    ) -> Tuple[FaultEvent, ...]:
    """Controller→agent direction cut only: the agent's heartbeats
    still arrive (so it is never declared dead) but it hears no
    renewals — the lease is what turns this silent staleness into
    explicit edge-only fallback."""
    node = rng.choice(sorted(nodes))
    return (
        FaultEvent(
            kind="partition", start=4.0, end=min(float(epochs) - 6.0, 9.0),
            src="controller", dst=node,
        ),
    )


def _agent_restart_stale(epochs: int, nodes: Sequence[str], rng: random.Random
                         ) -> Tuple[FaultEvent, ...]:
    """Crash an agent and warm-restart it holding its pre-crash
    manifest, under duplicated delivery — the §5 recovery-with-stale-
    state case plus idempotency stress."""
    node = rng.choice(sorted(nodes))
    return (
        FaultEvent(kind="crash", start=4.0, end=7.0, node=node, warm=True),
        FaultEvent(kind="duplicate", start=3.0, end=min(float(epochs) - 6.0, 10.0),
                   rate=0.5, delay=0.12),
    )


def _lossy_burst(epochs: int, nodes: Sequence[str], rng: random.Random
                 ) -> Tuple[FaultEvent, ...]:
    """Correlated channel degradation: a loss burst overlapping delay,
    duplication, and reordering windows."""
    end = min(float(epochs) - 6.0, 9.0)
    return (
        FaultEvent(kind="loss_burst", start=4.0, end=end, rate=0.3),
        FaultEvent(kind="delay_burst", start=4.5, end=end, delay=0.1),
        FaultEvent(kind="duplicate", start=4.0, end=end, rate=0.3, delay=0.15),
        FaultEvent(kind="reorder", start=4.0, end=end, rate=0.3, delay=0.3),
    )


def _leader_crash_mid_push(epochs: int, nodes: Sequence[str], rng: random.Random
                           ) -> Tuple[FaultEvent, ...]:
    """HA acceptance plan 1: the acting leader dies *between* its push
    beat and its ack beat — agents hold an applied-but-unacknowledged
    configuration the standbys only know through the epoch log.  A
    standby must promote, rebuild from log + heartbeat claims, and
    resume coordinated service without ever regressing an epoch."""
    return (
        FaultEvent(
            kind="controller_down",
            start=0.4,
            end=min(float(epochs) - 6.0, 12.0),
            node=replica_name(0),
        ),
    )


def _leader_partition(epochs: int, nodes: Sequence[str], rng: random.Random
                      ) -> Tuple[FaultEvent, ...]:
    """HA acceptance plan 2: the acting leader is partitioned away with
    a quarter of the agents still on its side — it keeps serving them
    at its old term while a standby promotes for the majority side.
    Dual leadership in *distinct* terms is legal during the partition;
    after it heals the old leader must depose on first higher-term
    evidence (announce or agent nack) and no agent's applied
    ``(term, version)`` may regress."""
    ordered = sorted(nodes)
    old_side = sorted(rng.sample(ordered, max(1, len(ordered) // 4)))
    far_side = [n for n in ordered if n not in set(old_side)]
    leader = replica_name(0)
    standbys = (replica_name(1), replica_name(2))
    start = 4.0
    end = min(float(epochs) - 6.0, 10.0)
    events: List[FaultEvent] = []
    for peer in standbys:
        events.append(FaultEvent(kind="partition", start=start, end=end,
                                 src=leader, dst=peer))
        events.append(FaultEvent(kind="partition", start=start, end=end,
                                 src=peer, dst=leader))
    for node in far_side:
        events.append(FaultEvent(kind="partition", start=start, end=end,
                                 src=leader, dst=node))
        events.append(FaultEvent(kind="partition", start=start, end=end,
                                 src=node, dst=leader))
    for node in old_side:
        for peer in standbys:
            events.append(FaultEvent(kind="partition", start=start, end=end,
                                     src=peer, dst=node))
            events.append(FaultEvent(kind="partition", start=start, end=end,
                                     src=node, dst=peer))
    return tuple(events)


NAMED_PLANS = {
    "controller-outage": _controller_outage,
    "asym-partition": _asym_partition,
    "agent-restart-stale": _agent_restart_stale,
    "lossy-burst": _lossy_burst,
    "leader-crash-mid-push": _leader_crash_mid_push,
    "leader-partition": _leader_partition,
}

#: Minimum replica count a named plan needs; the runner raises the
#: configured count to this floor so the HA acceptance plans run
#: unchanged under ``repro control chaos`` and ``repro sweep``.
HA_PLAN_REPLICAS = {
    "leader-crash-mid-push": 3,
    "leader-partition": 3,
}


def random_fault_plan(
    seed: int, epochs: int, nodes: Sequence[str]
) -> FaultPlan:
    """A seeded adversarial schedule of 2–4 faults.

    Windows all close by ``epochs - 5`` so every plan leaves room for
    the reconvergence invariant to be judged.
    """
    rng = random.Random(seed)
    horizon = float(epochs) - 5.0
    if horizon <= 3.0:
        raise ValueError(
            f"need at least 9 epochs for a random plan, got {epochs}"
        )
    ordered = sorted(nodes)
    events: List[FaultEvent] = []
    crashed: Set[str] = set()
    for _ in range(rng.randint(2, 4)):
        start = round(rng.uniform(2.0, horizon - 1.5), 2)
        end = round(min(horizon, start + rng.uniform(1.0, 4.0)), 2)
        kind = rng.choice(
            ("partition", "loss_burst", "delay_burst", "duplicate",
             "reorder", "crash", "controller_down")
        )
        if kind == "partition":
            events.append(FaultEvent(
                kind=kind, start=start, end=end,
                src="controller", dst=rng.choice(ordered),
            ))
        elif kind == "loss_burst":
            events.append(FaultEvent(
                kind=kind, start=start, end=end,
                rate=round(rng.uniform(0.1, 0.4), 2),
            ))
        elif kind == "delay_burst":
            events.append(FaultEvent(
                kind=kind, start=start, end=end,
                delay=round(rng.uniform(0.05, 0.2), 2),
            ))
        elif kind == "duplicate":
            events.append(FaultEvent(
                kind=kind, start=start, end=end,
                rate=round(rng.uniform(0.2, 0.6), 2),
                delay=round(rng.uniform(0.05, 0.3), 2),
            ))
        elif kind == "reorder":
            events.append(FaultEvent(
                kind=kind, start=start, end=end,
                rate=round(rng.uniform(0.2, 0.5), 2),
                delay=round(rng.uniform(0.2, 0.5), 2),
            ))
        elif kind == "crash":
            candidates = [n for n in ordered if n not in crashed]
            if not candidates:
                continue
            node = rng.choice(candidates)
            crashed.add(node)
            events.append(FaultEvent(
                kind=kind, start=start, end=end, node=node,
                warm=rng.random() < 0.5,
            ))
        else:  # controller_down
            events.append(FaultEvent(kind=kind, start=start, end=end))
    return FaultPlan(name=f"random-{seed}", events=tuple(events))


def build_plan(
    name: str, seed: int, epochs: int, nodes: Sequence[str]
) -> FaultPlan:
    """Resolve a plan by name (``random`` uses *seed* as schedule)."""
    if name == "random":
        return random_fault_plan(seed, epochs, nodes)
    try:
        factory = NAMED_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown plan {name!r}; choose from"
            f" {sorted(NAMED_PLANS) + ['random']}"
        ) from None
    if epochs < 14:
        raise ValueError(f"named plans need >= 14 epochs, got {epochs}")
    return FaultPlan(
        name=name, events=factory(epochs, nodes, random.Random(seed))
    )


# ---------------------------------------------------------------------------
# Invariant monitor


@dataclass(frozen=True)
class InvariantViolation:
    """One broken runtime guarantee, attributed to an epoch."""

    epoch: int
    #: "coverage-floor" | "stale-lease" | "reconvergence"
    #: | "leader-uniqueness" | "epoch-regression"
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"epoch {self.epoch} [{self.rule}]: {self.detail}"

    def to_dict(self) -> dict:
        """JSON-compatible dict of the verdict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "InvariantViolation":
        """Rebuild a verdict from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class ChaosEpochRecord:
    """One chaos epoch: the plane's record plus ground-truth verdicts."""

    record: EpochRecord
    #: Live agents in edge-only fallback at epoch end.
    degraded_nodes: Tuple[str, ...] = ()
    controller_down: bool = False
    #: Epoch excluded from the coverage-floor assertion (declared
    #: transition window — see ``docs/fault_model.md``).
    excluded: bool = False
    #: (module, session) pairs the edge-only baseline would cover.
    baseline_pairs: int = 0
    #: Of those, pairs no live agent actually analyzed.
    uncovered_pairs: int = 0
    #: Acting leader at epoch end (``None`` without one; single-replica
    #: runs report the lone controller whenever it is up).
    leader: Optional[str] = None
    #: Acting leader's fencing term (0 in single-replica runs).
    term: int = 0
    #: True when the replica set agrees on exactly one caught-up
    #: leader; single-replica runs are trivially settled.
    ha_settled: bool = True

    def to_dict(self) -> dict:
        """JSON-compatible dict (nested record serialized too)."""
        return {
            "record": self.record.to_dict(),
            "degraded_nodes": list(self.degraded_nodes),
            "controller_down": self.controller_down,
            "excluded": self.excluded,
            "baseline_pairs": self.baseline_pairs,
            "uncovered_pairs": self.uncovered_pairs,
            "leader": self.leader,
            "term": self.term,
            "ha_settled": self.ha_settled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEpochRecord":
        """Rebuild a chaos epoch record from :meth:`to_dict` output."""
        fields = dict(data)
        fields["record"] = EpochRecord.from_dict(fields["record"])
        fields["degraded_nodes"] = tuple(fields.get("degraded_nodes", ()))
        return cls(**fields)


class InvariantMonitor:
    """Per-epoch runtime assertions over the live agent/controller state.

    * **coverage-floor** — every (module, session) pair that the
      edge-only baseline deployment would analyze (some live node is an
      endpoint of its unit) is analyzed by at least one live agent,
      outside declared transition windows.
    * **stale-lease** — no live agent serves a coordinated manifest
      past its lease: lease expired ⇒ the agent is degraded.
    * **reconvergence** — within ``reconverge_epochs`` of the plan's
      heal time there is an epoch with no degradation, no fencing, no
      unsynced live node, and coverage at the scenario floor (and,
      under HA, a settled replica set).
    * **leader-uniqueness** — at most one acting leader per epoch
      *term*: two alive replicas never serve in the same term, and no
      replica keeps serving after observing a higher term.
    * **epoch-regression** — a live agent's applied ``(term, version)``
      never moves lexicographically backwards across a takeover.
    """

    def __init__(
        self,
        modules: Sequence[ModuleSpec],
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        self.modules = list(modules)
        self.violations: List[InvariantViolation] = []
        #: Per-agent high-water applied (term, version); cleared on
        #: restart (a cold restart legitimately forgets its manifest).
        self._applied_floor: Dict[str, Tuple[int, int]] = {}
        self._counter = registry.counter(
            "chaos_invariant_violations_total",
            "runtime invariant violations observed by the chaos monitor",
            labels=("rule",),
        )

    def _violate(self, epoch: int, rule: str, detail: str) -> None:
        self.violations.append(InvariantViolation(epoch, rule, detail))
        self._counter.inc(rule=rule)

    # -- per-epoch checks -------------------------------------------------
    def coverage_floor(
        self,
        epoch: int,
        sessions: Sequence[Session],
        agents: Dict[str, Agent],
        excluded: bool,
    ) -> Tuple[int, int]:
        """Count baseline-covered and baseline-covered-but-unanalyzed
        (module, session) pairs; record a violation when the latter is
        non-zero outside a transition window."""
        baseline = 0
        uncovered = 0
        agent_list = list(agents.values())
        for spec in self.modules:
            for session in sessions:
                if not spec.traffic_filter.matches_session(session):
                    continue
                key = unit_key_for_session(spec, session)
                if not any(
                    agents[n].alive for n in key if n in agents
                ):
                    continue  # baseline itself cannot observe it
                baseline += 1
                t = session.tuple
                h = key_hash_unit(
                    spec.aggregation, t.src, t.dst, t.sport, t.dport, t.proto
                )
                if not any(
                    agent.responsible_for_new(spec.name, key, h)
                    for agent in agent_list
                ):
                    uncovered += 1
        # Tolerance mirrors the scenario COVERAGE_FLOOR: sessions whose
        # unit keys post-date the last re-plan are uncoverable by any
        # coordinated manifest until the next epoch's plan (planning
        # lag, not a fault) — while a real degradation failure uncovers
        # a large fraction at once.
        if uncovered > (1.0 - COVERAGE_FLOOR) * baseline and not excluded:
            self._violate(
                epoch,
                "coverage-floor",
                f"{uncovered}/{baseline} baseline-covered (module, session)"
                " pairs unanalyzed outside a transition window",
            )
        return baseline, uncovered

    def stale_leases(
        self, epoch: int, now: float, agents: Dict[str, Agent]
    ) -> None:
        """A lease that lapsed must have forced edge-only fallback."""
        for node, agent in agents.items():
            if not agent.alive or agent.config.lease_ttl is None:
                continue
            if (
                not agent.degraded
                and agent.applied_version >= 0
                and not agent.lease_valid(now)
            ):
                self._violate(
                    epoch,
                    "stale-lease",
                    f"{node} serves manifest v{agent.applied_version} with"
                    f" lease expired at {agent.lease_expires_at:.2f}"
                    f" (now {now:.2f})",
                )

    def leader_uniqueness(self, epoch: int, cluster: HACluster) -> None:
        """At most one acting leader per *term*, and no replica keeps
        serving after observing a higher term.

        Dual leadership in distinct terms is legal mid-partition (the
        deposed side simply has not heard the news yet) — split brain
        is two leaders in the *same* term, or a leader that saw
        higher-term evidence and kept serving anyway.
        """
        serving = [
            replica
            for replica in cluster.replicas
            if replica.alive and replica.role == "leader"
        ]
        by_term: Dict[int, List[str]] = defaultdict(list)
        for replica in serving:
            by_term[replica.term].append(replica.name)
        for term in sorted(by_term):
            names = by_term[term]
            if len(names) > 1:
                self._violate(
                    epoch,
                    "leader-uniqueness",
                    f"replicas {sorted(names)} both act as leader in"
                    f" term {term}",
                )
        for replica in serving:
            if replica.observed_term > replica.term:
                self._violate(
                    epoch,
                    "leader-uniqueness",
                    f"{replica.name} keeps serving term {replica.term}"
                    f" after observing term {replica.observed_term}",
                )

    def note_restart(self, node: str) -> None:
        """Forget an agent's applied floor across a restart — a cold
        restart legitimately returns at version -1."""
        self._applied_floor.pop(node, None)

    def epoch_regression(self, epoch: int, agents: Dict[str, Agent]) -> None:
        """No live agent's applied ``(term, version)`` moves backwards.

        A stale-term delta slipping past the fence shows up here: the
        deposed leader's push carries an older term (or rewinds the
        version), dragging the agent's applied pair below its
        high-water mark.
        """
        for node in sorted(agents):
            agent = agents[node]
            if not agent.alive:
                continue
            if agent.applied_version < 0:
                self._applied_floor.pop(node, None)
                continue
            pair = (agent.applied_term, agent.applied_version)
            floor = self._applied_floor.get(node)
            if floor is not None and pair < floor:
                self._violate(
                    epoch,
                    "epoch-regression",
                    f"{node} applied (term, version) regressed from"
                    f" {floor} to {pair}",
                )
            self._applied_floor[node] = max(pair, floor or pair)

    # -- end-of-run check -------------------------------------------------
    def reconvergence(
        self,
        chaos_records: Sequence[ChaosEpochRecord],
        heal_epoch: int,
        budget: int,
    ) -> None:
        """The plane must settle within *budget* epochs of heal time."""
        deadline = heal_epoch + budget
        for chaos_record in chaos_records:
            record = chaos_record.record
            if record.epoch < heal_epoch:
                continue
            if (
                record.converged
                and not chaos_record.degraded_nodes
                and not record.fenced_nodes
                and not chaos_record.controller_down
                and chaos_record.ha_settled
                and record.coverage >= COVERAGE_FLOOR
            ):
                if record.epoch > deadline:
                    self._violate(
                        record.epoch,
                        "reconvergence",
                        f"first settled epoch {record.epoch} is past the"
                        f" deadline {deadline} (heal {heal_epoch}, budget"
                        f" {budget})",
                    )
                return
        last = chaos_records[-1].record.epoch if chaos_records else heal_epoch
        self._violate(
            last,
            "reconvergence",
            f"never settled after heal epoch {heal_epoch}"
            f" (deadline {deadline})",
        )


# ---------------------------------------------------------------------------
# Chaos runner


@dataclass
class ChaosConfig:
    """One chaos run: a scenario-shaped base plus a fault plan."""

    plan: FaultPlan
    topology: str = "Internet2"
    epochs: int = 18
    base_sessions: int = 600
    profile: str = "mixed"
    seed: int = 7
    latency: float = 0.05
    jitter: float = 0.02
    loss_rate: float = 0.0
    heartbeat_timeout: float = 2.2
    transition_window: float = 2.0
    resolve_every: int = 0
    #: Epoch-lease TTL: over two epochs, so two consecutive lost
    #: renewal beats do not trigger spurious degradation, but a real
    #: outage fences every agent well before the plan heals.
    lease_ttl: float = 2.5
    #: Epochs allowed between the last fault healing and a settled,
    #: fully coordinated configuration.
    reconverge_epochs: int = 4
    #: Redundancy level r the controller plans at.
    coverage: float = 1.0
    #: Controller replica count; the HA acceptance plans raise this to
    #: their own floor (``HA_PLAN_REPLICAS``) so they run unchanged.
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError("chaos runs require a positive lease_ttl")
        if self.replicas < 1:
            raise ValueError("chaos runs need at least one controller replica")
        if self.epochs < self.plan.heal_time + 2:
            raise ValueError(
                f"plan {self.plan.name!r} heals at"
                f" {self.plan.heal_time:.1f} but the run is only"
                f" {self.epochs} epochs"
            )

    def to_dict(self) -> dict:
        """JSON-compatible dict; the plan serializes via its own hook."""
        data = dataclasses.asdict(self)
        data["plan"] = self.plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        fields = dict(data)
        fields["plan"] = FaultPlan.from_dict(fields["plan"])
        return cls(**fields)


@dataclass
class ChaosResult:
    """Everything observed across one chaos run."""

    config: ChaosConfig
    records: List[ChaosEpochRecord]
    violations: List[InvariantViolation]
    #: Epoch at which the first agent entered edge-only fallback.
    first_degraded_epoch: Optional[int] = None
    #: Epoch of the first settled (fully coordinated) state at or
    #: after the plan's heal time.
    reconverged_epoch: Optional[int] = None
    bus_stats: Optional[BusStats] = None
    controller_stats: Optional[ControllerStats] = None
    #: :meth:`HACluster.summary` snapshot (``None`` in single-replica
    #: runs).
    ha_summary: Optional[dict] = None

    def check_acceptance(self) -> List[str]:
        """Human-readable invariant violations (empty = pass)."""
        return [str(violation) for violation in self.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "config": self.config.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "violations": [
                violation.to_dict() for violation in self.violations
            ],
            "first_degraded_epoch": self.first_degraded_epoch,
            "reconverged_epoch": self.reconverged_epoch,
            "bus_stats": (
                self.bus_stats.to_dict() if self.bus_stats else None
            ),
            "controller_stats": (
                self.controller_stats.to_dict()
                if self.controller_stats
                else None
            ),
            "ha_summary": self.ha_summary,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            config=ChaosConfig.from_dict(data["config"]),
            records=[
                ChaosEpochRecord.from_dict(record)
                for record in data["records"]
            ],
            violations=[
                InvariantViolation.from_dict(violation)
                for violation in data.get("violations", ())
            ],
            first_degraded_epoch=data.get("first_degraded_epoch"),
            reconverged_epoch=data.get("reconverged_epoch"),
            bus_stats=(
                BusStats.from_dict(data["bus_stats"])
                if data.get("bus_stats")
                else None
            ),
            controller_stats=(
                ControllerStats.from_dict(data["controller_stats"])
                if data.get("controller_stats")
                else None
            ),
            ha_summary=data.get("ha_summary"),
        )


def _edge_manifests(
    agents: Dict[str, Agent], units
) -> Dict[str, object]:
    """Effective manifests for coverage accounting: a degraded agent
    serves its edge-only stance, not its (distrusted) manifest."""
    effective = {}
    full = (HashRange(0.0, 1.0),)
    for node, agent in agents.items():
        if not agent.alive:
            continue
        if not agent.degraded:
            effective[node] = agent.manifest
            continue
        entries = {
            (unit.class_name, unit.key): full
            for unit in units
            if node in unit.key
        }
        effective[node] = dataclasses.replace(
            agent.manifest, entries=entries, full=False
        )
    return effective


def run_chaos(
    config: ChaosConfig,
    registry: Optional[MetricsRegistry] = None,
) -> ChaosResult:
    """Execute the fault plan against a live coordination plane and
    judge every epoch with the invariant monitor."""
    if registry is not None and registry.enabled:
        with use_registry(registry):
            return _run_chaos(config, registry)
    return _run_chaos(config, NULL_REGISTRY)


def _run_chaos(config: ChaosConfig, registry: MetricsRegistry) -> ChaosResult:
    topology = by_label(config.topology).set_uniform_capacities(cpu=1.0, mem=1.0)
    replica_count = max(
        config.replicas, HA_PLAN_REPLICAS.get(config.plan.name, 1)
    )
    replica_names = tuple(replica_name(i) for i in range(replica_count))
    known = set(topology.node_names) | set(replica_names)
    for event in config.plan.events:
        for name in (event.node, event.src, event.dst):
            if name is not None and name not in known:
                raise ValueError(
                    f"plan references unknown node {name!r};"
                    f" {config.topology} nodes are {sorted(known)}"
                )
    paths = PathSet(topology)
    modules = list(STANDARD_MODULES)

    bus = ChaosBus(
        config.plan,
        BusConfig(
            latency=config.latency,
            jitter=config.jitter,
            loss_rate=config.loss_rate,
            seed=config.seed,
        ),
        registry=registry,
        chaos_seed=config.seed,
        controller_names=replica_names,
    )
    controller_config = ControllerConfig(
        heartbeat_timeout=config.heartbeat_timeout,
        resolve_every=config.resolve_every,
        lease_ttl=config.lease_ttl,
        coverage=config.coverage,
        retry_seed=config.seed,
    )
    cluster: Optional[HACluster] = None
    if replica_count > 1:
        cluster = HACluster(
            topology,
            paths,
            modules,
            bus,
            controller_config,
            HAConfig(replicas=replica_count, leader_lease=config.lease_ttl),
            registry=registry,
        )
        controller = cluster.authority
    else:
        controller = Controller(
            topology,
            paths,
            modules,
            bus,
            controller_config,
            registry=registry,
        )
    agent_config = AgentConfig(
        transition_window=config.transition_window,
        lease_ttl=config.lease_ttl,
    )
    agents: Dict[str, Agent] = {}
    for index, node in enumerate(topology.node_names):
        agents[node] = Agent(
            node,
            bus,
            exporter=FlowExporter(seed=config.seed + index),
            config=agent_config,
            registry=registry,
        )

    volume_model = DiurnalBurstModel(
        base_sessions=config.base_sessions, seed=config.seed
    )
    volumes = volume_model.series(config.epochs)
    pools = session_pools(
        ScenarioConfig(
            topology=config.topology,
            profile=config.profile,
            seed=config.seed,
        ),
        topology,
        paths,
        max(volumes),
    )

    crashes_by_epoch: Dict[int, List[FaultEvent]] = defaultdict(list)
    restarts_by_epoch: Dict[int, List[FaultEvent]] = defaultdict(list)
    for event in config.plan.crash_events():
        crashes_by_epoch[int(math.floor(event.start))].append(event)
        restarts_by_epoch[int(math.ceil(event.end))].append(event)

    monitor = InvariantMonitor(modules, registry=registry)
    result = ChaosResult(config=config, records=[], violations=monitor.violations)

    for epoch in range(config.epochs):
        t = float(epoch)
        for event in crashes_by_epoch.get(epoch, []):
            agents[event.node].crash()
        for event in restarts_by_epoch.get(epoch, []):
            agents[event.node].recover(warm=event.warm)
            monitor.note_restart(event.node)

        sessions = pools[config.profile][: volumes[epoch]]
        by_ingress: Dict[str, List[Session]] = defaultdict(list)
        for session in sessions:
            by_ingress[session.ingress].append(session)

        for node, agent in agents.items():
            agent.step(t, sessions=by_ingress.get(node, []))
        if cluster is not None:
            # Per-beat outage sets: a leader really can die *between*
            # its push beat and its finish beat.
            down_step = frozenset(
                name for name in replica_names
                if config.plan.controller_down(t + 0.25, name)
            )
            cluster.step(t + 0.25, down_step)
            for agent in agents.values():
                agent.step(t + 0.5)
            down_finish = frozenset(
                name for name in replica_names
                if config.plan.controller_down(t + 0.75, name)
            )
            record = cluster.finish_epoch(t + 0.75, down_finish)
            acting = cluster.acting_leader()
            controller = cluster.authority
            controller_up = (
                acting is not None
                and not acting.rebuilding
                and record is not None
            )
            if record is None:
                record = EpochRecord(epoch=epoch, time=t)
                record.failed_nodes = tuple(sorted(controller.monitor.failed))
                record.fenced_nodes = tuple(sorted(controller.fenced))
                record.config_version = controller.version
                record.converged = not controller.unsynced_live_nodes()
        else:
            controller_up = not (
                config.plan.controller_down(t + 0.25)
                or config.plan.controller_down(t + 0.75)
            )
            if controller_up:
                controller.step(t + 0.25)
            for agent in agents.values():
                agent.step(t + 0.5)
            if controller_up:
                record = controller.finish_epoch(t + 0.75)
            else:
                record = EpochRecord(epoch=epoch, time=t)
                record.failed_nodes = tuple(sorted(controller.monitor.failed))
                record.fenced_nodes = tuple(sorted(controller.fenced))
                record.config_version = controller.version
                record.converged = not controller.unsynced_live_nodes()
        record.sessions = len(sessions)

        # Ground-truth coverage over what agents actually *serve*:
        # degraded agents answer edge-only, not from their manifest.
        truth_units = build_units(modules, sessions, paths)
        live = {node for node, agent in agents.items() if agent.alive}
        served = _edge_manifests(agents, truth_units)
        summary = coverage_metrics(truth_units, served, live)
        record.coverage = summary.coverage
        record.min_unit_coverage = summary.min_unit_coverage
        record.orphaned_fraction = summary.orphaned_fraction
        registry.gauge(
            "epoch_coverage",
            "ground-truth volume-weighted coverage of the latest epoch",
        ).set(record.coverage)

        degraded = tuple(
            sorted(
                node for node, agent in agents.items()
                if agent.alive and agent.degraded
            )
        )
        if degraded and result.first_degraded_epoch is None:
            result.first_degraded_epoch = epoch

        # Transition windows excluded from the coverage-floor check
        # (docs/fault_model.md): a configuration still propagating, a
        # crashed node's ranges not yet repaired away, an expired agent
        # the controller has not yet fenced, or an outage epoch where
        # agents are (by design) serving lease-sanctioned *stale*
        # configuration — the controller cannot react to traffic drift
        # while down, and that bounded staleness is exactly what the
        # lease TTL prices in.  Once the leases expire, the whole plane
        # degrades atomically (absolute expiry) and the floor IS
        # asserted on every all-degraded outage epoch.
        failure_unrepaired = any(
            not agent.alive
            and controller.manifests.get(node) is not None
            and controller.manifests[node].entries
            for node, agent in agents.items()
        )
        fence_pending = any(
            node not in controller.fenced
            for node in degraded
        ) and controller_up
        mixed_versions = (
            len(
                {
                    (agent.applied_term, agent.applied_version)
                    for agent in agents.values()
                    if agent.alive and not agent.degraded
                }
            )
            > 1
        )
        stale_leased = (not controller_up) and any(
            agent.alive and not agent.degraded for agent in agents.values()
        )
        # A freshly promoted leader serves the configuration it rebuilt
        # from the epoch log — by construction pre-takeover — until its
        # first re-plan lands; that staleness is handoff transition.
        handoff_pending = cluster is not None and cluster.handoff_stale(epoch)
        excluded = (
            (not record.converged)
            or failure_unrepaired
            or fence_pending
            or mixed_versions
            or stale_leased
            or handoff_pending
        )
        record.in_transition = excluded

        baseline, uncovered = monitor.coverage_floor(
            epoch, sessions, agents, excluded
        )
        monitor.stale_leases(epoch, t + 0.5, agents)
        monitor.epoch_regression(epoch, agents)
        if cluster is not None:
            monitor.leader_uniqueness(epoch, cluster)
            acting = cluster.acting_leader()
            leader = acting.name if acting is not None else None
            term = acting.term if acting is not None else 0
            ha_settled = cluster.settled()
        else:
            leader = controller.config.name if controller_up else None
            term = 0
            ha_settled = True

        chaos_record = ChaosEpochRecord(
            record=record,
            degraded_nodes=degraded,
            controller_down=not controller_up,
            excluded=excluded,
            baseline_pairs=baseline,
            uncovered_pairs=uncovered,
            leader=leader,
            term=term,
            ha_settled=ha_settled,
        )
        result.records.append(chaos_record)

        if (
            result.reconverged_epoch is None
            and epoch >= config.plan.heal_time
            and record.converged
            and not degraded
            and not record.fenced_nodes
            and controller_up
            and ha_settled
            and record.coverage >= COVERAGE_FLOOR
        ):
            result.reconverged_epoch = epoch

    heal_epoch = int(math.ceil(config.plan.heal_time))
    monitor.reconvergence(result.records, heal_epoch, config.reconverge_epochs)

    result.bus_stats = bus.stats
    result.controller_stats = controller.stats
    result.ha_summary = cluster.summary() if cluster is not None else None
    return result
