"""Simulated control-plane message bus.

The paper's operations center and the NIDS nodes exchange manifests,
measurement reports, and liveness signals over the management network.
:class:`Bus` models that channel as a discrete-event queue with
configurable one-way latency, jitter, and loss, so the coordination
plane can be exercised under realistic distribution conditions
(reordering falls out of jitter: a message sent later can arrive
earlier).

The bus is deliberately unreliable-datagram-shaped — no retransmission,
no ordering guarantee.  Reliability is the controller's job (epoch
versioning plus acknowledgement-driven retry), which mirrors how a real
deployment would layer idempotent config pushes over a lossy management
channel.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import MetricsRegistry, NULL_REGISTRY


@dataclass(frozen=True)
class Message:
    """One in-flight control-plane message."""

    src: str
    dst: str
    kind: str
    payload: object
    size_bytes: int
    sent_at: float
    deliver_at: float
    seq: int


@dataclass
class BusConfig:
    """Channel model parameters (times in seconds)."""

    #: Mean one-way delivery latency.
    latency: float = 0.05
    #: Uniform extra delay in ``[0, jitter]`` — the source of reordering.
    jitter: float = 0.0
    #: Probability that a message is silently dropped.
    loss_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")


@dataclass
class BusStats:
    """Cumulative channel counters."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    sent_by_kind: Dict[str, int] = field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible dict of the cumulative counters."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BusStats":
        """Rebuild stats from :meth:`to_dict` output."""
        return cls(**data)


class Bus:
    """Discrete-event message channel between controller and agents."""

    def __init__(
        self,
        config: Optional[BusConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or BusConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.stats = BusStats()
        self._rng = random.Random(self.config.seed)
        self._in_flight: List[Message] = []
        self._seq = 0

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        size_bytes: int,
        now: float,
    ) -> Optional[Message]:
        """Enqueue a message; returns ``None`` if the channel drops it.

        Dropped messages still count toward ``sent`` / ``bytes_sent``:
        the sender paid for the transmission either way, which is what
        the per-epoch byte accounting must reflect.
        """
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        self.stats.sent_by_kind[kind] = self.stats.sent_by_kind.get(kind, 0) + 1
        self.stats.bytes_by_kind[kind] = (
            self.stats.bytes_by_kind.get(kind, 0) + size_bytes
        )
        registry = self.registry
        registry.counter(
            "bus_messages_total", "control-plane messages sent", labels=("kind",)
        ).inc(kind=kind)
        registry.counter(
            "bus_bytes_total", "control-plane bytes sent", labels=("kind",)
        ).inc(size_bytes, kind=kind)
        if self.config.loss_rate > 0 and self._rng.random() < self.config.loss_rate:
            self.stats.dropped += 1
            registry.counter(
                "bus_dropped_total",
                "control-plane messages lost in the channel",
                labels=("kind",),
            ).inc(kind=kind)
            return None
        delay = self.config.latency
        if self.config.jitter > 0:
            delay += self._rng.random() * self.config.jitter
        self._seq += 1
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=now,
            deliver_at=now + delay,
            seq=self._seq,
        )
        return self._admit(message, now)

    def _admit(self, message: Message, now: float) -> Optional[Message]:
        """Place an already-built message into the channel.

        Extension point for fault injection: a subclass may drop the
        message (return ``None``), retime it, or enqueue duplicates —
        see :class:`repro.control.chaos.ChaosBus`.  The base channel
        admits everything unchanged.
        """
        self._in_flight.append(message)
        return message

    def _drop_admitted(self, message: Message) -> None:
        """Account an admitted-then-dropped message as channel loss."""
        self.stats.dropped += 1
        self.registry.counter(
            "bus_dropped_total",
            "control-plane messages lost in the channel",
            labels=("kind",),
        ).inc(kind=message.kind)

    def deliver(self, dst: str, now: float) -> List[Message]:
        """Messages for *dst* whose delivery time has arrived.

        Returned in delivery-time order (not send order), removed from
        the channel.
        """
        due = [
            m for m in self._in_flight if m.dst == dst and m.deliver_at <= now
        ]
        if due:
            remaining = {id(m) for m in due}
            self._in_flight = [
                m for m in self._in_flight if id(m) not in remaining
            ]
            due.sort(key=lambda m: (m.deliver_at, m.seq))
            self.stats.delivered += len(due)
        return due

    def pending(self, dst: Optional[str] = None) -> int:
        """Number of undelivered messages (optionally for one receiver)."""
        if dst is None:
            return len(self._in_flight)
        return sum(1 for m in self._in_flight if m.dst == dst)
