"""Coordination plane: controller–agent runtime (paper §2.2, §5).

The offline pipeline (measure → estimate → LP → manifests) answers
*what* each node should sample; this package makes that loop run
continuously: an operations-center :class:`Controller` on an epoch
clock, per-node :class:`Agent` endpoints, a lossy simulated
:class:`Bus` between them, epoch-versioned delta distribution,
heartbeat-driven failure detection with targeted redistribution, and
scripted end-to-end scenarios.
"""

from .agent import Agent, AgentConfig, AgentStats
from .bus import Bus, BusConfig, BusStats, Message
from .controller import Controller, ControllerConfig, ControllerStats, PushState
from .epochs import (
    CoverageSummary,
    EpochRecord,
    coverage_metrics,
    merge_reports,
    stabilize_manifests,
    union_length,
)
from .failure import (
    HeartbeatMonitor,
    RepairResult,
    repair_manifests,
)
from .scenarios import (
    COVERAGE_FLOOR,
    PROFILES,
    REDISTRIBUTION_DEADLINE_EPOCHS,
    ScenarioConfig,
    ScenarioEvent,
    ScenarioResult,
    run_scenario,
    standard_scenario,
)

__all__ = [
    "Agent",
    "AgentConfig",
    "AgentStats",
    "Bus",
    "BusConfig",
    "BusStats",
    "COVERAGE_FLOOR",
    "Controller",
    "ControllerConfig",
    "ControllerStats",
    "CoverageSummary",
    "EpochRecord",
    "HeartbeatMonitor",
    "Message",
    "PROFILES",
    "PushState",
    "REDISTRIBUTION_DEADLINE_EPOCHS",
    "RepairResult",
    "ScenarioConfig",
    "ScenarioEvent",
    "ScenarioResult",
    "coverage_metrics",
    "merge_reports",
    "repair_manifests",
    "run_scenario",
    "stabilize_manifests",
    "standard_scenario",
    "union_length",
]
