"""Coordination plane: controller–agent runtime (paper §2.2, §5).

The offline pipeline (measure → estimate → LP → manifests) answers
*what* each node should sample; this package makes that loop run
continuously: an operations-center :class:`Controller` on an epoch
clock, per-node :class:`Agent` endpoints, a lossy simulated
:class:`Bus` between them, epoch-versioned delta distribution,
heartbeat-driven failure detection with targeted redistribution,
scripted end-to-end scenarios, a seeded chaos harness
(:mod:`repro.control.chaos`) that injects adversarial fault plans and
asserts the graceful-degradation invariants per epoch, and controller
HA (:mod:`repro.control.ha`): term-fenced standby replicas with
deterministic election and split-brain-proof epoch-log handoff.
"""

from .agent import Agent, AgentConfig, AgentStats
from .bus import Bus, BusConfig, BusStats, Message
from .chaos import (
    ChaosBus,
    ChaosConfig,
    ChaosEpochRecord,
    ChaosResult,
    FaultEvent,
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    NAMED_PLANS,
    build_plan,
    random_fault_plan,
    run_chaos,
)
from .controller import Controller, ControllerConfig, ControllerStats, PushState
from .ha import (
    ControllerReplica,
    EpochLogEntry,
    HACluster,
    HAConfig,
    replica_name,
)
from .protocol import MessageSpec, PROTOCOL, PROTOCOL_KINDS
from .epochs import (
    CoverageSummary,
    EpochRecord,
    coverage_metrics,
    merge_reports,
    stabilize_manifests,
    union_length,
)
from .failure import (
    HeartbeatMonitor,
    RepairResult,
    repair_manifests,
)
from .scenarios import (
    COVERAGE_FLOOR,
    PROFILES,
    REDISTRIBUTION_DEADLINE_EPOCHS,
    ScenarioConfig,
    ScenarioEvent,
    ScenarioResult,
    run_scenario,
    standard_scenario,
)

__all__ = [
    "Agent",
    "AgentConfig",
    "AgentStats",
    "Bus",
    "BusConfig",
    "BusStats",
    "COVERAGE_FLOOR",
    "ChaosBus",
    "ChaosConfig",
    "ChaosEpochRecord",
    "ChaosResult",
    "Controller",
    "ControllerConfig",
    "ControllerReplica",
    "ControllerStats",
    "CoverageSummary",
    "EpochLogEntry",
    "EpochRecord",
    "FaultEvent",
    "FaultPlan",
    "HACluster",
    "HAConfig",
    "HeartbeatMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "Message",
    "MessageSpec",
    "NAMED_PLANS",
    "PROFILES",
    "PROTOCOL",
    "PROTOCOL_KINDS",
    "PushState",
    "REDISTRIBUTION_DEADLINE_EPOCHS",
    "RepairResult",
    "ScenarioConfig",
    "ScenarioEvent",
    "ScenarioResult",
    "build_plan",
    "coverage_metrics",
    "merge_reports",
    "random_fault_plan",
    "repair_manifests",
    "replica_name",
    "run_chaos",
    "run_scenario",
    "stabilize_manifests",
    "standard_scenario",
    "union_length",
]
