"""Failure detection and failure-driven redistribution.

The §2.5 redundancy extension plans *proactively* for failures; this
module is the *reactive* half the operations center still needs: notice
that a node's NIDS process died (missed heartbeats), surgically hand
its hash ranges to surviving on-path nodes, and fold the node back in
when it recovers.

The repair is deliberately **targeted** rather than a full LP re-solve:
only the failed node's ranges move, so every surviving node's manifest
changes by at most the pieces it inherits.  That keeps the repair
push tiny (a delta, not a reconfiguration of the whole network) and
bounds the disruption to exactly the traffic that lost its analyzer.
The next periodic re-solve then restores global optimality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.manifest import NodeManifest
from ..core.units import CoordinationUnit, UnitKey
from ..hashing.ranges import EPSILON, HashRange
from ..topology.graph import Topology

Ident = Tuple[str, UnitKey]


class HeartbeatMonitor:
    """Liveness tracking from periodic agent heartbeats.

    A node is marked failed once no heartbeat has been seen for
    *timeout* seconds; a heartbeat from a failed node marks it
    recovered (the caller decides how to reintegrate it).
    """

    def __init__(self, nodes: Sequence[str], timeout: float, now: float = 0.0):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.last_seen: Dict[str, float] = {node: now for node in nodes}
        self.failed: Set[str] = set()

    def beat(self, node: str, now: float) -> bool:
        """Record a heartbeat; returns True if *node* just recovered."""
        self.last_seen[node] = max(self.last_seen.get(node, now), now)
        if node in self.failed:
            self.failed.discard(node)
            return True
        return False

    def sweep(self, now: float) -> List[str]:
        """Nodes newly declared failed as of *now* (sorted)."""
        newly_failed = [
            node
            for node, seen in self.last_seen.items()
            if node not in self.failed and now - seen >= self.timeout
        ]
        self.failed.update(newly_failed)
        return sorted(newly_failed)

    def alive(self, node: str) -> bool:
        """Whether *node* is currently considered live."""
        return node not in self.failed


@dataclass
class RepairResult:
    """Outcome of a targeted failure repair."""

    #: Post-repair manifests for every node (failed nodes emptied).
    manifests: Dict[str, NodeManifest]
    #: Every (class, unit key, donor, receiver, range) reassignment.
    moves: List[Tuple[str, UnitKey, str, str, HashRange]]
    #: Units whose entire eligible set is failed, with the abandoned
    #: hash-space mass — the residual risk the operator must know about
    #: (e.g. a Scan unit whose only ingress observer died).
    orphaned: List[Tuple[Ident, float]] = field(default_factory=list)

    @property
    def moved_mass(self) -> float:
        """Total hash-space mass reassigned across all units."""
        return sum(piece.length for *_rest, piece in self.moves)


def _node_loads(
    manifests: Dict[str, NodeManifest],
    units_by_ident: Dict[Ident, CoordinationUnit],
    topology: Topology,
) -> Dict[str, float]:
    """Current planned CPU load per node implied by *manifests*."""
    loads = {name: 0.0 for name in topology.node_names}
    for node, manifest in manifests.items():
        capacity = topology.node(node).cpu_capacity
        for ident, ranges in manifest.entries.items():
            unit = units_by_ident.get(ident)
            if unit is None:
                continue
            held = sum(r.length for r in ranges)
            loads[node] += unit.cpu_work * held / capacity
    return loads


def repair_manifests(
    manifests: Dict[str, NodeManifest],
    units: Sequence[CoordinationUnit],
    topology: Topology,
    failed: Set[str],
) -> RepairResult:
    """Reassign every failed node's hash ranges to live eligible nodes.

    Greedy least-loaded placement: each orphaned range piece goes to
    the surviving eligible node whose planned CPU load grows least —
    and whose existing ranges for the unit it does not already overlap
    (relevant under redundancy, where a node holding the same piece
    twice would violate the distinct-holders invariant).  Surviving
    nodes' existing ranges are never touched, so the resulting delta
    pushes are proportional to the failed node's share only.
    """
    index = {unit.ident: unit for unit in units}
    repaired = {
        node: NodeManifest(
            node=node, entries=dict(manifest.entries), full=manifest.full
        )
        for node, manifest in manifests.items()
    }
    loads = _node_loads(repaired, index, topology)
    moves: List[Tuple[str, UnitKey, str, str, HashRange]] = []
    orphaned: Dict[Ident, float] = {}

    for failed_node in sorted(failed):
        manifest = repaired.get(failed_node)
        if manifest is None:
            continue
        entries = manifest.entries
        manifest.entries = {}
        for ident in sorted(entries):
            ranges = entries[ident]
            unit = index.get(ident)
            survivors = (
                [n for n in unit.eligible if n not in failed]
                if unit is not None
                else []
            )
            if not survivors:
                orphaned[ident] = orphaned.get(ident, 0.0) + sum(
                    r.length for r in ranges
                )
                continue
            class_name, key = ident
            capacity = {n: topology.node(n).cpu_capacity for n in survivors}
            for piece in ranges:
                if piece.empty:
                    continue
                candidates = [
                    n
                    for n in survivors
                    if not any(
                        piece.overlaps(held)
                        for held in repaired[n].entries.get(ident, ())
                    )
                ]
                if not candidates:
                    # Every survivor already covers this piece (only
                    # possible under redundancy): the point keeps fewer
                    # distinct holders until the next full re-solve.
                    orphaned[ident] = orphaned.get(ident, 0.0) + piece.length
                    continue
                receiver = min(
                    candidates,
                    key=lambda n: loads[n]
                    + unit.cpu_work * piece.length / capacity[n],
                )
                repaired[receiver].entries[ident] = repaired[receiver].entries.get(
                    ident, ()
                ) + (piece,)
                loads[receiver] += unit.cpu_work * piece.length / capacity[receiver]
                moves.append((class_name, key, failed_node, receiver, piece))

    return RepairResult(
        manifests=repaired,
        moves=moves,
        orphaned=sorted(
            ((ident, mass) for ident, mass in orphaned.items() if mass > EPSILON),
            key=lambda item: -item[1],
        ),
    )
