"""Scripted end-to-end coordination-plane scenarios.

:func:`run_scenario` drives a full controller–agent deployment through
a schedule of epochs with injected events — traffic shifts, NIDS
process crashes, recoveries — and scores the outcome against the
paper's operational requirements: the live network stays covered, a
failed node's responsibilities move to on-path survivors within a
bounded number of epochs, and steady-state configuration pushes cost
delta-sized, not full-manifest-sized, bytes.

Each epoch is a four-beat discrete-event schedule::

    t + 0.00   agents measure their ingress traffic, export NetFlow
               reports, and heartbeat
    t + 0.25   controller drains the bus, sweeps for missed heartbeats,
               re-plans if warranted, pushes manifest (delta) updates
    t + 0.50   agents apply updates (dual-manifest window) and ack
    t + 0.75   controller collects acks and the epoch record closes

Traffic is drawn from per-profile session *pools* with a volume-scaled
prefix per epoch (:class:`~repro.traffic.dynamics.DiurnalBurstModel`),
so steady-state epochs present near-identical unit sets — the regime
in which delta distribution must win — while a profile switch presents
a genuine drift for the controller to detect.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.units import build_units
from ..hashing.ranges import HashRange
from ..measurement.flows import FlowExporter
from ..nids.modules import STANDARD_MODULES
from ..obs import MetricsRegistry, NULL_REGISTRY, use_registry
from ..topology import PathSet, by_label
from ..traffic.dynamics import DiurnalBurstModel
from ..traffic.generator import GeneratorConfig, TrafficGenerator
from ..traffic.profiles import (
    attack_heavy_profile,
    mixed_profile,
    web_heavy_profile,
)
from ..traffic.session import Session
from .agent import Agent, AgentConfig
from .bus import Bus, BusConfig, BusStats
from .controller import Controller, ControllerConfig, ControllerStats
from .epochs import (
    EpochRecord,
    Ident,
    coverage_metrics,
    union_length,
)

PROFILES: Dict[str, Callable] = {
    "mixed": mixed_profile,
    "web_heavy": web_heavy_profile,
    "attack_heavy": attack_heavy_profile,
}

#: Acceptance threshold: volume-weighted coverage required of every
#: epoch that is not part of a transition window.
COVERAGE_FLOOR = 0.99
#: Acceptance threshold: epochs allowed between failure detection and
#: full reassignment of the failed node's hash ranges.
REDISTRIBUTION_DEADLINE_EPOCHS = 2


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted perturbation, applied at the start of *epoch*."""

    epoch: int
    kind: str  # "fail" | "recover" | "shift"
    node: Optional[str] = None  # for fail / recover
    profile: Optional[str] = None  # for shift

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "recover", "shift"):
            raise ValueError(f"unknown event kind: {self.kind!r}")
        if self.kind in ("fail", "recover") and not self.node:
            raise ValueError(f"{self.kind} event needs a node")
        if self.kind == "shift" and self.profile not in PROFILES:
            raise ValueError(
                f"shift event needs a profile in {sorted(PROFILES)}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible dict (``None`` fields omitted)."""
        data = {"epoch": self.epoch, "kind": self.kind}
        if self.node is not None:
            data["node"] = self.node
        if self.profile is not None:
            data["profile"] = self.profile
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class ScenarioConfig:
    """Everything a scripted coordination-plane run needs."""

    topology: str = "Internet2"
    epochs: int = 16
    base_sessions: int = 900
    profile: str = "mixed"
    seed: int = 7
    #: NetFlow sampling rate the agents export at (1.0 = unsampled).
    sampling_rate: float = 1.0
    # Bus conditions.
    latency: float = 0.05
    jitter: float = 0.02
    loss_rate: float = 0.0
    # Traffic dynamics.
    diurnal_amplitude: float = 0.08
    burst_probability: float = 0.0
    # Controller / agent tunables.
    heartbeat_timeout: float = 2.2
    transition_window: float = 2.0
    resolve_every: int = 4
    stabilize_tolerance: float = 0.02
    drift_threshold: float = 0.2
    headroom: float = 1.0
    #: Redundancy level r the controller plans at (paper §3: every
    #: unit analyzed by ``r`` distinct on-path nodes).
    coverage: float = 1.0
    #: Epoch-lease TTL for graceful degradation; ``None`` (default)
    #: runs the plane without leases, the pre-hardening behaviour.
    lease_ttl: Optional[float] = None
    events: Tuple[ScenarioEvent, ...] = ()

    def to_dict(self) -> dict:
        """JSON-compatible dict; events serialize via their own hook."""
        data = dataclasses.asdict(self)
        data["events"] = [event.to_dict() for event in self.events]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        fields = dict(data)
        fields["events"] = tuple(
            ScenarioEvent.from_dict(event)
            for event in fields.get("events", ())
        )
        return cls(**fields)


def standard_scenario(
    shift_epoch: int = 5,
    fail_epoch: int = 8,
    recover_epoch: int = 12,
    fail_node: str = "NYCM",
    shift_profile: str = "web_heavy",
    **overrides,
) -> ScenarioConfig:
    """The canonical steady → shift → failure → recovery schedule."""
    events = (
        ScenarioEvent(epoch=shift_epoch, kind="shift", profile=shift_profile),
        ScenarioEvent(epoch=fail_epoch, kind="fail", node=fail_node),
        ScenarioEvent(epoch=recover_epoch, kind="recover", node=fail_node),
    )
    return ScenarioConfig(events=events, **overrides)


@dataclass
class ScenarioResult:
    """Everything observed across one scripted run."""

    config: ScenarioConfig
    records: List[EpochRecord]
    #: Epoch at which the controller first marked each node failed.
    detection_epoch: Dict[str, int] = field(default_factory=dict)
    #: Epoch at which the failed node's (repairable) hash ranges were
    #: all observed re-applied on live survivors.
    redistribution_epoch: Dict[str, int] = field(default_factory=dict)
    #: Epoch at which a recovered node was converged back in.
    reintegration_epoch: Dict[str, int] = field(default_factory=dict)
    bus_stats: Optional[BusStats] = None
    controller_stats: Optional[ControllerStats] = None
    #: Hash-space mass that could not be reassigned (no live eligible
    #: node), per failed node — the paper's singleton-unit caveat.
    orphaned_mass: Dict[str, float] = field(default_factory=dict)

    def check_acceptance(self) -> List[str]:
        """Violations of the scenario acceptance criteria (empty = pass)."""
        violations: List[str] = []
        for record in self.records:
            if record.in_transition:
                continue
            if record.coverage < COVERAGE_FLOOR:
                violations.append(
                    f"epoch {record.epoch}: coverage {record.coverage:.4f}"
                    f" < {COVERAGE_FLOOR} outside a transition window"
                )
        for node, detected in self.detection_epoch.items():
            redistributed = self.redistribution_epoch.get(node)
            if redistributed is None:
                violations.append(
                    f"{node}: ranges never fully redistributed after the"
                    f" failure was detected at epoch {detected}"
                )
            elif redistributed - detected > REDISTRIBUTION_DEADLINE_EPOCHS:
                violations.append(
                    f"{node}: redistribution took"
                    f" {redistributed - detected} epochs (detected"
                    f" {detected}, redistributed {redistributed};"
                    f" deadline {REDISTRIBUTION_DEADLINE_EPOCHS})"
                )
        failed_events = [e for e in self.config.events if e.kind == "fail"]
        if failed_events and not self.detection_epoch:
            violations.append("injected failure was never detected")
        # Delta efficiency: on reconfiguration epochs where the majority
        # of manifest entries carried over, the bytes actually pushed
        # must undercut full-manifest distribution.  Bootstrap and
        # recovery epochs are excluded: a cold agent requires a full
        # manifest by protocol, so there is nothing for a delta to win.
        qualifying = [
            r
            for r in self.records
            if r.resolved in ("drift", "periodic", "failure")
            and r.unchanged_entry_fraction >= 0.5
            and r.push_bytes > 0
        ]
        for record in qualifying:
            if record.push_bytes >= record.full_equivalent_bytes:
                violations.append(
                    f"epoch {record.epoch} ({record.resolved}): pushed"
                    f" {record.push_bytes} B >= full-manifest"
                    f" {record.full_equivalent_bytes} B despite"
                    f" {record.unchanged_entry_fraction:.0%} unchanged entries"
                )
        if not qualifying:
            violations.append(
                "no unchanged-majority reconfiguration epoch exercised"
                " delta distribution"
            )
        return violations

    @property
    def ok(self) -> bool:
        return not self.check_acceptance()

    def to_dict(self) -> dict:
        """JSON-compatible dict for cross-process result transport."""
        return {
            "config": self.config.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "detection_epoch": dict(self.detection_epoch),
            "redistribution_epoch": dict(self.redistribution_epoch),
            "reintegration_epoch": dict(self.reintegration_epoch),
            "bus_stats": (
                self.bus_stats.to_dict() if self.bus_stats else None
            ),
            "controller_stats": (
                self.controller_stats.to_dict()
                if self.controller_stats
                else None
            ),
            "orphaned_mass": dict(self.orphaned_mass),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            config=ScenarioConfig.from_dict(data["config"]),
            records=[
                EpochRecord.from_dict(record) for record in data["records"]
            ],
            detection_epoch=dict(data.get("detection_epoch", {})),
            redistribution_epoch=dict(data.get("redistribution_epoch", {})),
            reintegration_epoch=dict(data.get("reintegration_epoch", {})),
            bus_stats=(
                BusStats.from_dict(data["bus_stats"])
                if data.get("bus_stats")
                else None
            ),
            controller_stats=(
                ControllerStats.from_dict(data["controller_stats"])
                if data.get("controller_stats")
                else None
            ),
            orphaned_mass=dict(data.get("orphaned_mass", {})),
        )


def session_pools(
    config: ScenarioConfig,
    topology,
    paths,
    pool_size: int,
) -> Dict[str, List[Session]]:
    """One session pool per profile the scenario can be in.

    Epochs slice a volume-scaled prefix of the active pool, so the
    steady-state unit set is stable across epochs (the regime where
    manifest deltas must stay small) while still scaling with the
    diurnal volume.
    """
    names = {config.profile}
    names.update(e.profile for e in config.events if e.kind == "shift")
    pools: Dict[str, List[Session]] = {}
    for offset, name in enumerate(sorted(names)):
        generator = TrafficGenerator(
            topology,
            paths,
            profile=PROFILES[name](),
            config=GeneratorConfig(seed=config.seed + 101 * offset),
        )
        pools[name] = generator.generate(pool_size)
    return pools


def _clipped_union(ranges: Sequence[HashRange], piece: HashRange) -> float:
    """Measure of ``union(ranges) ∩ piece``."""
    clipped = [
        HashRange(max(r.lo, piece.lo), min(r.hi, piece.hi))
        for r in ranges
        if r.hi > piece.lo and r.lo < piece.hi
    ]
    return union_length(clipped)


def _ranges_reassigned(
    snapshot: Dict[Ident, Tuple[HashRange, ...]],
    agents: Dict[str, Agent],
    failed_node: str,
    skip: Set[Ident],
) -> bool:
    """Whether every repairable snapshot range is applied on a live
    survivor's manifest (the acceptance check's ground truth: what the
    agents actually run, not what the controller intends)."""
    for ident, ranges in snapshot.items():
        if ident in skip:
            continue
        class_name, key = ident
        held: List[HashRange] = []
        for node, agent in agents.items():
            if node == failed_node or not agent.alive:
                continue
            held.extend(agent.manifest.ranges(class_name, key))
        for piece in ranges:
            if piece.empty:
                continue
            if _clipped_union(held, piece) < piece.length - 1e-9:
                return False
    return True


def run_scenario(
    config: ScenarioConfig,
    registry: Optional[MetricsRegistry] = None,
) -> ScenarioResult:
    """Execute *config* and collect per-epoch records + verdicts.

    *registry* (optional) receives control-plane telemetry from every
    component of the run — bus channel counters, controller re-plan and
    push/retry activity, per-agent ingress session counts — and is
    installed as the ambient registry for the duration, so the LP
    solves the controller triggers land in the same snapshot.
    """
    if registry is not None and registry.enabled:
        with use_registry(registry):
            return _run_scenario(config, registry)
    return _run_scenario(config, NULL_REGISTRY)


def _run_scenario(
    config: ScenarioConfig, registry: MetricsRegistry
) -> ScenarioResult:
    topology = by_label(config.topology).set_uniform_capacities(cpu=1.0, mem=1.0)
    known = set(topology.node_names)
    for event in config.events:
        if event.node is not None and event.node not in known:
            raise ValueError(
                f"scenario event references unknown node {event.node!r};"
                f" {config.topology} nodes are {sorted(known)}"
            )
    paths = PathSet(topology)
    modules = list(STANDARD_MODULES)

    bus = Bus(
        BusConfig(
            latency=config.latency,
            jitter=config.jitter,
            loss_rate=config.loss_rate,
            seed=config.seed,
        ),
        registry=registry,
    )
    controller = Controller(
        topology,
        paths,
        modules,
        bus,
        ControllerConfig(
            heartbeat_timeout=config.heartbeat_timeout,
            resolve_every=config.resolve_every,
            stabilize_tolerance=config.stabilize_tolerance,
            drift_threshold=config.drift_threshold,
            headroom=config.headroom,
            coverage=config.coverage,
            lease_ttl=config.lease_ttl,
            retry_seed=config.seed,
        ),
        registry=registry,
    )
    agent_config = AgentConfig(
        transition_window=config.transition_window,
        lease_ttl=config.lease_ttl,
    )
    agents: Dict[str, Agent] = {}
    for index, node in enumerate(topology.node_names):
        agents[node] = Agent(
            node,
            bus,
            exporter=FlowExporter(
                sampling_rate=config.sampling_rate,
                seed=config.seed + index,
            ),
            config=agent_config,
            registry=registry,
        )

    volume_model = DiurnalBurstModel(
        base_sessions=config.base_sessions,
        diurnal_amplitude=config.diurnal_amplitude,
        burst_probability=config.burst_probability,
        seed=config.seed,
    )
    volumes = volume_model.series(config.epochs)
    pools = session_pools(config, topology, paths, max(volumes))

    events_by_epoch: Dict[int, List[ScenarioEvent]] = defaultdict(list)
    for event in config.events:
        events_by_epoch[event.epoch].append(event)

    result = ScenarioResult(config=config, records=[])
    profile = config.profile
    #: Pre-crash manifest entries per failed node, awaiting reassignment.
    pending_redistribution: Dict[str, Dict[Ident, Tuple[HashRange, ...]]] = {}
    pending_recovery: Set[str] = set()

    for epoch in range(config.epochs):
        t = float(epoch)
        for event in events_by_epoch.get(epoch, []):
            if event.kind == "shift":
                profile = event.profile
            elif event.kind == "fail":
                agent = agents[event.node]
                pending_redistribution[event.node] = dict(
                    agent.manifest.entries
                )
                agent.crash()
            elif event.kind == "recover":
                agents[event.node].recover()
                pending_recovery.add(event.node)

        sessions = pools[profile][: volumes[epoch]]
        by_ingress: Dict[str, List[Session]] = defaultdict(list)
        for session in sessions:
            by_ingress[session.ingress].append(session)

        bus_sent_before = bus.stats.sent
        bus_bytes_before = bus.stats.bytes_sent

        for node, agent in agents.items():
            agent.step(t, sessions=by_ingress.get(node, []))
        controller.step(t + 0.25)
        for agent in agents.values():
            agent.step(t + 0.5)
        record = controller.finish_epoch(t + 0.75)

        record.sessions = len(sessions)
        record.messages_sent = bus.stats.sent - bus_sent_before
        record.bytes_sent = bus.stats.bytes_sent - bus_bytes_before

        # Ground-truth coverage: what the *applied* manifests of the
        # *actually live* agents cover of this epoch's real traffic.
        truth_units = build_units(modules, sessions, paths)
        live = {node for node, agent in agents.items() if agent.alive}
        applied = {
            node: agent.manifest
            for node, agent in agents.items()
            if agent.alive
        }
        summary = coverage_metrics(truth_units, applied, live)
        record.coverage = summary.coverage
        record.min_unit_coverage = summary.min_unit_coverage
        record.orphaned_fraction = summary.orphaned_fraction
        registry.gauge(
            "epoch_coverage",
            "ground-truth volume-weighted coverage of the latest epoch",
        ).set(record.coverage)

        # A transition window is any epoch where the configuration is
        # still propagating (push unacked) or a crashed node's ranges
        # have not yet been repaired away (including the detection gap
        # between the crash and the heartbeat timeout).
        failure_unrepaired = any(
            not agent.alive
            and controller.manifests.get(node) is not None
            and controller.manifests[node].entries
            for node, agent in agents.items()
        )
        record.in_transition = (not record.converged) or failure_unrepaired

        for node in list(pending_redistribution):
            if node in record.failed_nodes:
                result.detection_epoch.setdefault(node, epoch)
            if node not in result.detection_epoch:
                continue  # controller has not noticed yet
            repair = controller.last_repair
            skip: Set[Ident] = set()
            if repair is not None:
                skip = {ident for ident, _mass in repair.orphaned}
                result.orphaned_mass[node] = sum(
                    mass for _ident, mass in repair.orphaned
                )
            if _ranges_reassigned(
                pending_redistribution[node], agents, node, skip
            ):
                result.redistribution_epoch[node] = epoch
                del pending_redistribution[node]

        for node in sorted(pending_recovery):
            if (
                agents[node].alive
                and node not in controller.monitor.failed
                and node not in controller.unsynced_live_nodes()
            ):
                result.reintegration_epoch[node] = epoch
                pending_recovery.discard(node)

        result.records.append(record)

    result.bus_stats = bus.stats
    result.controller_stats = controller.stats
    return result
