"""Traffic-matrix abstraction.

Wraps the ``{(ingress, egress): fraction}`` maps produced by the
gravity model (or supplied directly) with validation, sampling, and the
volume bookkeeping the generator and the optimization drivers need.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterable, List, Mapping, Tuple

from ..topology.graph import Topology
from ..topology.gravity import gravity_fractions

Pair = Tuple[str, str]


class TrafficMatrix:
    """Normalized ingress–egress traffic fractions."""

    def __init__(self, fractions: Mapping[Pair, float]):
        if not fractions:
            raise ValueError("empty traffic matrix")
        total = 0.0
        for pair, fraction in fractions.items():
            if fraction < 0:
                raise ValueError(f"negative fraction for pair {pair}")
            total += fraction
        if total <= 0:
            raise ValueError("traffic matrix has zero total volume")
        self._fractions: Dict[Pair, float] = {
            pair: fraction / total for pair, fraction in fractions.items() if fraction > 0
        }
        # Cumulative distribution for O(log n) pair sampling.
        self._pairs: List[Pair] = list(self._fractions)
        self._cumulative: List[float] = []
        running = 0.0
        for pair in self._pairs:
            running += self._fractions[pair]
            self._cumulative.append(running)

    @classmethod
    def gravity(cls, topology: Topology, include_self_pairs: bool = False) -> "TrafficMatrix":
        """Gravity-model matrix from the topology's city populations."""
        return cls(gravity_fractions(topology.populations, include_self_pairs))

    @classmethod
    def uniform(cls, topology: Topology) -> "TrafficMatrix":
        """Equal volume on every ordered inter-node pair (ablation TM)."""
        names = topology.node_names
        return cls({(s, d): 1.0 for s in names for d in names if s != d})

    # -- access -------------------------------------------------------------
    def fraction(self, ingress: str, egress: str) -> float:
        """Normalized fraction for the ordered pair."""
        return self._fractions.get((ingress, egress), 0.0)

    @property
    def pairs(self) -> List[Pair]:
        """All ordered pairs with positive fraction."""
        return list(self._pairs)

    def items(self) -> Iterable[Tuple[Pair, float]]:
        """Iterate (pair, fraction) entries."""
        return self._fractions.items()

    def __len__(self) -> int:
        return len(self._fractions)

    # -- use ----------------------------------------------------------------
    def sample_pair(self, rng: random.Random) -> Pair:
        """Draw an (ingress, egress) pair proportionally to its fraction."""
        position = bisect.bisect_left(self._cumulative, rng.random() * self._cumulative[-1])
        position = min(position, len(self._pairs) - 1)
        return self._pairs[position]

    def volumes(self, total: float) -> Dict[Pair, float]:
        """Split *total* volume across pairs by fraction."""
        return {pair: fraction * total for pair, fraction in self._fractions.items()}

    def session_counts(self, total_sessions: int) -> Dict[Pair, int]:
        """Integer session counts per pair using largest-remainder rounding.

        Guarantees the counts sum exactly to *total_sessions* so traces
        generated per pair have the intended total volume.
        """
        raw = {pair: fraction * total_sessions for pair, fraction in self._fractions.items()}
        counts = {pair: int(value) for pair, value in raw.items()}
        shortfall = total_sessions - sum(counts.values())
        remainders = sorted(
            raw, key=lambda pair: raw[pair] - counts[pair], reverse=True
        )
        for pair in remainders[:shortfall]:
            counts[pair] += 1
        return counts
