"""Workload substrate: packets, sessions, profiles, matrices, generator."""

from .dynamics import (
    DiurnalBurstModel,
    headroom_for_percentile,
    percentile,
)
from .generator import (
    GeneratorConfig,
    HOST_BITS,
    TrafficGenerator,
    home_node_index,
    host_id,
)
from .matrix import TrafficMatrix
from .packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    FiveTuple,
    ICMP,
    Packet,
    TCP,
    UDP,
)
from .profiles import (
    SessionTemplate,
    TEMPLATES,
    TrafficProfile,
    attack_heavy_profile,
    mixed_profile,
    web_heavy_profile,
)
from .batch import SessionBatch
from .session import Session, TraceStats, merge_packet_streams, trace_stats

__all__ = [
    "DiurnalBurstModel",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_RST",
    "FLAG_SYN",
    "FiveTuple",
    "GeneratorConfig",
    "HOST_BITS",
    "ICMP",
    "Packet",
    "Session",
    "SessionBatch",
    "SessionTemplate",
    "TCP",
    "TEMPLATES",
    "TraceStats",
    "TrafficGenerator",
    "TrafficMatrix",
    "TrafficProfile",
    "UDP",
    "headroom_for_percentile",
    "percentile",
    "attack_heavy_profile",
    "home_node_index",
    "host_id",
    "merge_packet_streams",
    "mixed_profile",
    "trace_stats",
    "web_heavy_profile",
]
