"""Application traffic profiles.

The paper's traffic generator uses "template sessions using real
traffic captured for common protocols like HTTP, IRC, and Telnet, and
synthetically generate[s] traffic sessions for other protocols"
(Section 2.4).  We encode each protocol as a :class:`SessionTemplate`:
the server port, transport protocol, and the distributions of packets
and bytes per session, derived from the shapes commonly reported for
those protocols (short transactional HTTP sessions, long chatty IRC
sessions, keystroke-dominated Telnet, tiny UDP TFTP transfers, worm
probes, and half-open SYN-flood attempts).

A :class:`TrafficProfile` is a weighted mixture of templates — the
"relative popularity of different application ports".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from .packet import TCP, UDP


@dataclass(frozen=True)
class SessionTemplate:
    """Statistical template for one application protocol's sessions."""

    name: str
    server_port: int
    proto: int = TCP
    mean_packets: float = 10.0
    min_packets: int = 2
    max_packets: int = 200
    mean_packet_size: int = 500
    bidirectional: bool = True
    #: Fraction of sessions carrying a malware payload tag (drives the
    #: signature module and NIPS match rates).
    malicious_fraction: float = 0.0
    payload_tag: str = ""
    #: True for half-open SYN-only attempts (SYN-flood template).
    half_open: bool = False
    #: True when the "session" is a one-packet probe to a random host
    #: (scan template) rather than a normal connection.
    probe: bool = False

    def draw_packet_count(self, rng: random.Random) -> int:
        """Draw a session's packet count (geometric-ish, bounded)."""
        if self.half_open or self.probe:
            return 1
        span = max(1.0, self.mean_packets - self.min_packets)
        count = self.min_packets + int(rng.expovariate(1.0 / span))
        return max(self.min_packets, min(self.max_packets, count))


#: Template library keyed by protocol name.  Ports follow the modules'
#: canonical assignments (HTTP 80, IRC 6667, Telnet/login 23, TFTP 69,
#: Blaster worm RPC 135).
TEMPLATES: Dict[str, SessionTemplate] = {
    "http": SessionTemplate(
        name="http", server_port=80, mean_packets=12, min_packets=4,
        mean_packet_size=700, malicious_fraction=0.01, payload_tag="exploit-http",
    ),
    "irc": SessionTemplate(
        name="irc", server_port=6667, mean_packets=60, min_packets=10,
        mean_packet_size=120, malicious_fraction=0.02, payload_tag="botnet-cnc",
    ),
    "telnet": SessionTemplate(
        name="telnet", server_port=23, mean_packets=80, min_packets=10,
        mean_packet_size=80, malicious_fraction=0.01, payload_tag="login-bruteforce",
    ),
    "tftp": SessionTemplate(
        name="tftp", server_port=69, proto=UDP, mean_packets=8, min_packets=2,
        mean_packet_size=450,
    ),
    "smtp": SessionTemplate(
        name="smtp", server_port=25, mean_packets=15, min_packets=6,
        mean_packet_size=600,
    ),
    "dns": SessionTemplate(
        name="dns", server_port=53, proto=UDP, mean_packets=2, min_packets=2,
        max_packets=4, mean_packet_size=120,
    ),
    "blaster": SessionTemplate(
        name="blaster", server_port=135, mean_packets=3, min_packets=2,
        mean_packet_size=300, malicious_fraction=1.0, payload_tag="blaster-worm",
    ),
    "synflood": SessionTemplate(
        name="synflood", server_port=80, mean_packets=1, half_open=True,
        mean_packet_size=40, malicious_fraction=1.0, payload_tag="syn-flood",
    ),
    "scanprobe": SessionTemplate(
        name="scanprobe", server_port=0, mean_packets=1, probe=True,
        mean_packet_size=40, malicious_fraction=1.0, payload_tag="scan",
    ),
}


@dataclass
class TrafficProfile:
    """A weighted mixture of session templates."""

    name: str
    weights: Dict[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(TEMPLATES)
        if unknown:
            raise ValueError(f"unknown templates in profile: {sorted(unknown)}")
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("profile weights must sum to a positive value")
        self.weights = {name: w / total for name, w in self.weights.items()}

    @property
    def template_names(self) -> List[str]:
        """Names of the templates in this mixture."""
        return list(self.weights)

    def draw_template(self, rng: random.Random) -> SessionTemplate:
        """Sample a template according to the mixture weights."""
        names = list(self.weights)
        probabilities = [self.weights[n] for n in names]
        return TEMPLATES[rng.choices(names, weights=probabilities)[0]]


def mixed_profile() -> TrafficProfile:
    """The microbenchmark's "mixed traffic profile that stresses
    different modules": every module sees a meaningful share."""
    return TrafficProfile(
        "mixed",
        {
            "http": 0.34,
            "irc": 0.08,
            "telnet": 0.06,
            "tftp": 0.05,
            "smtp": 0.12,
            "dns": 0.15,
            "blaster": 0.05,
            "synflood": 0.07,
            "scanprobe": 0.08,
        },
    )


def web_heavy_profile() -> TrafficProfile:
    """An enterprise-egress-style profile dominated by HTTP."""
    return TrafficProfile(
        "web-heavy",
        {"http": 0.70, "dns": 0.15, "smtp": 0.08, "irc": 0.02, "telnet": 0.01,
         "synflood": 0.02, "scanprobe": 0.02},
    )


def attack_heavy_profile() -> TrafficProfile:
    """A profile with an elevated unwanted-traffic share (NIPS stress)."""
    return TrafficProfile(
        "attack-heavy",
        {"http": 0.25, "dns": 0.10, "smtp": 0.05, "irc": 0.05,
         "blaster": 0.20, "synflood": 0.20, "scanprobe": 0.15},
    )
