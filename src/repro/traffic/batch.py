"""Columnar view of a session trace for vectorized processing.

The batch engine and batch dispatcher both need the same field arrays
(5-tuple columns, packet counts, half-open flags) and the same
routing-pair grouping.  :class:`SessionBatch` extracts them once per
trace so the two layers never duplicate the Python-side column build —
at 100k+ sessions the ``fromiter`` sweeps are a measurable share of
the batch path.

Group ids: unit keys depend only on a session's (ingress, egress)
pair, so sessions are bucketed by first-seen pair; dispatch resolves
units once per distinct pair instead of once per (module, session).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .session import Session


class SessionBatch:
    """Field arrays for one session trace (built once, read many)."""

    __slots__ = (
        "sessions",
        "tuples",
        "src",
        "dst",
        "sport",
        "dport",
        "proto",
        "pkts",
        "pkts_f",
        "half_open",
        "session_ids",
        "group_ids",
        "pairs",
    )

    def __init__(self, sessions: Sequence[Session]):
        import numpy as np

        self.sessions = sessions
        n = len(sessions)
        tuples = [session.tuple for session in sessions]
        self.tuples = tuples
        self.src = np.fromiter((t.src for t in tuples), dtype=np.uint64, count=n)
        self.dst = np.fromiter((t.dst for t in tuples), dtype=np.uint64, count=n)
        self.sport = np.fromiter((t.sport for t in tuples), dtype=np.int64, count=n)
        self.dport = np.fromiter((t.dport for t in tuples), dtype=np.int64, count=n)
        self.proto = np.fromiter((t.proto for t in tuples), dtype=np.int64, count=n)
        self.pkts = np.fromiter(
            (s.num_packets for s in sessions), dtype=np.int64, count=n
        )
        #: float64 packet counts; exact (packet counts are far below 2**53),
        #: so vectorized per-packet charges round identically to scalar.
        self.pkts_f = self.pkts.astype(np.float64)
        self.half_open = np.fromiter(
            (s.half_open for s in sessions), dtype=bool, count=n
        )
        self.session_ids = np.fromiter(
            (s.session_id for s in sessions), dtype=np.int64, count=n
        )
        group_ids = np.empty(n, dtype=np.intp)
        seen: Dict[Tuple[str, str], int] = {}
        pairs: List[Tuple[str, str]] = []
        for i, session in enumerate(sessions):
            pair = (session.ingress, session.egress)
            gid = seen.get(pair)
            if gid is None:
                gid = len(pairs)
                seen[pair] = gid
                pairs.append(pair)
            group_ids[i] = gid
        #: Per-session index into :attr:`pairs` (first-seen order).
        self.group_ids = group_ids
        #: Distinct (ingress, egress) routing pairs in this trace.
        self.pairs = pairs

    def item_keys(self, aggregation):
        """Per-session state-table keys at *aggregation* (int64 array).

        Mirrors :meth:`repro.nids.modules.base.ModuleSpec.item_key`
        elementwise: source host, destination host, or session id.
        """
        import numpy as np

        from ..hashing.keys import Aggregation

        if aggregation is Aggregation.SOURCE:
            return self.src.astype(np.int64)
        if aggregation is Aggregation.DESTINATION:
            return self.dst.astype(np.int64)
        return self.session_ids

    def __len__(self) -> int:
        return len(self.sessions)
